"""Shared fixtures for the benchmark harness.

Every benchmark exercises one row of the DESIGN.md experiment index and
attaches the quantities the paper reports (label sizes in bits, the matching
bound formula) to ``benchmark.extra_info`` so they appear in the
pytest-benchmark JSON/therminal output alongside the timings.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.generators.workloads import make_tree, random_pairs
from repro.oracles.exact_oracle import TreeDistanceOracle


@pytest.fixture(scope="session")
def benchmark_tree():
    """The default workload tree shared by most benchmarks."""
    return make_tree("random", 1024, seed=7)


@pytest.fixture(scope="session")
def benchmark_oracle(benchmark_tree):
    """Ground-truth oracle for the default workload tree."""
    return TreeDistanceOracle(benchmark_tree)


@pytest.fixture(scope="session")
def benchmark_pairs(benchmark_tree):
    """Query workload for the default tree."""
    return random_pairs(benchmark_tree, 200, seed=3)
