"""Experiment Q-time: query latency of every scheme.

The paper claims constant query time in the word-RAM model; on CPython the
interesting comparison is the *relative* cost of the decoders (the Freedman
decoder touches one entry and one accumulator, the separator decoder scans
O(log n) centroids, the naive decoder scans whole root paths).
"""

from __future__ import annotations

import pytest

from repro.core.alstrup import AlstrupScheme
from repro.core.approximate import ApproximateScheme
from repro.core.freedman import FreedmanScheme
from repro.core.hld import HLDScheme
from repro.core.kdistance import KDistanceScheme
from repro.core.naive import NaiveListScheme
from repro.core.separator import SeparatorScheme

EXACT_SCHEMES = {
    "freedman": FreedmanScheme,
    "alstrup": AlstrupScheme,
    "hld-fixed": HLDScheme,
    "separator": SeparatorScheme,
    "naive-list": NaiveListScheme,
}


@pytest.mark.parametrize("scheme_name", sorted(EXACT_SCHEMES))
def test_exact_query_time(benchmark, scheme_name, benchmark_tree, benchmark_pairs, benchmark_oracle):
    scheme = EXACT_SCHEMES[scheme_name]()
    labels = scheme.encode(benchmark_tree)

    def run_queries():
        total = 0
        for u, v in benchmark_pairs:
            total += scheme.distance(labels[u], labels[v])
        return total

    total = benchmark(run_queries)
    expected = sum(benchmark_oracle.distance(u, v) for u, v in benchmark_pairs)
    assert total == expected
    benchmark.extra_info.update(
        {
            "experiment": "Q-time",
            "scheme": scheme_name,
            "n": benchmark_tree.n,
            "queries_per_round": len(benchmark_pairs),
        }
    )


def test_kdistance_query_time(benchmark, benchmark_tree, benchmark_pairs):
    scheme = KDistanceScheme(8)
    labels = scheme.encode(benchmark_tree)

    def run_queries():
        hits = 0
        for u, v in benchmark_pairs:
            if scheme.bounded_distance(labels[u], labels[v]) is not None:
                hits += 1
        return hits

    benchmark(run_queries)
    benchmark.extra_info.update(
        {"experiment": "Q-time", "scheme": "k-distance(k=8)", "n": benchmark_tree.n}
    )


def test_approximate_query_time(benchmark, benchmark_tree, benchmark_pairs):
    scheme = ApproximateScheme(0.25)
    labels = scheme.encode(benchmark_tree)

    def run_queries():
        total = 0.0
        for u, v in benchmark_pairs:
            total += scheme.approximate_distance(labels[u], labels[v])
        return total

    benchmark(run_queries)
    benchmark.extra_info.update(
        {"experiment": "Q-time", "scheme": "approximate(eps=0.25)", "n": benchmark_tree.n}
    )
