"""Experiment Q-time: query latency of every scheme.

The paper claims constant query time in the word-RAM model; on CPython the
interesting comparison is the *relative* cost of the decoders (the Freedman
decoder touches one entry and one accumulator, the separator decoder scans
O(log n) centroids, the naive decoder scans whole root paths).

The store benchmarks at the bottom compare serving a packed
:class:`repro.store.LabelStore` through ``QueryEngine.batch_query`` (each
label parsed once per batch) against per-pair ``distance_from_bits`` (two
parses per query) — the parse amortisation that makes batched serving the
fast path.
"""

from __future__ import annotations

import os

import pytest

import perf_common  # the src/ path shim plus shared timing and reference helpers

from repro.analysis.label_stats import measure_store_throughput
from repro.core.alstrup import AlstrupScheme
from repro.core.approximate import ApproximateScheme
from repro.core.freedman import FreedmanScheme
from repro.core.hld import HLDScheme
from repro.core.kdistance import KDistanceScheme
from repro.core.naive import NaiveListScheme
from repro.core.separator import SeparatorScheme
from repro.generators.workloads import (
    khop_local_pairs,
    make_tree,
    random_pairs,
    sibling_pairs,
    zipf_pairs,
)
from repro.store import LabelStore, QueryEngine

EXACT_SCHEMES = {
    "freedman": FreedmanScheme,
    "alstrup": AlstrupScheme,
    "hld-fixed": HLDScheme,
    "separator": SeparatorScheme,
    "naive-list": NaiveListScheme,
}


@pytest.mark.parametrize("scheme_name", sorted(EXACT_SCHEMES))
def test_exact_query_time(benchmark, scheme_name, benchmark_tree, benchmark_pairs, benchmark_oracle):
    scheme = EXACT_SCHEMES[scheme_name]()
    labels = scheme.encode(benchmark_tree)

    def run_queries():
        total = 0
        for u, v in benchmark_pairs:
            total += scheme.distance(labels[u], labels[v])
        return total

    total = benchmark(run_queries)
    expected = sum(benchmark_oracle.distance(u, v) for u, v in benchmark_pairs)
    assert total == expected
    benchmark.extra_info.update(
        {
            "experiment": "Q-time",
            "scheme": scheme_name,
            "n": benchmark_tree.n,
            "queries_per_round": len(benchmark_pairs),
        }
    )


def test_kdistance_query_time(benchmark, benchmark_tree, benchmark_pairs):
    scheme = KDistanceScheme(8)
    labels = scheme.encode(benchmark_tree)

    def run_queries():
        hits = 0
        for u, v in benchmark_pairs:
            if scheme.bounded_distance(labels[u], labels[v]) is not None:
                hits += 1
        return hits

    benchmark(run_queries)
    benchmark.extra_info.update(
        {"experiment": "Q-time", "scheme": "k-distance(k=8)", "n": benchmark_tree.n}
    )


def test_approximate_query_time(benchmark, benchmark_tree, benchmark_pairs):
    scheme = ApproximateScheme(0.25)
    labels = scheme.encode(benchmark_tree)

    def run_queries():
        total = 0.0
        for u, v in benchmark_pairs:
            total += scheme.approximate_distance(labels[u], labels[v])
        return total

    benchmark(run_queries)
    benchmark.extra_info.update(
        {"experiment": "Q-time", "scheme": "approximate(eps=0.25)", "n": benchmark_tree.n}
    )


@pytest.mark.parametrize("scheme_name", ["freedman", "alstrup"])
def test_store_batch_query_time(benchmark, scheme_name, benchmark_tree, benchmark_oracle):
    """Batched serving from a packed store (each label parsed once)."""
    scheme = EXACT_SCHEMES[scheme_name]()
    store = LabelStore.encode_tree(scheme, benchmark_tree)
    pairs = random_pairs(benchmark_tree, 500, seed=13)

    def run_batch():
        engine = QueryEngine(store, scheme=scheme)
        return engine.batch_query(pairs)

    answers = benchmark(run_batch)
    expected = benchmark_oracle.batch_distance(pairs)
    assert answers == expected
    benchmark.extra_info.update(
        {
            "experiment": "Q-store",
            "scheme": scheme_name,
            "n": benchmark_tree.n,
            "store_bytes": store.file_bytes,
            "queries_per_round": len(pairs),
        }
    )


def test_store_single_query_time(benchmark, benchmark_tree):
    """Per-pair serving from bits: two parses per query (the slow path)."""
    scheme = FreedmanScheme()
    store = LabelStore.encode_tree(scheme, benchmark_tree)
    pairs = random_pairs(benchmark_tree, 500, seed=13)

    def run_single():
        return [
            scheme.distance_from_bits(store.label_bits(u), store.label_bits(v))
            for u, v in pairs
        ]

    benchmark(run_single)
    benchmark.extra_info.update(
        {"experiment": "Q-store", "scheme": "freedman (per-pair bits)", "n": benchmark_tree.n}
    )


def test_freedman_batched_speedup():
    """Acceptance gate: batched queries >= 2x per-pair ``distance_from_bits``.

    A batch of 2000 random pairs on a 512-node tree touches each label many
    times, so the engine's parse-once behaviour must win by a wide margin;
    2x leaves headroom for machine noise.
    """
    tree = make_tree("random", 512, seed=7)
    pairs = random_pairs(tree, 2000, seed=3)
    row = measure_store_throughput(FreedmanScheme(), tree, pairs)
    assert row["speedup"] >= 2.0, f"batched speedup only {row['speedup']:.2f}x"


def test_packed_vs_reference_batch_query():
    """Regression gate for the word-packed bit layer.

    The recorded acceptance number (>= 5x at n=4096, 10k pairs) lives in
    ``BENCH_query_time.json``; this test re-checks a smaller instance with a
    3x threshold so CI noise cannot flake it while still catching any real
    regression of the packed pipeline.
    """
    tree = make_tree("random", 2048, seed=23)
    scheme = HLDScheme()
    store = LabelStore.encode_tree(scheme, tree)
    pairs = random_pairs(tree, 5000, seed=13)
    packed_time, packed_answers = perf_common.best_of(
        lambda: QueryEngine(store, scheme=scheme).batch_query(pairs), repeats=3
    )
    reference_time, reference_answers = perf_common.best_of(
        lambda: perf_common.reference_batch_query_hld(store, pairs), repeats=3
    )
    assert packed_answers == reference_answers
    speedup = reference_time / packed_time
    assert speedup >= 3.0, f"packed batch_query only {speedup:.2f}x over reference"


# -- machine-readable runner (BENCH_query_time.json) -------------------------


def _measure_kernel_section(gate_n: int, gate_pairs: int, repeats: int) -> dict:
    """Per-tier parse and batch-query throughput on the hld-fixed store.

    The parse comparison runs each tier's ``parse_checksum`` over every node
    (the native kernel's bulk word decode vs the packed-Python
    ``parse_many`` plus the same field fold), asserting the checksums agree
    — the same decoder certification the differential suite uses — and
    records ``native_speedup`` against the 5x acceptance gate.
    """
    from repro import kernels

    kernels.reset()
    probed = kernels.probe(full=True)
    tree = make_tree("random", gate_n, seed=23)
    scheme = HLDScheme()
    store = LabelStore.encode_tree(scheme, tree)
    nodes = list(range(store.n))
    pairs = random_pairs(tree, gate_pairs, seed=13)

    tiers_json: dict[str, dict] = {}
    checksums: set[int] = set()
    parse_times: dict[str, float] = {}
    saved = os.environ.get(kernels.ENV_VAR)
    try:
        for tier in kernels.TIER_ORDER:
            backend = kernels.get_backend(tier)
            if backend is None:
                tiers_json[tier] = {"available": False}
                continue
            checksum = backend.parse_checksum(store, scheme, nodes)
            row: dict = {"available": True}
            if checksum is not None:
                checksums.add(checksum)
                parse_time, _ = perf_common.best_of(
                    lambda: backend.parse_checksum(store, scheme, nodes),
                    repeats=repeats,
                )
                parse_times[tier] = parse_time
                row["parse_ops_per_sec"] = round(len(nodes) / parse_time, 1)
            os.environ[kernels.ENV_VAR] = tier
            kernels.reset()
            batch_time, _ = perf_common.best_of(
                lambda: QueryEngine(store, scheme=scheme).batch_query(pairs),
                repeats=repeats,
            )
            row["batch_query_ops_per_sec"] = round(len(pairs) / batch_time, 1)
            tiers_json[tier] = row
    finally:
        if saved is None:
            os.environ.pop(kernels.ENV_VAR, None)
        else:
            os.environ[kernels.ENV_VAR] = saved
        kernels.reset()
    if len(checksums) > 1:
        raise AssertionError(f"kernel tiers decoded different fields: {checksums}")

    native_speedup = None
    if "native" in parse_times and "python" in parse_times:
        native_speedup = round(parse_times["python"] / parse_times["native"], 2)
    return {
        "description": (
            "per-tier bulk parse (parse_checksum over every node) and "
            f"batch_query throughput, hld-fixed, n={gate_n}, best-of {repeats}"
        ),
        "selected": probed["selected"],
        "scheme": "hld-fixed",
        "n": gate_n,
        "tiers": tiers_json,
        "native_speedup": native_speedup,
        "required_speedup": 5.0,
        "pass": None if native_speedup is None else native_speedup >= 5.0,
    }


def run_perf_json(
    smoke: bool = False,
    out: str | None = None,
    warm: bool = False,
    backend: str | None = None,
) -> dict:
    """Measure batched query throughput and write ``BENCH_query_time.json``.

    Records ops/sec per scheme and size, and the headline gate: packed
    ``QueryEngine.batch_query`` vs the pre-packing string-backed pipeline
    (``perf_common.reference_batch_query_hld``) on an HLD store with n=4096
    and 10k random pairs (smoke mode shrinks both for CI).  ``backend``
    forces a :mod:`repro.kernels` tier for the whole run (the ``--backend``
    flag); the tier actually answering each row rides along in the row.

    ``warm=True`` adds the steady-state section: the same batch on an engine
    whose parsed-label LRU is already populated (every lookup a cache hit —
    what a long-running ``repro-labels serve`` process does on every request
    after the first touch), under uniform, Zipf-skewed and the structural
    sibling/khop workloads, next to the cold fresh-engine number.
    """
    from repro import kernels

    if backend is not None:
        os.environ[kernels.ENV_VAR] = backend
    kernels.reset()
    active = kernels.backend()

    table_sizes = [128] if smoke else [512, 2048]
    table_pairs = 256 if smoke else 2048
    gate_n = 512 if smoke else 4096
    gate_pairs = 1000 if smoke else 10000
    repeats = 3 if smoke else 7

    all_schemes = dict(EXACT_SCHEMES)
    schemes_json: dict[str, dict] = {}
    for scheme_name, factory in sorted(all_schemes.items()):
        schemes_json[scheme_name] = {}
        for n in table_sizes:
            tree = make_tree("random", n, seed=23)
            scheme = factory()
            store = LabelStore.encode_tree(scheme, tree)
            pairs = random_pairs(tree, table_pairs, seed=13)
            elapsed, _ = perf_common.best_of(
                lambda: QueryEngine(store, scheme=scheme).batch_query(pairs),
                repeats=repeats,
            )
            schemes_json[scheme_name][str(n)] = {
                "batch_query_ops_per_sec": round(len(pairs) / elapsed, 1),
                "pairs": len(pairs),
                "max_label_bits": store.max_label_bits,
                "backend": active.tier_for(scheme),
            }

    # the gate: packed vs reference on the HLD store
    tree = make_tree("random", gate_n, seed=23)
    scheme = HLDScheme()
    store = LabelStore.encode_tree(scheme, tree)
    pairs = random_pairs(tree, gate_pairs, seed=13)
    packed_time, packed_answers = perf_common.best_of(
        lambda: QueryEngine(store, scheme=scheme).batch_query(pairs),
        repeats=repeats,
    )
    reference_time, reference_answers = perf_common.best_of(
        lambda: perf_common.reference_batch_query_hld(store, pairs),
        repeats=repeats,
    )
    if packed_answers != reference_answers:
        raise AssertionError("packed and reference pipelines disagree")
    payload = {
        "benchmark": "query_time",
        "mode": "smoke" if smoke else "full",
        "backend": active.name,
        "schemes": schemes_json,
        "kernel": _measure_kernel_section(gate_n, gate_pairs, repeats),
        "gate": {
            "description": (
                "QueryEngine.batch_query on an HLD store vs the pre-PR "
                "string-backed pipeline (fresh engine per round, best-of "
                f"{repeats})"
            ),
            "scheme": "hld-fixed",
            "n": gate_n,
            "pairs": gate_pairs,
            "packed_ops_per_sec": round(gate_pairs / packed_time, 1),
            "reference_ops_per_sec": round(gate_pairs / reference_time, 1),
            "speedup": round(reference_time / packed_time, 2),
            "required_speedup": 5.0,
            "pass": reference_time / packed_time >= 5.0,
            "backend": active.tier_for(scheme),
        },
    }
    if warm:
        warm_json: dict[str, dict] = {}
        for scheme_name in ("freedman", "hld-fixed"):
            tree = make_tree("random", gate_n, seed=23)
            scheme = all_schemes[scheme_name]()
            store = LabelStore.encode_tree(scheme, tree)
            warm_json[scheme_name] = {}
            for workload, pairs in (
                ("uniform", random_pairs(tree, gate_pairs, seed=13)),
                ("zipf", zipf_pairs(tree, gate_pairs, skew=1.1, seed=13)),
                # structural shapes: adversarial same-parent pairs and
                # walk-local pairs (repro.generators.workloads)
                ("sibling", sibling_pairs(tree, gate_pairs, seed=13)),
                ("khop", khop_local_pairs(tree, gate_pairs, hops=4, seed=13)),
            ):
                cold_time, _ = perf_common.best_of(
                    lambda: QueryEngine(store, scheme=scheme).batch_query(pairs),
                    repeats=repeats,
                )
                engine = QueryEngine(store, scheme=scheme)
                engine.batch_query(pairs)  # populate the LRU once
                # count hits/misses over the timed steady-state passes only,
                # not the populate pass (which would make the rate a fixed
                # repeats/(repeats+1) harness artifact)
                engine.cache_hits = engine.cache_misses = 0
                warm_time, _ = perf_common.best_of(
                    lambda: engine.batch_query(pairs), repeats=repeats
                )
                warm_json[scheme_name][workload] = {
                    "n": gate_n,
                    "pairs": gate_pairs,
                    "backend": active.tier_for(scheme),
                    "cold_ops_per_sec": round(gate_pairs / cold_time, 1),
                    "warm_ops_per_sec": round(gate_pairs / warm_time, 1),
                    "warm_speedup": round(cold_time / warm_time, 2),
                    "cache_hit_rate": engine.cache_info()["hit_rate"],
                }
        payload["warm"] = warm_json

    path = perf_common.write_json("BENCH_query_time.json", payload, out=out)
    print(f"wrote {path}")
    print(
        f"gate: {payload['gate']['speedup']}x "
        f"(required {payload['gate']['required_speedup']}x, "
        f"pass={payload['gate']['pass']})"
    )
    return payload


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI sizes")
    parser.add_argument("--out", default=None, help="output path override")
    parser.add_argument(
        "--warm",
        action="store_true",
        help="also record steady-state warm-cache serving throughput",
    )
    parser.add_argument(
        "--backend",
        choices=["native", "numpy", "python"],
        default=None,
        help="force one repro.kernels tier for the whole run "
        "(default: automatic selection; the per-tier kernel section "
        "measures all available tiers regardless)",
    )
    arguments = parser.parse_args()
    run_perf_json(
        smoke=arguments.smoke,
        out=arguments.out,
        warm=arguments.warm,
        backend=arguments.backend,
    )
