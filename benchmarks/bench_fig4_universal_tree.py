"""Experiment F4-universal (Figure 4 / Lemmas 3.6-3.7): universal trees.

Runs the Lemma 3.6 construction over every rooted tree on up to n nodes
(small n — the tree count grows as (n-1)!), records the resulting universal
tree size against the 2^S bound and the Goldberg-Livshits formula, and
verifies universality by embedding every tree.
"""

from __future__ import annotations

import pytest

from repro.core.level_ancestor import LevelAncestorScheme
from repro.universal.embedding import embeds_as_rooted_subtree
from repro.universal.goldberg import goldberg_livshits_log2_size, lemma_3_6_size_bound
from repro.universal.universal_tree import all_rooted_trees_up_to, universal_tree_for_small_n


@pytest.mark.parametrize("n", [3, 4, 5])
def test_universal_tree_construction(benchmark, n):
    scheme = LevelAncestorScheme()

    result = benchmark(universal_tree_for_small_n, n, scheme)

    max_label_bits = 0
    trees = list(all_rooted_trees_up_to(n))
    for tree in trees:
        labels = scheme.encode(tree)
        max_label_bits = max(max_label_bits, max(l.bit_length() for l in labels.values()))
    assert all(embeds_as_rooted_subtree(tree, result.tree) for tree in trees)

    benchmark.extra_info.update(
        {
            "experiment": "F4-universal",
            "n": n,
            "trees_covered": len(trees),
            "labels_observed": result.label_count,
            "universal_tree_size": result.tree.n,
            "lemma_3_6_bound": lemma_3_6_size_bound(max_label_bits),
            "max_parent_label_bits": max_label_bits,
            "goldberg_livshits_log2": round(goldberg_livshits_log2_size(n), 2),
        }
    )
