"""Experiment F6-sig (Figure 6): significant ancestors and NCSA queries.

Measures the per-node cost of the significant-ancestor machinery: how many
significant ancestors a node has, how many fall within distance k (and are
therefore stored), and the latency of the NCSA-based bounded-distance query.
"""

from __future__ import annotations

import pytest

from repro.core.kdistance import KDistanceScheme
from repro.generators.workloads import make_tree, near_pairs
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.trees.heavy_path import HeavyPathDecomposition

N = 2048
K_VALUES = [2, 8, 32]


@pytest.mark.parametrize("k", K_VALUES)
def test_significant_ancestor_queries(benchmark, k):
    tree = make_tree("random", N, seed=17)
    scheme = KDistanceScheme(k)
    labels = scheme.encode(tree)
    oracle = TreeDistanceOracle(tree)
    pairs = near_pairs(tree, 200, max_distance=k, seed=2)

    def run_queries():
        correct = 0
        for u, v in pairs:
            expected = oracle.distance(u, v)
            expected = expected if expected <= k else None
            if scheme.bounded_distance(labels[u], labels[v]) == expected:
                correct += 1
        return correct

    correct = benchmark(run_queries)
    assert correct == len(pairs)

    decomposition = HeavyPathDecomposition(tree)
    chain_lengths = [decomposition.light_depth(v) + 1 for v in tree.nodes()]
    stored = [len(label.distances) for label in labels.values()]
    benchmark.extra_info.update(
        {
            "experiment": "F6-sig",
            "n": N,
            "k": k,
            "max_significant_ancestors": max(chain_lengths),
            "avg_significant_ancestors": round(sum(chain_lengths) / len(chain_lengths), 2),
            "avg_stored_within_k": round(sum(stored) / len(stored), 2),
            "queries": len(pairs),
        }
    )
