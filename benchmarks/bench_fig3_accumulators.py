"""Experiment F3-subtrees (Figure 3): hanging subtrees and the slack analysis.

Records, per tree family, how the hanging subtrees classify under the
Slack/Thin Lemmas (fat vs thin vs exceptional) and how many bits the
accumulator machinery pushes from dominating to dominated labels.
"""

from __future__ import annotations

import pytest

from repro.core.freedman import FreedmanScheme
from repro.generators.workloads import make_tree
from repro.lowerbounds.hm_trees import (
    build_hm_tree,
    hm_parameter_count,
    subdivide_to_unweighted,
)


def _adversarial_tree():
    instance = build_hm_tree(5, 16, [8] * hm_parameter_count(5))
    tree, _ = subdivide_to_unweighted(instance.tree)
    return tree


WORKLOADS = {
    "random-2048": lambda: make_tree("random", 2048, seed=3),
    "caterpillar-2048": lambda: make_tree("caterpillar", 2048, seed=3),
    "balanced-2047": lambda: make_tree("balanced_binary", 2047, seed=3),
    "hm-adversarial": _adversarial_tree,
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_accumulator_statistics(benchmark, workload):
    tree = WORKLOADS[workload]()
    scheme = FreedmanScheme()

    labels = benchmark(scheme.encode, tree)

    sizes = [label.bit_length() for label in labels.values()]
    accumulator_bits = max(
        sum(len(bits) for bits in label.accumulators) for label in labels.values()
    )
    benchmark.extra_info.update(
        {
            "experiment": "F3-subtrees",
            "workload": workload,
            "n": tree.n,
            "fat_subtrees": scheme.encoding_stats["fat_subtrees"],
            "thin_subtrees": scheme.encoding_stats["thin_subtrees"],
            "skipped_entries": scheme.encoding_stats["skipped_entries"],
            "pushed_bits_total": scheme.encoding_stats["pushed_bits"],
            "max_accumulator_bits_per_label": accumulator_bits,
            "max_label_bits": max(sizes),
        }
    )
