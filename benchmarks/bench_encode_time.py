"""Experiment E-time: encoding throughput of every scheme across tree sizes."""

from __future__ import annotations

import pytest

import perf_common  # the src/ path shim plus shared timing and reference helpers

from repro.core.alstrup import AlstrupScheme
from repro.core.freedman import FreedmanScheme
from repro.core.hld import HLDScheme
from repro.core.separator import SeparatorScheme
from repro.generators.workloads import make_tree

SCHEMES = {
    "freedman": FreedmanScheme,
    "alstrup": AlstrupScheme,
    "hld-fixed": HLDScheme,
    "separator": SeparatorScheme,
}


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("n", [512, 2048])
def test_encode_time(benchmark, scheme_name, n):
    tree = make_tree("random", n, seed=23)
    scheme = SCHEMES[scheme_name]()

    labels = benchmark(scheme.encode, tree)

    benchmark.extra_info.update(
        {
            "experiment": "E-time",
            "scheme": scheme_name,
            "n": n,
            "labels": len(labels),
            "nodes_per_second_hint": n,
        }
    )


def test_packed_vs_reference_encode_pack():
    """Regression gate for the word-packed encode/pack path.

    The recorded acceptance number (>= 2x at n=10k) lives in
    ``BENCH_encode_time.json``; this test re-checks a smaller instance with
    a 1.5x threshold so CI noise cannot flake it.
    """
    from repro.store import LabelStore

    tree = make_tree("random", 2048, seed=23)
    scheme = HLDScheme()

    def packed_pipeline():
        return LabelStore.from_labels(scheme, scheme.encode(tree))

    def reference_pipeline():
        labels = scheme.encode(tree)
        return perf_common.reference_pack_hld(labels)

    packed_time, store = perf_common.best_of(packed_pipeline, repeats=3)
    reference_time, (bit_lengths, payload) = perf_common.best_of(
        reference_pipeline, repeats=3
    )
    # the two pipelines must produce the identical packed payload
    assert bit_lengths == [store.bit_length(node) for node in range(store.n)]
    assert payload == bytes(store.buffers()[0])
    speedup = reference_time / packed_time
    assert speedup >= 1.5, f"packed encode+pack only {speedup:.2f}x over reference"


# -- machine-readable runner (BENCH_encode_time.json) ------------------------


def run_perf_json(smoke: bool = False, out: str | None = None) -> dict:
    """Measure encode+pack throughput and write ``BENCH_encode_time.json``.

    Records nodes/sec per scheme and size for the full
    ``scheme.encode`` + ``LabelStore.from_labels`` pipeline, and the
    headline gate: the packed pipeline vs the pre-packing string-backed
    serialisation (``perf_common.reference_pack_hld``) at n=10k (smoke mode
    shrinks sizes for CI).
    """
    from repro.store import LabelStore

    table_sizes = [128] if smoke else [512, 2048]
    gate_n = 512 if smoke else 10000
    repeats = 3 if smoke else 5

    schemes_json: dict[str, dict] = {}
    for scheme_name, factory in sorted(SCHEMES.items()):
        schemes_json[scheme_name] = {}
        for n in table_sizes:
            tree = make_tree("random", n, seed=23)
            scheme = factory()
            elapsed, store = perf_common.best_of(
                lambda: LabelStore.from_labels(scheme, scheme.encode(tree)),
                repeats=repeats,
            )
            schemes_json[scheme_name][str(n)] = {
                "encode_pack_nodes_per_sec": round(n / elapsed, 1),
                "total_label_bits": store.total_label_bits,
            }

    tree = make_tree("random", gate_n, seed=23)
    scheme = HLDScheme()
    packed_time, store = perf_common.best_of(
        lambda: LabelStore.from_labels(scheme, scheme.encode(tree)),
        repeats=repeats,
    )

    def reference_pipeline():
        labels = scheme.encode(tree)
        return perf_common.reference_pack_hld(labels)

    reference_time, (bit_lengths, payload) = perf_common.best_of(
        reference_pipeline, repeats=repeats
    )
    if payload != bytes(store.buffers()[0]):
        raise AssertionError("packed and reference pack outputs differ")
    payload_json = {
        "benchmark": "encode_time",
        "mode": "smoke" if smoke else "full",
        "schemes": schemes_json,
        "gate": {
            "description": (
                "scheme.encode + LabelStore.from_labels vs the pre-PR "
                f"string-backed serialisation (best-of {repeats})"
            ),
            "scheme": "hld-fixed",
            "n": gate_n,
            "packed_nodes_per_sec": round(gate_n / packed_time, 1),
            "reference_nodes_per_sec": round(gate_n / reference_time, 1),
            "packed_seconds": round(packed_time, 4),
            "reference_seconds": round(reference_time, 4),
            "speedup": round(reference_time / packed_time, 2),
            "required_speedup": 2.0,
            "pass": reference_time / packed_time >= 2.0,
        },
    }
    path = perf_common.write_json("BENCH_encode_time.json", payload_json, out=out)
    print(f"wrote {path}")
    print(
        f"gate: {payload_json['gate']['speedup']}x "
        f"(required {payload_json['gate']['required_speedup']}x, "
        f"pass={payload_json['gate']['pass']})"
    )
    return payload_json


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI sizes")
    parser.add_argument("--out", default=None, help="output path override")
    arguments = parser.parse_args()
    run_perf_json(smoke=arguments.smoke, out=arguments.out)
