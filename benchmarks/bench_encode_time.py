"""Experiment E-time: encoding throughput of every scheme across tree sizes."""

from __future__ import annotations

import pytest

from repro.core.alstrup import AlstrupScheme
from repro.core.freedman import FreedmanScheme
from repro.core.hld import HLDScheme
from repro.core.separator import SeparatorScheme
from repro.generators.workloads import make_tree

SCHEMES = {
    "freedman": FreedmanScheme,
    "alstrup": AlstrupScheme,
    "hld-fixed": HLDScheme,
    "separator": SeparatorScheme,
}


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("n", [512, 2048])
def test_encode_time(benchmark, scheme_name, n):
    tree = make_tree("random", n, seed=23)
    scheme = SCHEMES[scheme_name]()

    labels = benchmark(scheme.encode, tree)

    benchmark.extra_info.update(
        {
            "experiment": "E-time",
            "scheme": scheme_name,
            "n": n,
            "labels": len(labels),
            "nodes_per_second_hint": n,
        }
    )
