"""Shared machinery for the machine-readable benchmark runners.

``bench_query_time.py`` and ``bench_encode_time.py`` double as scripts:
``python benchmarks/bench_query_time.py`` emits ``BENCH_query_time.json`` at
the repo root (ops/sec per scheme and size, plus the packed-vs-reference
speedup gate).  This module holds what both runners share: the path shim,
best-of-N timing, the JSON writer, and the *reference pipeline* — the
pre-packing string-backed HLD encode/parse/serve path, rebuilt verbatim on
top of :mod:`repro.encoding.bitio_reference` so the recorded speedups always
compare against what the code actually did before the word-packed rewrite.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import OrderedDict
from dataclasses import dataclass

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.encoding import bitio_reference as ref  # noqa: E402
from repro.encoding.elias import decode_gamma, encode_gamma  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def best_of(func, repeats: int = 5):
    """Smallest wall time of ``repeats`` runs, plus the last return value."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def write_json(filename: str, payload: dict, out: str | None = None) -> str:
    """Write a benchmark JSON at the repo root (or ``out``), return the path."""
    path = out if out else os.path.join(REPO_ROOT, filename)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


# -- the pre-packing reference pipeline (string-backed bit layer) ------------


def reference_pack_hld(labels) -> tuple[list[int], bytes]:
    """``LabelStore.from_labels`` as the string-backed code performed it.

    Serialises every HLD label through the reference writer (character
    chunks, ``format`` based ``write_int``) and packs via the string
    ``to_bytes`` — the exact pre-rewrite work per label.
    """
    bit_lengths: list[int] = []
    chunks: list[bytes] = []
    for node in range(len(labels)):
        label = labels[node]
        writer = ref.BitWriter()
        encode_gamma(writer, label.id_width)
        encode_gamma(writer, label.distance_width)
        path_ids = label.path_ids
        exits = label.exits
        encode_gamma(writer, len(path_ids))
        writer.write_int(label.root_distance, label.distance_width)
        for path_id, exit_distance in zip(path_ids, exits):
            writer.write_int(path_id, label.id_width)
            writer.write_int(exit_distance, label.distance_width)
        bits = writer.getvalue()
        bit_lengths.append(len(bits))
        chunks.append(bits.to_bytes())
    return bit_lengths, b"".join(chunks)


@dataclass
class _ReferenceHLDLabel:
    """The pre-packing parsed label: a plain dataclass with list fields."""

    root_distance: int
    path_ids: list[int]
    exits: list[int]
    id_width: int
    distance_width: int


def _reference_parse_hld(store, node) -> _ReferenceHLDLabel:
    """One label through the string round-trip and the character reader."""
    bits = ref.Bits.from_bytes(store.raw(node), store.bit_length(node))
    reader = ref.BitReader(bits)
    id_width = decode_gamma(reader)
    distance_width = decode_gamma(reader)
    count = decode_gamma(reader)
    root_distance = reader.read_int(distance_width)
    path_ids = []
    exits = []
    for _ in range(count):
        path_ids.append(reader.read_int(id_width))
        exits.append(reader.read_int(distance_width))
    return _ReferenceHLDLabel(root_distance, path_ids, exits, id_width, distance_width)


def _reference_distance(label_u, label_v) -> int:
    """The pre-packing decoder: walk the two id lists until they diverge."""
    deepest_common = -1
    for index, (a, b) in enumerate(zip(label_u.path_ids, label_v.path_ids)):
        if a != b:
            break
        deepest_common = index
    if deepest_common < 0:
        raise ValueError("labels do not come from the same tree")
    nca_distance = min(label_u.exits[deepest_common], label_v.exits[deepest_common])
    return label_u.root_distance + label_v.root_distance - 2 * nca_distance


def _reference_query(label_u, label_v) -> int:
    """The pre-packing ``LabelingScheme.query`` indirection over distance."""
    return _reference_distance(label_u, label_v)


def reference_batch_query_hld(store, pairs, cache_size: int = 4096) -> list[int]:
    """``QueryEngine.batch_query`` as the pre-packing engine executed it.

    Per-node LRU bookkeeping (membership test, ``move_to_end``, insert,
    eviction check), two string-reader parses per distinct endpoint and the
    ``query -> distance`` call chain, exactly like the old
    ``parsed_label`` / ``_parse_batch`` / ``batch_query`` trio.
    """
    cache: OrderedDict[int, _ReferenceHLDLabel] = OrderedDict()

    def parsed_label(node: int):
        if node in cache:
            cache.move_to_end(node)
            return cache[node]
        label = _reference_parse_hld(store, node)
        cache[node] = label
        if len(cache) > cache_size:
            cache.popitem(last=False)
        return label

    parsed: dict[int, _ReferenceHLDLabel] = {}
    for node in (node for pair in pairs for node in pair):
        if node not in parsed:
            parsed[node] = parsed_label(node)
    query = _reference_query
    return [query(parsed[u], parsed[v]) for u, v in pairs]
