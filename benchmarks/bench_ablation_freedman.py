"""Experiment A-ablation: the design-choice ablations called out in DESIGN.md.

Compares the full Freedman scheme against variants with fragments,
accumulators or the binarization transform disabled, on both a random tree
and the adversarial (h, M) instance where the accumulator machinery fires.
"""

from __future__ import annotations

import pytest

from repro.core.freedman import FreedmanScheme
from repro.generators.workloads import make_tree
from repro.lowerbounds.hm_trees import (
    build_hm_tree,
    hm_parameter_count,
    subdivide_to_unweighted,
)

VARIANTS = {
    "full": {},
    "no-fragments": {"use_fragments": False},
    "no-accumulators": {"use_accumulators": False},
    "no-binarize": {"binarize": False},
}


def _workloads():
    random_tree = make_tree("random", 2048, seed=29)
    instance = build_hm_tree(5, 16, [8] * hm_parameter_count(5))
    adversarial, _ = subdivide_to_unweighted(instance.tree)
    return {"random-2048": random_tree, "hm-adversarial": adversarial}


WORKLOADS = _workloads()


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_freedman_ablation(benchmark, variant, workload):
    tree = WORKLOADS[workload]
    scheme = FreedmanScheme(**VARIANTS[variant])

    labels = benchmark(scheme.encode, tree)

    sizes = [label.bit_length() for label in labels.values()]
    cores = [label.distance_array_bits() for label in labels.values()]
    benchmark.extra_info.update(
        {
            "experiment": "A-ablation",
            "variant": variant,
            "workload": workload,
            "n": tree.n,
            "max_label_bits": max(sizes),
            "avg_label_bits": round(sum(sizes) / len(sizes), 1),
            "max_core_bits": max(cores),
            "pushed_bits": scheme.encoding_stats["pushed_bits"],
        }
    )
