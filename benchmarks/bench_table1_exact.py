"""Experiment T1-exact: the "Exact" row of the paper's summary table.

For every exact scheme the benchmark measures encoding time and records the
maximum/average label size in bits next to the paper's reference curves
(1/4 log² n for the paper's scheme, 1/2 log² n for Alstrup et al., the
1/4 log² n − O(log n) lower bound).  The headline comparison — who is
smaller, by what factor — is summarised in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.core.alstrup import AlstrupScheme
from repro.core.freedman import FreedmanScheme
from repro.core.hld import HLDScheme
from repro.core.separator import SeparatorScheme
from repro.generators.workloads import make_tree
from repro.lowerbounds.bounds import (
    alstrup_upper_bound_bits,
    exact_lower_bound_bits,
    exact_upper_bound_bits,
)

SCHEMES = {
    "freedman": FreedmanScheme,
    "alstrup": AlstrupScheme,
    "hld-fixed": HLDScheme,
    "separator": SeparatorScheme,
}

SIZES = [256, 1024, 4096]
FAMILY = "random"


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("n", SIZES)
def test_exact_label_sizes(benchmark, scheme_name, n):
    tree = make_tree(FAMILY, n, seed=7)
    scheme = SCHEMES[scheme_name]()

    labels = benchmark(scheme.encode, tree)

    sizes = [label.bit_length() for label in labels.values()]
    core_sizes = [
        label.distance_array_bits()
        for label in labels.values()
        if hasattr(label, "distance_array_bits")
    ]
    benchmark.extra_info.update(
        {
            "experiment": "T1-exact",
            "family": FAMILY,
            "n": n,
            "scheme": scheme_name,
            "max_label_bits": max(sizes),
            "avg_label_bits": round(sum(sizes) / len(sizes), 1),
            "core_max_bits": max(core_sizes) if core_sizes else None,
            "paper_quarter_log2": round(exact_upper_bound_bits(n), 1),
            "paper_half_log2": round(alstrup_upper_bound_bits(n), 1),
            "paper_lower_bound": round(exact_lower_bound_bits(n), 1),
        }
    )
