"""Experiment S-throughput: network serving with and without micro-batching.

The server's coalescer turns every event-loop tick's worth of pipelined
QUERY requests — across all connections — into one ``QueryEngine.batch``
call and one response write per connection.  This runner measures what that
is worth end to end: a real ``repro-labels serve`` subprocess on loopback,
driven by the shared load generator (:mod:`repro.serve.loadgen`) under
uniform and Zipf-skewed workloads, against the same server started with
``--no-coalesce`` (the naive one-request-per-batch path).

``python benchmarks/bench_serve_throughput.py`` writes
``BENCH_serve_throughput.json`` at the repo root; the recorded gate is
coalesced >= 2x naive on the 10k-pair uniform workload.  The pytest entry
points below only smoke the plumbing (tiny sizes, no timing assertions) so
CI machine noise cannot flake them.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile

import perf_common  # the src/ path shim plus shared timing helpers  # noqa: F401

from repro.api import DistanceIndex
from repro.generators.workloads import make_tree
from repro.serve.loadgen import run_load

_READY = re.compile(r"serving .* on ([0-9.]+):(\d+) \[")


def spawn_server(store_path: str, *, coalesce: bool, port: int = 0):
    """Start ``repro-labels serve`` on loopback; returns ``(process, host, port)``.

    The server picks an ephemeral port (``--port 0``) and we parse the
    actual address from its ready line.
    """
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        store_path,
        "--host",
        "127.0.0.1",
        "--port",
        str(port),
    ]
    if not coalesce:
        command.append("--no-coalesce")
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.join(perf_common.REPO_ROOT, "src") + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=environment,
    )
    line = process.stdout.readline()
    match = _READY.search(line)
    if not match:
        process.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return process, match.group(1), int(match.group(2))


def shutdown_server(process) -> str:
    """SIGTERM the server and return its shutdown summary line."""
    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=30)
    if process.returncode != 0:
        raise RuntimeError(f"server exited {process.returncode}: {output!r}")
    for line in output.splitlines():
        if line.startswith("shutdown:"):
            return line
    raise RuntimeError(f"server never printed its shutdown summary: {output!r}")


def _measure(store_path: str, *, coalesce: bool, workload: str, pairs: int,
             connections: int, window: int, skew: float = 1.1, seed: int = 0,
             warmup: int = 0, repeats: int = 1) -> dict:
    """Drive one server mode; optional warmup pass and best-of-``repeats``.

    The warmup pass parses every touched label into the engine's LRU before
    the timed runs, so both modes are measured at the steady state the
    server actually serves from (cold-start cost is the store's concern and
    is gated separately in ``BENCH_query_time.json``).
    """
    process, host, port = spawn_server(store_path, coalesce=coalesce)
    try:
        if warmup:
            run_load(
                host, port, pairs=warmup, workload=workload, skew=skew,
                connections=connections, window=window, seed=seed,
            )
        report = None
        for _ in range(max(1, repeats)):
            candidate = run_load(
                host,
                port,
                pairs=pairs,
                workload=workload,
                skew=skew,
                connections=connections,
                window=window,
                seed=seed,
            )
            if report is None or candidate["qps"] > report["qps"]:
                report = candidate
    finally:
        shutdown = shutdown_server(process)
    server = report["server"]
    return {
        "qps": report["qps"],
        "seconds": report["seconds"],
        "checksum": report["checksum"],
        "p50_ms": server["latency_ms"]["p50"],
        "p99_ms": server["latency_ms"]["p99"],
        "mean_batch_size": server["mean_batch_size"],
        "flushes": server["flushes"],
        "cache_hit_rate": server["index"]["cache_hit_rate"] if "index" in server else None,
        "shutdown": shutdown,
    }


# -- pytest smoke entry points (no timing assertions) -------------------------


def test_subprocess_server_round_trip_and_clean_shutdown(tmp_path):
    """Both serving modes answer a small workload identically and shut down
    cleanly on SIGTERM (the CI smoke path)."""
    tree = make_tree("random", 200, seed=23)
    index = DistanceIndex.build(tree, "freedman")
    store_path = str(tmp_path / "bench_serve.bin")
    index.save(store_path)
    checksums = {}
    for coalesce in (True, False):
        row = _measure(
            store_path,
            coalesce=coalesce,
            workload="uniform",
            pairs=400,
            connections=2,
            window=32,
        )
        checksums[coalesce] = row["checksum"]
        assert row["shutdown"].startswith("shutdown:")
        assert "400 queries" in row["shutdown"]
    assert checksums[True] == checksums[False]


def test_zipf_workload_over_the_wire(tmp_path):
    tree = make_tree("random", 300, seed=29)
    DistanceIndex.build(tree, "freedman").save(str(tmp_path / "z.bin"))
    row = _measure(
        str(tmp_path / "z.bin"),
        coalesce=True,
        workload="zipf",
        pairs=500,
        connections=2,
        window=32,
        skew=1.2,
    )
    assert row["qps"] > 0
    assert row["cache_hit_rate"] > 0.5  # the hot set stays cached


# -- machine-readable runner (BENCH_serve_throughput.json) --------------------


def run_perf_json(smoke: bool = False, out: str | None = None) -> dict:
    """Measure coalesced vs naive serving and write the JSON trajectory.

    The gate (recorded, and asserted when this file runs as a script):
    micro-batched serving >= 2x the naive one-request-per-batch path on the
    10k-pair uniform workload.
    """
    n = 512 if smoke else 4096
    pairs = 2000 if smoke else 10000
    connections = 2 if smoke else 4
    window = 64 if smoke else 128
    warmup = 500 if smoke else 4000
    repeats = 2 if smoke else 3
    required_speedup = 2.0

    tree = make_tree("random", n, seed=23)
    index = DistanceIndex.build(tree, "freedman")
    workloads_json: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as scratch:
        store_path = os.path.join(scratch, "serve_bench.bin")
        index.save(store_path)
        for workload in ("uniform", "zipf"):
            rows = {}
            for label, coalesce in (("coalesced", True), ("naive", False)):
                rows[label] = _measure(
                    store_path,
                    coalesce=coalesce,
                    workload=workload,
                    pairs=pairs,
                    connections=connections,
                    window=window,
                    warmup=warmup,
                    repeats=repeats,
                )
            if rows["coalesced"]["checksum"] != rows["naive"]["checksum"]:
                raise AssertionError("serving modes disagree on query answers")
            rows["speedup"] = round(rows["coalesced"]["qps"] / rows["naive"]["qps"], 2)
            workloads_json[workload] = rows

    speedup = workloads_json["uniform"]["speedup"]
    payload = {
        "benchmark": "serve_throughput",
        "mode": "smoke" if smoke else "full",
        "scheme": "freedman",
        "n": n,
        "pairs": pairs,
        "connections": connections,
        "window": window,
        "workloads": workloads_json,
        "gate": {
            "description": (
                "repro-labels serve (micro-batched coalescer) vs the same "
                "server with --no-coalesce (one-request-per-batch), pipelined "
                f"loadgen over {connections} connections on loopback"
            ),
            "workload": "uniform",
            "coalesced_qps": workloads_json["uniform"]["coalesced"]["qps"],
            "naive_qps": workloads_json["uniform"]["naive"]["qps"],
            "speedup": speedup,
            "required_speedup": required_speedup,
            "pass": speedup >= required_speedup,
        },
    }
    path = perf_common.write_json("BENCH_serve_throughput.json", payload, out=out)
    print(f"wrote {path}")
    print(
        f"gate: {speedup}x (required {required_speedup}x, "
        f"pass={payload['gate']['pass']})"
    )
    return payload


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI sizes")
    parser.add_argument("--out", default=None, help="output path override")
    arguments = parser.parse_args()
    run_perf_json(smoke=arguments.smoke, out=arguments.out)
