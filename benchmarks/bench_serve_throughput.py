"""Experiment S-throughput: network serving — micro-batching, shard-per-core
fleets and the hot-pair response cache.

The server's coalescer turns every event-loop tick's worth of pipelined
QUERY requests — across all connections — into one ``QueryEngine.batch``
call and one response write per connection.  This runner measures what that
is worth end to end: a real ``repro-labels serve`` subprocess on loopback,
driven by the shared load generator (:mod:`repro.serve.loadgen`) under
uniform and Zipf-skewed workloads, against the same server started with
``--no-coalesce`` (the naive one-request-per-batch path).  Three further
sections cover the scale-out features: ``multi_worker`` runs the same
workload against ``--workers 1/2/4`` fleets (SO_REUSEPORT shard-per-core
supervisor), ``response_cache`` measures ``--pair-cache`` on the
Zipf-skewed workload, and ``observability`` records the throughput cost of
request tracing at a 1% sample rate (advisory <= 5% gate — recorded, never
raising).

``python benchmarks/bench_serve_throughput.py`` writes
``BENCH_serve_throughput.json`` at the repo root; the recorded gates are
coalesced >= 2x naive on the 10k-pair uniform workload, and ``--workers 4``
>= 1.8x the single process (asserted on hosts with >= 4 CPUs — a fleet
cannot out-run its core count, and the CPU count is recorded next to the
measurement).  The pytest entry points below only smoke the plumbing (tiny
sizes, no timing assertions) so CI machine noise cannot flake them.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile

import perf_common  # the src/ path shim plus shared timing helpers  # noqa: F401

from repro.api import DistanceIndex
from repro.generators.workloads import make_tree
from repro.serve.loadgen import run_load

_READY = re.compile(r"serving .* on ([0-9.]+):(\d+) \[")


def spawn_server(
    store_path: str,
    *,
    coalesce: bool,
    port: int = 0,
    workers: int = 1,
    pair_cache: int = 0,
):
    """Start ``repro-labels serve`` on loopback; returns ``(process, host, port)``.

    The server picks an ephemeral port (``--port 0``) and we parse the
    actual address from its ready line.  ``workers > 1`` starts the
    shard-per-core fleet supervisor; ``pair_cache`` enables the hot-pair
    response cache.
    """
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        store_path,
        "--host",
        "127.0.0.1",
        "--port",
        str(port),
        "--workers",
        str(workers),
    ]
    if pair_cache:
        command.extend(["--pair-cache", str(pair_cache)])
    if not coalesce:
        command.append("--no-coalesce")
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.join(perf_common.REPO_ROOT, "src") + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=environment,
    )
    line = process.stdout.readline()
    match = _READY.search(line)
    if not match:
        process.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return process, match.group(1), int(match.group(2))


def shutdown_server(process) -> str:
    """SIGTERM the server and return its shutdown summary line."""
    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=30)
    if process.returncode != 0:
        raise RuntimeError(f"server exited {process.returncode}: {output!r}")
    for line in output.splitlines():
        if line.startswith("shutdown:"):
            return line
    raise RuntimeError(f"server never printed its shutdown summary: {output!r}")


def _measure(store_path: str, *, coalesce: bool, workload: str, pairs: int,
             connections: int, window: int, skew: float = 1.1, seed: int = 0,
             warmup: int = 0, repeats: int = 1, workers: int = 1,
             pair_cache: int = 0, trace_every: int = 0) -> dict:
    """Drive one server mode; optional warmup pass and best-of-``repeats``.

    The warmup pass parses every touched label into the engine's LRU before
    the timed runs, so both modes are measured at the steady state the
    server actually serves from (cold-start cost is the store's concern and
    is gated separately in ``BENCH_query_time.json``).
    """
    process, host, port = spawn_server(
        store_path, coalesce=coalesce, workers=workers, pair_cache=pair_cache
    )
    try:
        if warmup:
            run_load(
                host, port, pairs=warmup, workload=workload, skew=skew,
                connections=connections, window=window, seed=seed,
            )
        report = None
        for _ in range(max(1, repeats)):
            candidate = run_load(
                host,
                port,
                pairs=pairs,
                workload=workload,
                skew=skew,
                connections=connections,
                window=window,
                seed=seed,
                trace_every=trace_every,
            )
            if report is None or candidate["qps"] > report["qps"]:
                report = candidate
    finally:
        shutdown = shutdown_server(process)
    server = report["server"]
    index_stats = server.get("index", {})
    pair_cache = index_stats.get("pair_cache", {})
    return {
        "qps": report["qps"],
        "seconds": report["seconds"],
        "checksum": report["checksum"],
        "workers": report["workers"],
        "busy_retried": report["busy_retried"],
        "busy_rejections": server.get("busy_rejections", 0),
        "p50_ms": server["latency_ms"]["p50"],
        "p99_ms": server["latency_ms"]["p99"],
        "mean_batch_size": server["mean_batch_size"],
        "flushes": server["flushes"],
        "cache_hit_rate": index_stats.get("cache_hit_rate"),
        "pair_cache_hit_rate": pair_cache.get("hit_rate") if pair_cache.get("enabled") else None,
        "tracing": report.get("tracing"),
        "shutdown": shutdown,
    }


# -- pytest smoke entry points (no timing assertions) -------------------------


def test_subprocess_server_round_trip_and_clean_shutdown(tmp_path):
    """Both serving modes answer a small workload identically and shut down
    cleanly on SIGTERM (the CI smoke path)."""
    tree = make_tree("random", 200, seed=23)
    index = DistanceIndex.build(tree, "freedman")
    store_path = str(tmp_path / "bench_serve.bin")
    index.save(store_path)
    checksums = {}
    for coalesce in (True, False):
        row = _measure(
            store_path,
            coalesce=coalesce,
            workload="uniform",
            pairs=400,
            connections=2,
            window=32,
        )
        checksums[coalesce] = row["checksum"]
        assert row["shutdown"].startswith("shutdown:")
        assert "400 queries" in row["shutdown"]
    assert checksums[True] == checksums[False]


def test_zipf_workload_over_the_wire(tmp_path):
    tree = make_tree("random", 300, seed=29)
    DistanceIndex.build(tree, "freedman").save(str(tmp_path / "z.bin"))
    row = _measure(
        str(tmp_path / "z.bin"),
        coalesce=True,
        workload="zipf",
        pairs=500,
        connections=2,
        window=32,
        skew=1.2,
    )
    assert row["qps"] > 0
    assert row["cache_hit_rate"] > 0.5  # the hot set stays cached


def test_multi_worker_fleet_round_trip(tmp_path):
    """A ``--workers 2`` fleet answers the same workload with the same
    checksum as a single process and shuts down cleanly on SIGTERM."""
    tree = make_tree("random", 200, seed=23)
    index = DistanceIndex.build(tree, "freedman")
    store_path = str(tmp_path / "bench_fleet.bin")
    index.save(store_path)
    rows = {}
    for workers in (1, 2):
        rows[workers] = _measure(
            store_path,
            coalesce=True,
            workload="uniform",
            pairs=400,
            connections=4,
            window=32,
            workers=workers,
        )
        assert rows[workers]["shutdown"].startswith("shutdown:")
    assert rows[1]["checksum"] == rows[2]["checksum"]
    assert rows[2]["workers"] >= 1  # distinct workers reached by loadgen


def test_traced_loadgen_round_trip(tmp_path):
    """A 1-in-50 traced run answers identically and folds a per-stage
    breakdown of real sampled requests into the report."""
    tree = make_tree("random", 200, seed=23)
    DistanceIndex.build(tree, "freedman").save(str(tmp_path / "t.bin"))
    rows = {}
    for label, trace_every in (("off", 0), ("on", 50)):
        rows[label] = _measure(
            str(tmp_path / "t.bin"),
            coalesce=True,
            workload="uniform",
            pairs=400,
            connections=2,
            window=32,
            trace_every=trace_every,
        )
    assert rows["off"]["checksum"] == rows["on"]["checksum"]
    assert rows["off"]["tracing"] is None
    tracing = rows["on"]["tracing"]
    assert tracing["collected"] >= 1
    assert "batch" in tracing["stages"]


def test_response_cache_round_trip(tmp_path):
    """``--pair-cache`` answers a Zipf workload identically and reports a
    non-trivial hot-pair hit rate."""
    tree = make_tree("random", 200, seed=29)
    DistanceIndex.build(tree, "freedman").save(str(tmp_path / "c.bin"))
    rows = {}
    for label, pair_cache in (("off", 0), ("on", 2048)):
        rows[label] = _measure(
            str(tmp_path / "c.bin"),
            coalesce=True,
            workload="zipf",
            pairs=500,
            connections=2,
            window=32,
            skew=1.2,
            pair_cache=pair_cache,
        )
    assert rows["off"]["checksum"] == rows["on"]["checksum"]
    assert rows["on"]["pair_cache_hit_rate"] > 0.1
    assert rows["off"]["pair_cache_hit_rate"] is None


# -- machine-readable runner (BENCH_serve_throughput.json) --------------------


def run_perf_json(smoke: bool = False, out: str | None = None) -> dict:
    """Measure coalesced-vs-naive serving, multi-worker scaling and the
    hot-pair response cache; write the JSON trajectory.

    Two gates (recorded, and asserted when this file runs as a script):

    * micro-batched serving >= 2x the naive one-request-per-batch path on
      the 10k-pair uniform workload (as since PR 4);
    * ``--workers 4`` aggregate throughput >= 1.8x the single-process path
      on the same workload.  Shard-per-core scaling needs cores to shard
      over, so this gate is asserted only when the host has >= 4 CPUs; the
      measured ratio and the CPU count are recorded either way.
    """
    n = 512 if smoke else 4096
    pairs = 2000 if smoke else 10000
    connections = 2 if smoke else 4
    window = 64 if smoke else 128
    warmup = 500 if smoke else 4000
    repeats = 2 if smoke else 3
    required_speedup = 2.0
    required_scaling = 1.8
    cpus = os.cpu_count() or 1
    worker_counts = (1, 2) if smoke else (1, 2, 4)
    scaling_pairs = pairs * 2  # longer steady state amortises fleet startup

    tree = make_tree("random", n, seed=23)
    index = DistanceIndex.build(tree, "freedman")
    workloads_json: dict[str, dict] = {}
    scaling_json: dict = {"cpus": cpus, "workers": {}}
    cache_json: dict = {}
    with tempfile.TemporaryDirectory() as scratch:
        store_path = os.path.join(scratch, "serve_bench.bin")
        index.save(store_path)
        for workload in ("uniform", "zipf"):
            rows = {}
            for label, coalesce in (("coalesced", True), ("naive", False)):
                rows[label] = _measure(
                    store_path,
                    coalesce=coalesce,
                    workload=workload,
                    pairs=pairs,
                    connections=connections,
                    window=window,
                    warmup=warmup,
                    repeats=repeats,
                )
            if rows["coalesced"]["checksum"] != rows["naive"]["checksum"]:
                raise AssertionError("serving modes disagree on query answers")
            rows["speedup"] = round(rows["coalesced"]["qps"] / rows["naive"]["qps"], 2)
            workloads_json[workload] = rows

        # -- multi-worker scaling: same workload, growing fleets ----------
        scaling_checksums = set()
        for workers in worker_counts:
            row = _measure(
                store_path,
                coalesce=True,
                workload="uniform",
                pairs=scaling_pairs,
                connections=max(connections, 2 * workers),
                window=window,
                warmup=warmup,
                repeats=repeats,
                workers=workers,
            )
            scaling_checksums.add(row["checksum"])
            scaling_json["workers"][str(workers)] = row
        if len(scaling_checksums) != 1:
            raise AssertionError("worker fleets disagree on query answers")
        base_qps = scaling_json["workers"]["1"]["qps"]
        for row in scaling_json["workers"].values():
            row["speedup_vs_1"] = round(row["qps"] / base_qps, 2)

        # -- hot-pair response cache on a hot Zipf workload ---------------
        # skew 1.3: the repeated-hot-pair traffic shape the cache exists
        # for (the flatter skew-1.1 distribution barely repeats pairs)
        cache_json["skew"] = 1.3
        for label, pair_cache in (("uncached", 0), ("pair_cache", 4096)):
            cache_json[label] = _measure(
                store_path,
                coalesce=True,
                workload="zipf",
                pairs=pairs,
                connections=connections,
                window=window,
                skew=cache_json["skew"],
                warmup=warmup,
                repeats=repeats,
                pair_cache=pair_cache,
            )
        if cache_json["uncached"]["checksum"] != cache_json["pair_cache"]["checksum"]:
            raise AssertionError("response cache changed query answers")
        cache_json["speedup"] = round(
            cache_json["pair_cache"]["qps"] / cache_json["uncached"]["qps"], 2
        )

        # -- observability: tracing overhead at a 1% sample rate ----------
        # Same server config, same workload, with and without every-100th
        # request stamped for server-side span recording.  Advisory gate
        # (recorded, never raising): machine noise on a saturated loopback
        # can exceed the few microseconds a sampled trace costs.
        obs_json = {"sample_every": 100}
        for label, trace_every in (("tracing_off", 0), ("tracing_on", 100)):
            obs_json[label] = _measure(
                store_path,
                coalesce=True,
                workload="uniform",
                pairs=pairs,
                connections=connections,
                window=window,
                warmup=warmup,
                repeats=repeats,
                trace_every=trace_every,
            )
        if obs_json["tracing_off"]["checksum"] != obs_json["tracing_on"]["checksum"]:
            raise AssertionError("tracing changed query answers")
        overhead_pct = round(
            max(
                0.0,
                1.0 - obs_json["tracing_on"]["qps"] / obs_json["tracing_off"]["qps"],
            )
            * 100.0,
            2,
        )
        obs_json["gate"] = {
            "description": (
                "pipelined loadgen with every 100th request traced "
                "(server-side span recording) vs the same run untraced; "
                "advisory only — recorded, never raising"
            ),
            "overhead_pct": overhead_pct,
            "required_max_pct": 5.0,
            "enforced": False,
            "pass": overhead_pct <= 5.0,
        }

    speedup = workloads_json["uniform"]["speedup"]
    top_workers = str(worker_counts[-1])
    scaling_speedup = scaling_json["workers"][top_workers]["speedup_vs_1"]
    scaling_gate = {
        "description": (
            f"repro-labels serve --workers {top_workers} (shard-per-core "
            "fleet, SO_REUSEPORT) vs --workers 1, same uniform workload, "
            "pipelined loadgen on loopback"
        ),
        "workload": "uniform",
        "cpus": cpus,
        "workers": int(top_workers),
        "fleet_qps": scaling_json["workers"][top_workers]["qps"],
        "single_qps": base_qps,
        "speedup": scaling_speedup,
        "required_speedup": required_scaling,
        "enforced": cpus >= 4 and not smoke,
        "pass": scaling_speedup >= required_scaling,
    }
    if not scaling_gate["enforced"]:
        scaling_gate["note"] = (
            f"host has {cpus} CPU(s); shard-per-core scaling cannot exceed "
            "1x without cores to shard over, so the 1.8x gate is recorded "
            "but only enforced on hosts with >= 4 CPUs"
        )
    payload = {
        "benchmark": "serve_throughput",
        "mode": "smoke" if smoke else "full",
        "scheme": "freedman",
        "n": n,
        "pairs": pairs,
        "connections": connections,
        "window": window,
        "workloads": workloads_json,
        "multi_worker": dict(scaling_json, gate=scaling_gate),
        "response_cache": cache_json,
        "observability": obs_json,
        "gate": {
            "description": (
                "repro-labels serve (micro-batched coalescer) vs the same "
                "server with --no-coalesce (one-request-per-batch), pipelined "
                f"loadgen over {connections} connections on loopback"
            ),
            "workload": "uniform",
            "coalesced_qps": workloads_json["uniform"]["coalesced"]["qps"],
            "naive_qps": workloads_json["uniform"]["naive"]["qps"],
            "speedup": speedup,
            "required_speedup": required_speedup,
            "pass": speedup >= required_speedup,
        },
    }
    path = perf_common.write_json("BENCH_serve_throughput.json", payload, out=out)
    print(f"wrote {path}")
    print(
        f"gate: {speedup}x (required {required_speedup}x, "
        f"pass={payload['gate']['pass']})"
    )
    print(
        f"scaling: {scaling_speedup}x with {top_workers} workers on {cpus} "
        f"CPU(s) (required {required_scaling}x, "
        f"enforced={scaling_gate['enforced']}, pass={scaling_gate['pass']})"
    )
    print(
        f"response cache (zipf): {cache_json['speedup']}x, hit rate "
        f"{cache_json['pair_cache']['pair_cache_hit_rate']}"
    )
    print(
        f"tracing overhead at 1% sampling: {overhead_pct}% "
        f"(advisory <= 5%, pass={obs_json['gate']['pass']})"
    )
    if scaling_gate["enforced"] and not scaling_gate["pass"]:
        raise AssertionError(
            f"multi-worker scaling {scaling_speedup}x below the "
            f"{required_scaling}x gate"
        )
    return payload


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI sizes")
    parser.add_argument("--out", default=None, help="output path override")
    arguments = parser.parse_args()
    run_perf_json(smoke=arguments.smoke, out=arguments.out)
