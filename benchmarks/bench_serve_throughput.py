"""Experiment S-throughput: network serving — micro-batching, shard-per-core
fleets and the hot-pair response cache.

The server's coalescer turns every event-loop tick's worth of pipelined
QUERY requests — across all connections — into one ``QueryEngine.batch``
call and one response write per connection.  This runner measures what that
is worth end to end: a real ``repro-labels serve`` subprocess on loopback,
driven by the shared load generator (:mod:`repro.serve.loadgen`) under
uniform and Zipf-skewed workloads, against the same server started with
``--no-coalesce`` (the naive one-request-per-batch path).  Three further
sections cover the scale-out features: ``multi_worker`` runs the same
workload against ``--workers 1/2/4`` fleets (SO_REUSEPORT shard-per-core
supervisor), ``response_cache`` measures ``--pair-cache`` on the
Zipf-skewed workload, ``observability`` records the throughput cost of
request tracing at a 1% sample rate (advisory <= 5% gate — recorded, never
raising), and ``sharded_catalog`` measures routed vs unrouted loadgen
against a ``--workers 2 --shard-members`` member-sharded fleet.

``python benchmarks/bench_serve_throughput.py`` writes
``BENCH_serve_throughput.json`` at the repo root; the recorded gates are
coalesced >= 2x naive on the 10k-pair uniform workload, ``--workers 4``
>= 1.8x the single process (asserted on hosts with >= 4 CPUs — a fleet
cannot out-run its core count, and the CPU count is recorded next to the
measurement), and routed >= 1.3x unrouted on the sharded catalog (asserted
on hosts with >= 2 CPUs).  ``--quick`` runs everything at smoke sizes
tagged ``mode: "quick"``; the pytest entry points below only smoke the
plumbing (tiny sizes, no timing assertions) so CI machine noise cannot
flake them.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile

import perf_common  # the src/ path shim plus shared timing helpers  # noqa: F401

from repro.api import DistanceIndex, IndexCatalog
from repro.generators.workloads import make_tree
from repro.serve.loadgen import run_load

_READY = re.compile(r"serving .* on ([0-9.]+):(\d+) \[")


def spawn_server(
    store_path: str,
    *,
    coalesce: bool,
    port: int = 0,
    workers: int = 1,
    pair_cache: int = 0,
    extra_args: list[str] | None = None,
):
    """Start ``repro-labels serve`` on loopback; returns ``(process, host, port)``.

    The server picks an ephemeral port (``--port 0``) and we parse the
    actual address from its ready line.  ``workers > 1`` starts the
    shard-per-core fleet supervisor; ``pair_cache`` enables the hot-pair
    response cache; ``extra_args`` append verbatim (e.g.
    ``["--shard-members"]``).
    """
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        store_path,
        "--host",
        "127.0.0.1",
        "--port",
        str(port),
        "--workers",
        str(workers),
    ]
    if pair_cache:
        command.extend(["--pair-cache", str(pair_cache)])
    if not coalesce:
        command.append("--no-coalesce")
    if extra_args:
        command.extend(extra_args)
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.join(perf_common.REPO_ROOT, "src") + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=environment,
    )
    line = process.stdout.readline()
    match = _READY.search(line)
    if not match:
        process.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return process, match.group(1), int(match.group(2))


def shutdown_server(process) -> str:
    """SIGTERM the server and return its shutdown summary line."""
    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=30)
    if process.returncode != 0:
        raise RuntimeError(f"server exited {process.returncode}: {output!r}")
    for line in output.splitlines():
        if line.startswith("shutdown:"):
            return line
    raise RuntimeError(f"server never printed its shutdown summary: {output!r}")


def _measure(store_path: str, *, coalesce: bool, workload: str, pairs: int,
             connections: int, window: int, skew: float = 1.1, seed: int = 0,
             warmup: int = 0, repeats: int = 1, workers: int = 1,
             pair_cache: int = 0, trace_every: int = 0,
             extra_args: list[str] | None = None,
             members: list[str] | None = None, member_skew: float = 0.0,
             route: bool = False) -> dict:
    """Drive one server mode; optional warmup pass and best-of-``repeats``.

    The warmup pass parses every touched label into the engine's LRU before
    the timed runs, so both modes are measured at the steady state the
    server actually serves from (cold-start cost is the store's concern and
    is gated separately in ``BENCH_query_time.json``).  ``members`` spreads
    the workload over catalog members and ``route=True`` lets the loadgen
    consult the fleet's routing table (sharded servers; see ``extra_args``).
    """
    process, host, port = spawn_server(
        store_path, coalesce=coalesce, workers=workers, pair_cache=pair_cache,
        extra_args=extra_args,
    )
    try:
        if warmup:
            run_load(
                host, port, pairs=warmup, workload=workload, skew=skew,
                connections=connections, window=window, seed=seed,
                members=members, member_skew=member_skew, route=route,
            )
        report = None
        for _ in range(max(1, repeats)):
            candidate = run_load(
                host,
                port,
                pairs=pairs,
                workload=workload,
                skew=skew,
                connections=connections,
                window=window,
                seed=seed,
                trace_every=trace_every,
                members=members,
                member_skew=member_skew,
                route=route,
            )
            if report is None or candidate["qps"] > report["qps"]:
                report = candidate
    finally:
        shutdown = shutdown_server(process)
    server = report["server"]
    index_stats = server.get("index", {})
    pair_cache = index_stats.get("pair_cache", {})
    row = {
        "qps": report["qps"],
        "seconds": report["seconds"],
        "checksum": report["checksum"],
        "workers": report["workers"],
        "busy_retried": report["busy_retried"],
        "busy_rejections": server.get("busy_rejections", 0),
        "p50_ms": server["latency_ms"]["p50"],
        "p99_ms": server["latency_ms"]["p99"],
        "mean_batch_size": server["mean_batch_size"],
        "flushes": server["flushes"],
        "cache_hit_rate": index_stats.get("cache_hit_rate"),
        "pair_cache_hit_rate": pair_cache.get("hit_rate") if pair_cache.get("enabled") else None,
        "tracing": report.get("tracing"),
        "shutdown": shutdown,
    }
    if members is not None:
        row["route"] = route
        row["route_redirects"] = report.get("route_redirects", 0)
        row["misroutes"] = server.get("misroutes", 0)
        row["moved_redirects"] = server.get("moved_redirects", 0)
    return row


# -- pytest smoke entry points (no timing assertions) -------------------------


def test_subprocess_server_round_trip_and_clean_shutdown(tmp_path):
    """Both serving modes answer a small workload identically and shut down
    cleanly on SIGTERM (the CI smoke path)."""
    tree = make_tree("random", 200, seed=23)
    index = DistanceIndex.build(tree, "freedman")
    store_path = str(tmp_path / "bench_serve.bin")
    index.save(store_path)
    checksums = {}
    for coalesce in (True, False):
        row = _measure(
            store_path,
            coalesce=coalesce,
            workload="uniform",
            pairs=400,
            connections=2,
            window=32,
        )
        checksums[coalesce] = row["checksum"]
        assert row["shutdown"].startswith("shutdown:")
        assert "400 queries" in row["shutdown"]
    assert checksums[True] == checksums[False]


def test_zipf_workload_over_the_wire(tmp_path):
    tree = make_tree("random", 300, seed=29)
    DistanceIndex.build(tree, "freedman").save(str(tmp_path / "z.bin"))
    row = _measure(
        str(tmp_path / "z.bin"),
        coalesce=True,
        workload="zipf",
        pairs=500,
        connections=2,
        window=32,
        skew=1.2,
    )
    assert row["qps"] > 0
    assert row["cache_hit_rate"] > 0.5  # the hot set stays cached


def test_multi_worker_fleet_round_trip(tmp_path):
    """A ``--workers 2`` fleet answers the same workload with the same
    checksum as a single process and shuts down cleanly on SIGTERM."""
    tree = make_tree("random", 200, seed=23)
    index = DistanceIndex.build(tree, "freedman")
    store_path = str(tmp_path / "bench_fleet.bin")
    index.save(store_path)
    rows = {}
    for workers in (1, 2):
        rows[workers] = _measure(
            store_path,
            coalesce=True,
            workload="uniform",
            pairs=400,
            connections=4,
            window=32,
            workers=workers,
        )
        assert rows[workers]["shutdown"].startswith("shutdown:")
    assert rows[1]["checksum"] == rows[2]["checksum"]
    assert rows[2]["workers"] >= 1  # distinct workers reached by loadgen


def test_sharded_fleet_routed_round_trip(tmp_path):
    """A ``--workers 2 --shard-members`` fleet answers a multi-member
    workload with the same checksum routed and unrouted, and the routed run
    causes zero misroutes (every stamped request reached an owner)."""
    catalog = IndexCatalog()
    names = [f"t{i}" for i in range(4)]
    for rank, name in enumerate(names):
        tree = make_tree("random", 120, seed=40 + rank)
        catalog.add(name, DistanceIndex.build(tree, "freedman"))
    catalog_path = str(tmp_path / "bench_shard.cat")
    catalog.save(catalog_path)
    rows = {}
    for label, route in (("unrouted", False), ("routed", True)):
        rows[label] = _measure(
            catalog_path,
            coalesce=True,
            workload="uniform",
            pairs=400,
            connections=2,
            window=32,
            workers=2,
            extra_args=["--shard-members"],
            members=names,
            member_skew=0.9,
            route=route,
        )
    assert rows["unrouted"]["checksum"] == rows["routed"]["checksum"]
    assert rows["routed"]["misroutes"] == 0
    assert rows["routed"]["shutdown"].startswith("shutdown:")


def test_traced_loadgen_round_trip(tmp_path):
    """A 1-in-50 traced run answers identically and folds a per-stage
    breakdown of real sampled requests into the report."""
    tree = make_tree("random", 200, seed=23)
    DistanceIndex.build(tree, "freedman").save(str(tmp_path / "t.bin"))
    rows = {}
    for label, trace_every in (("off", 0), ("on", 50)):
        rows[label] = _measure(
            str(tmp_path / "t.bin"),
            coalesce=True,
            workload="uniform",
            pairs=400,
            connections=2,
            window=32,
            trace_every=trace_every,
        )
    assert rows["off"]["checksum"] == rows["on"]["checksum"]
    assert rows["off"]["tracing"] is None
    tracing = rows["on"]["tracing"]
    assert tracing["collected"] >= 1
    assert "batch" in tracing["stages"]


def test_response_cache_round_trip(tmp_path):
    """``--pair-cache`` answers a Zipf workload identically and reports a
    non-trivial hot-pair hit rate."""
    tree = make_tree("random", 200, seed=29)
    DistanceIndex.build(tree, "freedman").save(str(tmp_path / "c.bin"))
    rows = {}
    for label, pair_cache in (("off", 0), ("on", 2048)):
        rows[label] = _measure(
            str(tmp_path / "c.bin"),
            coalesce=True,
            workload="zipf",
            pairs=500,
            connections=2,
            window=32,
            skew=1.2,
            pair_cache=pair_cache,
        )
    assert rows["off"]["checksum"] == rows["on"]["checksum"]
    assert rows["on"]["pair_cache_hit_rate"] > 0.1
    assert rows["off"]["pair_cache_hit_rate"] is None


# -- machine-readable runner (BENCH_serve_throughput.json) --------------------


def run_perf_json(
    smoke: bool = False, out: str | None = None, quick: bool = False
) -> dict:
    """Measure coalesced-vs-naive serving, multi-worker scaling, the
    hot-pair response cache and sharded-catalog routing; write the JSON
    trajectory.

    Three gates (recorded, and asserted when this file runs as a script):

    * micro-batched serving >= 2x the naive one-request-per-batch path on
      the 10k-pair uniform workload (as since PR 4);
    * ``--workers 4`` aggregate throughput >= 1.8x the single-process path
      on the same workload.  Shard-per-core scaling needs cores to shard
      over, so this gate is asserted only when the host has >= 4 CPUs; the
      measured ratio and the CPU count are recorded either way;
    * routed >= 1.3x unrouted on the sharded-catalog workload at 2 workers
      (asserted on hosts with >= 2 CPUs, full mode only).

    ``quick=True`` runs every section at smoke sizes but tags the payload
    ``mode: "quick"`` — a fast local iteration lane whose rows are never
    confused with the recorded full-mode trajectory.
    """
    small = smoke or quick
    mode = "smoke" if smoke else ("quick" if quick else "full")
    n = 512 if small else 4096
    pairs = 2000 if small else 10000
    connections = 2 if small else 4
    window = 64 if small else 128
    warmup = 500 if small else 4000
    repeats = 2 if small else 3
    required_speedup = 2.0
    required_scaling = 1.8
    cpus = os.cpu_count() or 1
    worker_counts = (1, 2) if small else (1, 2, 4)
    scaling_pairs = pairs * 2  # longer steady state amortises fleet startup

    tree = make_tree("random", n, seed=23)
    index = DistanceIndex.build(tree, "freedman")
    workloads_json: dict[str, dict] = {}
    scaling_json: dict = {"cpus": cpus, "workers": {}}
    cache_json: dict = {}
    with tempfile.TemporaryDirectory() as scratch:
        store_path = os.path.join(scratch, "serve_bench.bin")
        index.save(store_path)
        for workload in ("uniform", "zipf"):
            rows = {}
            for label, coalesce in (("coalesced", True), ("naive", False)):
                rows[label] = _measure(
                    store_path,
                    coalesce=coalesce,
                    workload=workload,
                    pairs=pairs,
                    connections=connections,
                    window=window,
                    warmup=warmup,
                    repeats=repeats,
                )
            if rows["coalesced"]["checksum"] != rows["naive"]["checksum"]:
                raise AssertionError("serving modes disagree on query answers")
            rows["speedup"] = round(rows["coalesced"]["qps"] / rows["naive"]["qps"], 2)
            workloads_json[workload] = rows

        # -- multi-worker scaling: same workload, growing fleets ----------
        scaling_checksums = set()
        for workers in worker_counts:
            row = _measure(
                store_path,
                coalesce=True,
                workload="uniform",
                pairs=scaling_pairs,
                connections=max(connections, 2 * workers),
                window=window,
                warmup=warmup,
                repeats=repeats,
                workers=workers,
            )
            scaling_checksums.add(row["checksum"])
            scaling_json["workers"][str(workers)] = row
        if len(scaling_checksums) != 1:
            raise AssertionError("worker fleets disagree on query answers")
        base_qps = scaling_json["workers"]["1"]["qps"]
        for row in scaling_json["workers"].values():
            row["speedup_vs_1"] = round(row["qps"] / base_qps, 2)

        # -- hot-pair response cache on a hot Zipf workload ---------------
        # skew 1.3: the repeated-hot-pair traffic shape the cache exists
        # for (the flatter skew-1.1 distribution barely repeats pairs)
        cache_json["skew"] = 1.3
        for label, pair_cache in (("uncached", 0), ("pair_cache", 4096)):
            cache_json[label] = _measure(
                store_path,
                coalesce=True,
                workload="zipf",
                pairs=pairs,
                connections=connections,
                window=window,
                skew=cache_json["skew"],
                warmup=warmup,
                repeats=repeats,
                pair_cache=pair_cache,
            )
        if cache_json["uncached"]["checksum"] != cache_json["pair_cache"]["checksum"]:
            raise AssertionError("response cache changed query answers")
        cache_json["speedup"] = round(
            cache_json["pair_cache"]["qps"] / cache_json["uncached"]["qps"], 2
        )

        # -- observability: tracing overhead at a 1% sample rate ----------
        # Same server config, same workload, with and without every-100th
        # request stamped for server-side span recording.  Advisory gate
        # (recorded, never raising): machine noise on a saturated loopback
        # can exceed the few microseconds a sampled trace costs.
        obs_json = {"sample_every": 100}
        for label, trace_every in (("tracing_off", 0), ("tracing_on", 100)):
            obs_json[label] = _measure(
                store_path,
                coalesce=True,
                workload="uniform",
                pairs=pairs,
                connections=connections,
                window=window,
                warmup=warmup,
                repeats=repeats,
                trace_every=trace_every,
            )
        if obs_json["tracing_off"]["checksum"] != obs_json["tracing_on"]["checksum"]:
            raise AssertionError("tracing changed query answers")
        overhead_pct = round(
            max(
                0.0,
                1.0 - obs_json["tracing_on"]["qps"] / obs_json["tracing_off"]["qps"],
            )
            * 100.0,
            2,
        )
        obs_json["gate"] = {
            "description": (
                "pipelined loadgen with every 100th request traced "
                "(server-side span recording) vs the same run untraced; "
                "advisory only — recorded, never raising"
            ),
            "overhead_pct": overhead_pct,
            "required_max_pct": 5.0,
            "enforced": False,
            "pass": overhead_pct <= 5.0,
        }

        # -- sharded catalog: routed vs unrouted on a member-sharded fleet -
        # Both runs hit the SAME server shape (--workers 2 --shard-members);
        # the only variable is whether the loadgen consults the routing
        # table.  Unrouted traffic lands on whichever worker SO_REUSEPORT
        # picks, so ~half the requests are served by a non-owner through the
        # lazy fallback open (double-opened members, cold caches); routed
        # traffic goes straight to each member's owning shard.
        member_count = 4 if small else 8
        member_n = 256 if small else 2048
        shard_pairs = 1200 if small else 8000
        member_names = [f"tree{i:02d}" for i in range(member_count)]
        shard_catalog = IndexCatalog()
        for rank, member_name in enumerate(member_names):
            shard_catalog.add(
                member_name,
                DistanceIndex.build(
                    make_tree("random", member_n, seed=100 + rank), "freedman"
                ),
            )
        catalog_path = os.path.join(scratch, "serve_bench_sharded.cat")
        shard_catalog.save(catalog_path)
        sharded_json: dict = {
            "members": member_count,
            "member_n": member_n,
            "member_skew": 0.9,
            "workers": 2,
            "mode": mode,
        }
        for label, routed in (("unrouted", False), ("routed", True)):
            sharded_json[label] = _measure(
                catalog_path,
                coalesce=True,
                workload="uniform",
                pairs=shard_pairs,
                connections=connections,
                window=window,
                warmup=warmup,
                repeats=repeats,
                workers=2,
                extra_args=["--shard-members"],
                members=member_names,
                member_skew=0.9,
                route=routed,
            )
        if sharded_json["unrouted"]["checksum"] != sharded_json["routed"]["checksum"]:
            raise AssertionError("routed serving changed query answers")
        routed_speedup = round(
            sharded_json["routed"]["qps"] / sharded_json["unrouted"]["qps"], 2
        )
        required_routing = 1.3
        sharded_json["gate"] = {
            "description": (
                "routed loadgen (per-member direct connections from the "
                "fleet's consistent-hash table) vs the same workload through "
                "the shared SO_REUSEPORT address, both against a --workers 2 "
                f"--shard-members fleet over {member_count} catalog members"
            ),
            "routed_qps": sharded_json["routed"]["qps"],
            "unrouted_qps": sharded_json["unrouted"]["qps"],
            "speedup": routed_speedup,
            "required_speedup": required_routing,
            "cpus": cpus,
            "enforced": cpus >= 2 and not small,
            "pass": routed_speedup >= required_routing,
        }
        if not sharded_json["gate"]["enforced"]:
            sharded_json["gate"]["note"] = (
                f"host has {cpus} CPU(s) and mode={mode!r}; shard placement "
                "pays off when owners run on their own cores, so the 1.3x "
                "gate is recorded but only enforced in full mode on hosts "
                "with >= 2 CPUs"
            )

    speedup = workloads_json["uniform"]["speedup"]
    top_workers = str(worker_counts[-1])
    scaling_speedup = scaling_json["workers"][top_workers]["speedup_vs_1"]
    scaling_gate = {
        "description": (
            f"repro-labels serve --workers {top_workers} (shard-per-core "
            "fleet, SO_REUSEPORT) vs --workers 1, same uniform workload, "
            "pipelined loadgen on loopback"
        ),
        "workload": "uniform",
        "cpus": cpus,
        "workers": int(top_workers),
        "fleet_qps": scaling_json["workers"][top_workers]["qps"],
        "single_qps": base_qps,
        "speedup": scaling_speedup,
        "required_speedup": required_scaling,
        "enforced": cpus >= 4 and not smoke,
        "pass": scaling_speedup >= required_scaling,
    }
    if not scaling_gate["enforced"]:
        scaling_gate["note"] = (
            f"host has {cpus} CPU(s); shard-per-core scaling cannot exceed "
            "1x without cores to shard over, so the 1.8x gate is recorded "
            "but only enforced on hosts with >= 4 CPUs"
        )
    payload = {
        "benchmark": "serve_throughput",
        "mode": mode,
        "scheme": "freedman",
        "n": n,
        "pairs": pairs,
        "connections": connections,
        "window": window,
        "workloads": workloads_json,
        "multi_worker": dict(scaling_json, gate=scaling_gate),
        "response_cache": cache_json,
        "observability": obs_json,
        "sharded_catalog": sharded_json,
        "gate": {
            "description": (
                "repro-labels serve (micro-batched coalescer) vs the same "
                "server with --no-coalesce (one-request-per-batch), pipelined "
                f"loadgen over {connections} connections on loopback"
            ),
            "workload": "uniform",
            "coalesced_qps": workloads_json["uniform"]["coalesced"]["qps"],
            "naive_qps": workloads_json["uniform"]["naive"]["qps"],
            "speedup": speedup,
            "required_speedup": required_speedup,
            "pass": speedup >= required_speedup,
        },
    }
    path = perf_common.write_json("BENCH_serve_throughput.json", payload, out=out)
    print(f"wrote {path}")
    print(
        f"gate: {speedup}x (required {required_speedup}x, "
        f"pass={payload['gate']['pass']})"
    )
    print(
        f"scaling: {scaling_speedup}x with {top_workers} workers on {cpus} "
        f"CPU(s) (required {required_scaling}x, "
        f"enforced={scaling_gate['enforced']}, pass={scaling_gate['pass']})"
    )
    print(
        f"response cache (zipf): {cache_json['speedup']}x, hit rate "
        f"{cache_json['pair_cache']['pair_cache_hit_rate']}"
    )
    print(
        f"tracing overhead at 1% sampling: {overhead_pct}% "
        f"(advisory <= 5%, pass={obs_json['gate']['pass']})"
    )
    print(
        f"sharded catalog: routed {routed_speedup}x unrouted over "
        f"{member_count} members on {cpus} CPU(s) (required "
        f"{required_routing}x, enforced={sharded_json['gate']['enforced']}, "
        f"pass={sharded_json['gate']['pass']})"
    )
    if scaling_gate["enforced"] and not scaling_gate["pass"]:
        raise AssertionError(
            f"multi-worker scaling {scaling_speedup}x below the "
            f"{required_scaling}x gate"
        )
    if sharded_json["gate"]["enforced"] and not sharded_json["gate"]["pass"]:
        raise AssertionError(
            f"routed serving {routed_speedup}x below the "
            f"{required_routing}x gate"
        )
    return payload


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI sizes")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-sized runs tagged mode=quick (fast local iteration lane)",
    )
    parser.add_argument("--out", default=None, help="output path override")
    arguments = parser.parse_args()
    run_perf_json(smoke=arguments.smoke, out=arguments.out, quick=arguments.quick)
