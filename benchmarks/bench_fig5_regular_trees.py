"""Experiment F5-regular (Figure 5 / Lemma 4.1): regular-tree instances.

Builds (x, h, d)-regular trees, verifies the Lemma 4.1 counting bound
numerically, and measures k-distance labels on the instances.
"""

from __future__ import annotations

import pytest

from repro.core.kdistance import KDistanceScheme
from repro.lowerbounds.regular_trees import (
    build_regular_tree,
    exact_pairwise_common_sum,
    lemma_4_1_total_bound,
    regular_tree_leaf_count,
)

CASES = [
    {"k": 1, "h": 2, "d": 2},
    {"k": 2, "h": 2, "d": 2},
    {"k": 1, "h": 3, "d": 2},
    {"k": 2, "h": 2, "d": 3},
]


@pytest.mark.parametrize("case", CASES, ids=lambda c: f"k{c['k']}-h{c['h']}-d{c['d']}")
def test_regular_tree_kdistance_labels(benchmark, case):
    k, h, d = case["k"], case["h"], case["d"]
    x = [1 + (i % h) for i in range(k)]
    tree = build_regular_tree(x, h, d)
    scheme = KDistanceScheme(2 * k)

    labels = benchmark(scheme.encode, tree)

    sizes = [label.bit_length() for label in labels.values()]
    exact_sum = exact_pairwise_common_sum(h, d, k)
    bound = lemma_4_1_total_bound(h, d, k)
    assert exact_sum <= bound + 1e-9
    benchmark.extra_info.update(
        {
            "experiment": "F5-regular",
            "k": k,
            "h": h,
            "d": d,
            "nodes": tree.n,
            "leaves": regular_tree_leaf_count(h, d, k),
            "kdistance_max_label_bits": max(sizes),
            "lemma_4_1_bound": round(bound, 1),
            "exact_pairwise_sum": exact_sum,
        }
    )
