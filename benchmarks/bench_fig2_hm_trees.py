"""Experiment F2-hm (Figure 2 / Lemma 2.3): (h, M)-tree lower-bound instances.

Builds (h, M)-trees, subdivides them into unweighted trees, runs the paper's
upper-bound scheme on them and records the measured leaf-label size next to
the h/2 log M information-theoretic lower bound.
"""

from __future__ import annotations

import pytest

from repro.core.freedman import FreedmanScheme
from repro.lowerbounds.hm_trees import (
    build_hm_tree,
    hm_parameter_count,
    lemma_2_3_bound_bits,
    subdivide_to_unweighted,
)

CASES = [(3, 8), (4, 8), (4, 32), (5, 16)]


@pytest.mark.parametrize("h,M", CASES)
def test_hm_tree_labels(benchmark, h, M):
    parameters = [M // 2] * hm_parameter_count(h)
    instance = build_hm_tree(h, M, parameters)
    tree, image = subdivide_to_unweighted(instance.tree)
    scheme = FreedmanScheme()

    labels = benchmark(scheme.encode, tree)

    leaf_bits = max(labels[image[leaf]].bit_length() for leaf in instance.leaves)
    benchmark.extra_info.update(
        {
            "experiment": "F2-hm",
            "h": h,
            "M": M,
            "weighted_nodes": instance.tree.n,
            "unweighted_nodes": tree.n,
            "leaf_label_max_bits": leaf_bits,
            "lemma_2_3_lower_bits": round(lemma_2_3_bound_bits(h, M), 1),
            "pushed_bits": scheme.encoding_stats["pushed_bits"],
        }
    )
    assert leaf_bits >= lemma_2_3_bound_bits(h, M)
