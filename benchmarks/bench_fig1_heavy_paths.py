"""Experiment F1-hld (Figure 1): heavy path decomposition and collapsed tree.

Measures decomposition time across tree families and records the structural
quantities the paper relies on: the number of heavy paths, the maximum light
depth and the collapsed-tree height, all of which must stay below log2 n.
"""

from __future__ import annotations

import math

import pytest

from repro.generators.workloads import make_tree
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition

FAMILIES = ["random", "path", "star", "caterpillar", "balanced_binary", "spider"]
N = 4096


@pytest.mark.parametrize("family", FAMILIES)
def test_heavy_path_decomposition(benchmark, family):
    tree = make_tree(family, N, seed=1)

    def build():
        decomposition = HeavyPathDecomposition(tree)
        collapsed = CollapsedTree(decomposition)
        return decomposition, collapsed

    decomposition, collapsed = benchmark(build)
    benchmark.extra_info.update(
        {
            "experiment": "F1-hld",
            "family": family,
            "n": N,
            "heavy_paths": decomposition.path_count(),
            "max_light_depth": decomposition.max_light_depth(),
            "collapsed_height": collapsed.height(),
            "log2_n": round(math.log2(N), 2),
        }
    )
    assert decomposition.max_light_depth() <= math.log2(N)
    assert collapsed.height() <= math.log2(N)
