"""Experiment T1-kdist-small / T1-kdist-large: the k-distance rows of Table 1.

Sweeps k across both regimes (k < log n and k >= log n), measures encoding
time and label sizes and records the matching bound formulas
(log n + O(k log(log n / k)) respectively O(log n log(k / log n))).
"""

from __future__ import annotations

import math

import pytest

from repro.core.kdistance import KDistanceScheme
from repro.generators.workloads import make_tree
from repro.lowerbounds.bounds import (
    kdistance_large_bound_bits,
    kdistance_small_upper_bound_bits,
)

N = 2048
K_VALUES = [1, 2, 4, 8, 11, 44, 176, 1024]


@pytest.mark.parametrize("k", K_VALUES)
def test_kdistance_label_sizes(benchmark, k):
    tree = make_tree("random", N, seed=11)
    scheme = KDistanceScheme(k)

    labels = benchmark(scheme.encode, tree)

    sizes = [label.bit_length() for label in labels.values()]
    log_n = math.log2(N)
    if k < log_n:
        bound = kdistance_small_upper_bound_bits(N, k)
        regime = "k < log n"
    else:
        bound = kdistance_large_bound_bits(N, k)
        regime = "k >= log n"
    benchmark.extra_info.update(
        {
            "experiment": "T1-kdistance",
            "n": N,
            "k": k,
            "regime": regime,
            "max_label_bits": max(sizes),
            "avg_label_bits": round(sum(sizes) / len(sizes), 1),
            "paper_bound_bits": round(bound, 1),
            "log_n_bits": round(log_n, 1),
        }
    )


@pytest.mark.parametrize("k", [2, 8])
def test_kdistance_query_throughput(benchmark, k, benchmark_tree, benchmark_pairs):
    scheme = KDistanceScheme(k)
    labels = scheme.encode(benchmark_tree)

    def run_queries():
        hits = 0
        for u, v in benchmark_pairs:
            if scheme.bounded_distance(labels[u], labels[v]) is not None:
                hits += 1
        return hits

    hits = benchmark(run_queries)
    benchmark.extra_info.update(
        {
            "experiment": "T1-kdistance-query",
            "k": k,
            "queries": len(benchmark_pairs),
            "within_k": hits,
        }
    )
