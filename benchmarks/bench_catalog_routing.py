"""Experiment Q-catalog: per-query overhead of catalog name routing.

An :class:`repro.api.IndexCatalog` routes ``query(name, u, v)`` through a
dict lookup and the :class:`repro.api.DistanceIndex` raw path before it
reaches the same :class:`repro.store.QueryEngine` a bare engine caller
would hit.  That routing must stay in the noise: the acceptance gate
asserts the catalog's per-query latency is at most **1.3x** a bare
engine's on the identical warmed workload.
"""

from __future__ import annotations

import time

import pytest

from repro.api import DistanceIndex, IndexCatalog
from repro.generators.workloads import make_tree, random_pairs

#: latency gate: catalog routing <= this multiple of a bare engine query
ROUTING_OVERHEAD_GATE = 1.3


def build_catalog(tree) -> tuple[IndexCatalog, DistanceIndex]:
    """A heterogeneous catalog whose 'exact' member serves the workload."""
    catalog = IndexCatalog()
    catalog.add("exact", DistanceIndex.build(tree, "freedman"))
    catalog.add("bounded", DistanceIndex.build(tree, "k-distance:k=4"))
    catalog.add("approx", DistanceIndex.build(tree, "approximate:epsilon=0.5"))
    return catalog, catalog.index("exact")


def time_per_query(run, pairs, repeats: int = 5) -> float:
    """Best-of-``repeats`` seconds per query for ``run(pairs)``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run(pairs)
        best = min(best, time.perf_counter() - start)
    return best / len(pairs)


def measure_routing_overhead(n: int = 512, queries: int = 2000, seed: int = 7) -> dict:
    """One comparison row: catalog-routed vs bare-engine query latency."""
    tree = make_tree("random", n, seed)
    pairs = random_pairs(tree, queries, seed=3)
    catalog, index = build_catalog(tree)
    engine = index.engine

    def run_engine(pairs):
        query = engine.query
        return [query(u, v) for u, v in pairs]

    def run_catalog(pairs):
        query = catalog.query
        return [query("exact", u, v, raw=True) for u, v in pairs]

    # warm the parsed-label cache so both sides measure routing, not parsing
    assert run_catalog(pairs) == run_engine(pairs)

    engine_s = time_per_query(run_engine, pairs)
    catalog_s = time_per_query(run_catalog, pairs)
    return {
        "n": n,
        "queries": queries,
        "engine_us": engine_s * 1e6,
        "catalog_us": catalog_s * 1e6,
        "overhead": catalog_s / engine_s,
    }


def test_catalog_routing_benchmark(benchmark, benchmark_tree):
    """pytest-benchmark timing of the routed path itself."""
    catalog, index = build_catalog(benchmark_tree)
    pairs = random_pairs(benchmark_tree, 500, seed=13)
    catalog.batch("exact", pairs, raw=True)  # warm the cache

    def run_routed():
        query = catalog.query
        return [query("exact", u, v, raw=True) for u, v in pairs]

    answers = benchmark(run_routed)
    assert answers == index.batch(pairs, raw=True)
    benchmark.extra_info.update(
        {
            "experiment": "Q-catalog",
            "members": len(catalog),
            "n": benchmark_tree.n,
            "queries_per_round": len(pairs),
        }
    )


def test_catalog_routing_overhead_gate():
    """Acceptance gate: name routing <= 1.3x bare single-query latency.

    Best-of-five timing over 2000 warmed queries keeps scheduler noise out;
    the routed path only adds a dict lookup and two delegating calls.
    """
    row = measure_routing_overhead()
    assert row["overhead"] <= ROUTING_OVERHEAD_GATE, (
        f"catalog routing costs {row['overhead']:.2f}x a bare engine query "
        f"({row['catalog_us']:.2f}us vs {row['engine_us']:.2f}us)"
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    row = measure_routing_overhead()
    print(
        f"n={row['n']} queries={row['queries']}  "
        f"engine {row['engine_us']:.2f}us/q  catalog {row['catalog_us']:.2f}us/q  "
        f"overhead {row['overhead']:.2f}x (gate {ROUTING_OVERHEAD_GATE}x)"
    )
