"""Beyond-RAM scale benchmark: streaming build vs in-memory, mmap vs heap.

``python benchmarks/bench_scale.py`` emits ``BENCH_scale.json`` at the repo
root with three measured claims behind :mod:`repro.scale`:

* the streaming builder (`build_store_streaming`) labels 10⁷-node trees
  byte-identically to ``LabelStore.to_bytes()`` while peaking at a fraction
  of the in-memory builder's RSS (required ratio recorded in the JSON),
* an mmap-opened store answers warm queries within 1.25x of the heap-loaded
  store at n = 10⁶ (plus the cold-cache number for the page-in story),
* ``--gate``: at n = 10⁵ an address-space cap chosen *between* the two
  builders' measured peaks kills the in-memory build with ``MemoryError``
  while the streaming build finishes under it and stays byte-identical —
  the CI assertion that the pipeline, not the machine, is what shrank.

Every build runs in a fresh child process (``--child``) so ``ru_maxrss`` is
a clean per-pipeline high-water mark: a forked child *inherits* the parent's
resident pages in its accounting, so the parent keeps its own footprint to a
few MiB and never touches a tree.  Trees are generated once per size by a
``gen-tree`` child and cached as packed int64 parent arrays.

``--smoke`` runs the same shape at CI-friendly sizes.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time

from perf_common import REPO_ROOT, write_json

TREE_SEED = 7
PAIR_SEED = 17

#: full-run sizes (the recorded BENCH_scale.json)
FULL_BUILD_N = 10_000_000
FULL_QUERY_N = 1_000_000

#: smoke / gate sizes (CI)
SMOKE_BUILD_N = 100_000
SMOKE_QUERY_N = 50_000
GATE_N = 100_000

BUILD_SCHEMES = ("hld-fixed", "freedman")
QUERY_SCHEME = "freedman"
QUERY_PAIRS = 20_000

#: acceptance thresholds recorded next to the measurements
REQUIRED_RSS_RATIO = 0.25
REQUIRED_QUERY_SLOWDOWN = 1.25


# -- child processes ---------------------------------------------------------


def _vm_peak_bytes() -> int:
    """VmPeak (peak address space) of this process, from /proc."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmPeak:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def _load_tree(tree_file: str):
    from array import array

    from repro.trees.tree import RootedTree

    parents = array("q")
    with open(tree_file, "rb") as handle:
        parents.frombytes(handle.read())
    return RootedTree(parents)


def _child_gen_tree(args) -> dict:
    from array import array

    from repro.generators.workloads import make_tree

    started = time.perf_counter()
    tree = make_tree("random", args.n, seed=TREE_SEED)
    parents = array(
        "q",
        (-1 if tree.parent(v) is None else tree.parent(v) for v in tree.nodes()),
    )
    with open(args.out, "wb") as handle:
        handle.write(parents.tobytes())
    return {"ok": True, "n": tree.n, "seconds": round(time.perf_counter() - started, 3)}


def _child_build(args) -> dict:
    from repro.core.registry import make_any_scheme
    from repro.scale.build import build_store_in_memory, build_store_streaming
    from repro.scale.memory import cap_address_space

    if args.cap_bytes:
        cap_address_space(args.cap_bytes)
    try:
        tree = _load_tree(args.tree_file)
        scheme = make_any_scheme(args.scheme)
        if args.pipeline == "streaming":
            stats = build_store_streaming(
                scheme, tree, args.out, run_bytes=args.run_mib << 20
            )
        else:
            stats = build_store_in_memory(scheme, tree, args.out)
    except MemoryError:
        return {"ok": False, "error": "MemoryError", "pipeline": args.pipeline}
    stats["ok"] = True
    stats["pipeline"] = args.pipeline
    stats["vm_peak_bytes"] = _vm_peak_bytes()
    return stats


def _child_query(args) -> dict:
    from repro.api.index import DistanceIndex
    from repro.generators.workloads import uniform_pairs

    with open(args.store, "rb") as handle:
        try:
            os.posix_fadvise(handle.fileno(), 0, 0, os.POSIX_FADV_DONTNEED)
        except (AttributeError, OSError):
            pass

    index = DistanceIndex.open(args.store, mmap=args.mmap)
    pairs = uniform_pairs(index.n, args.pairs, seed=PAIR_SEED)

    def timed_pass():
        started = time.perf_counter()
        answers = index.batch(pairs, raw=True)
        return time.perf_counter() - started, answers

    cold_seconds, answers = timed_pass()
    warm_seconds, again = timed_pass()
    if answers != again:
        return {"ok": False, "error": "cold and warm passes disagree"}
    checksum = sum(answers) % (1 << 32)
    return {
        "ok": True,
        "mmap": args.mmap,
        "pairs": len(pairs),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "cold_ops": round(len(pairs) / cold_seconds, 1),
        "warm_ops": round(len(pairs) / warm_seconds, 1),
        "checksum": checksum,
    }


def _child_query_check(args) -> dict:
    import random

    from repro.api.index import DistanceIndex
    from repro.oracles.exact_oracle import TreeDistanceOracle

    tree = _load_tree(args.tree_file)
    oracle = TreeDistanceOracle(tree)
    index = DistanceIndex.open(args.store, mmap=True)
    if index.n != tree.n:
        return {"ok": False, "error": f"store n {index.n} != tree n {tree.n}"}
    rng = random.Random(PAIR_SEED)
    for _ in range(args.pairs):
        u, v = rng.randrange(tree.n), rng.randrange(tree.n)
        got = index.query(u, v, raw=True)
        want = oracle.distance(u, v)
        if got != want:
            return {"ok": False, "error": f"d({u},{v}) = {got}, oracle {want}"}
    return {"ok": True, "pairs_checked": args.pairs}


# -- parent orchestration ----------------------------------------------------


def _run_child(child_args: list[str]) -> dict:
    """Run one ``--child`` subcommand, return its JSON protocol line."""
    command = [sys.executable, os.path.abspath(__file__), "--child"] + child_args
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {child_args[:4]} failed:\n{proc.stderr[-2000:]}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _ensure_tree(work_dir: str, n: int) -> str:
    tree_file = os.path.join(work_dir, f"tree_{n}_{TREE_SEED}.bin")
    if not (os.path.exists(tree_file) and os.path.getsize(tree_file) == 8 * n):
        print(f"  generating tree n={n:,} ...", flush=True)
        stats = _run_child(["gen-tree", "--n", str(n), "--out", tree_file])
        print(f"  tree ready in {stats['seconds']}s", flush=True)
    return tree_file


def _build_pair(work_dir: str, tree_file: str, scheme: str, n: int) -> dict:
    """Streaming + in-memory builds of one scheme, with the identity check."""
    result: dict = {"n": n}
    paths = {}
    for pipeline in ("streaming", "memory"):
        out = os.path.join(work_dir, f"{scheme}_{pipeline}_{n}.rls")
        paths[pipeline] = out
        print(f"  {scheme} {pipeline} build at n={n:,} ...", flush=True)
        stats = _run_child(
            [
                "build",
                "--pipeline", pipeline,
                "--scheme", scheme,
                "--tree-file", tree_file,
                "--out", out,
            ]
        )
        if not stats.get("ok"):
            raise RuntimeError(f"{scheme} {pipeline} build failed: {stats}")
        peak_mib = stats["peak_rss_bytes"] / (1 << 20)
        print(
            f"    peak rss {peak_mib:,.1f} MiB  "
            f"{stats['seconds']}s  {stats['file_bytes']:,} bytes",
            flush=True,
        )
        result[pipeline] = {
            "seconds": stats["seconds"],
            "peak_rss_bytes": stats["peak_rss_bytes"],
            "file_bytes": stats["file_bytes"],
            "runs_spilled": stats.get("runs_spilled", 0),
        }
    result["byte_identical"] = _sha256(paths["streaming"]) == _sha256(paths["memory"])
    result["rss_ratio"] = round(
        result["streaming"]["peak_rss_bytes"] / result["memory"]["peak_rss_bytes"], 4
    )
    result["required_rss_ratio"] = REQUIRED_RSS_RATIO
    result["rss_ratio_ok"] = result["rss_ratio"] <= REQUIRED_RSS_RATIO
    result["bytes_per_node"] = round(
        result["streaming"]["file_bytes"] / n, 2
    )
    os.unlink(paths["memory"])
    result["store_path"] = paths["streaming"]
    return result


def _query_section(work_dir: str, n: int, store_path: str | None) -> dict:
    """Cold/warm mmap throughput against the heap-loaded warm path."""
    tree_file = _ensure_tree(work_dir, n)
    if store_path is None:
        out = os.path.join(work_dir, f"{QUERY_SCHEME}_query_{n}.rls")
        print(f"  building query store ({QUERY_SCHEME}, n={n:,}) ...", flush=True)
        stats = _run_child(
            [
                "build",
                "--pipeline", "streaming",
                "--scheme", QUERY_SCHEME,
                "--tree-file", tree_file,
                "--out", out,
            ]
        )
        if not stats.get("ok"):
            raise RuntimeError(f"query store build failed: {stats}")
        store_path = out

    runs = {}
    for label, mmap_flag in (("mmap", True), ("heap", False)):
        child = ["query", "--store", store_path, "--pairs", str(QUERY_PAIRS)]
        if mmap_flag:
            child.append("--mmap")
        runs[label] = _run_child(child)
        if not runs[label].get("ok"):
            raise RuntimeError(f"{label} query run failed: {runs[label]}")
        print(
            f"  {label:4s}: cold {runs[label]['cold_ops']:>10,.0f} ops/s  "
            f"warm {runs[label]['warm_ops']:>10,.0f} ops/s",
            flush=True,
        )
    if runs["mmap"]["checksum"] != runs["heap"]["checksum"]:
        raise RuntimeError("mmap and heap answered differently")
    slowdown = runs["heap"]["warm_ops"] / runs["mmap"]["warm_ops"]
    return {
        "n": n,
        "scheme": QUERY_SCHEME,
        "pairs": QUERY_PAIRS,
        "mmap_cold_ops": runs["mmap"]["cold_ops"],
        "mmap_warm_ops": runs["mmap"]["warm_ops"],
        "heap_warm_ops": runs["heap"]["warm_ops"],
        "mmap_warm_slowdown": round(slowdown, 4),
        "required_max_slowdown": REQUIRED_QUERY_SLOWDOWN,
        "slowdown_ok": slowdown <= REQUIRED_QUERY_SLOWDOWN,
        "checksum": runs["mmap"]["checksum"],
    }


def _gate_section(work_dir: str) -> dict:
    """The CI assertion: a cap the in-memory builder cannot satisfy.

    The cap is picked *between* the two pipelines' measured peak address
    spaces at n = 10⁵, so the outcome is a property of the pipelines and
    not of a hard-coded byte count.
    """
    n = GATE_N
    tree_file = _ensure_tree(work_dir, n)
    uncapped = {}
    shas = {}
    for pipeline in ("streaming", "memory"):
        out = os.path.join(work_dir, f"gate_{pipeline}_{n}.rls")
        stats = _run_child(
            [
                "build",
                "--pipeline", pipeline,
                "--scheme", QUERY_SCHEME,
                "--tree-file", tree_file,
                "--out", out,
            ]
        )
        if not stats.get("ok"):
            raise RuntimeError(f"gate uncapped {pipeline} build failed: {stats}")
        uncapped[pipeline] = stats
        shas[pipeline] = _sha256(out)
        print(
            f"  uncapped {pipeline:9s}: vm peak "
            f"{stats['vm_peak_bytes'] / (1 << 20):,.1f} MiB",
            flush=True,
        )
    if shas["streaming"] != shas["memory"]:
        raise RuntimeError("gate: streaming and in-memory artefacts differ")

    vm_s = uncapped["streaming"]["vm_peak_bytes"]
    vm_m = uncapped["memory"]["vm_peak_bytes"]
    if vm_s >= vm_m:
        raise RuntimeError(
            f"gate: streaming vm peak {vm_s} not below in-memory {vm_m}"
        )
    cap = (vm_s + vm_m) // 2
    print(f"  address-space cap: {cap / (1 << 20):,.1f} MiB", flush=True)

    capped_memory = _run_child(
        [
            "build",
            "--pipeline", "memory",
            "--scheme", QUERY_SCHEME,
            "--tree-file", tree_file,
            "--out", os.path.join(work_dir, f"gate_capped_memory_{n}.rls"),
            "--cap-bytes", str(cap),
        ]
    )
    memory_died = (
        not capped_memory.get("ok")
        and capped_memory.get("error") == "MemoryError"
    )
    print(f"  capped in-memory: {capped_memory}", flush=True)

    capped_out = os.path.join(work_dir, f"gate_capped_streaming_{n}.rls")
    capped_streaming = _run_child(
        [
            "build",
            "--pipeline", "streaming",
            "--scheme", QUERY_SCHEME,
            "--tree-file", tree_file,
            "--out", capped_out,
            "--cap-bytes", str(cap),
        ]
    )
    streaming_ok = bool(capped_streaming.get("ok"))
    streaming_identical = streaming_ok and _sha256(capped_out) == shas["streaming"]
    print(
        f"  capped streaming: ok={streaming_ok} "
        f"byte_identical={streaming_identical}",
        flush=True,
    )

    check = {"ok": False, "error": "not run"}
    if streaming_ok:
        check = _run_child(
            [
                "query-check",
                "--store", capped_out,
                "--tree-file", tree_file,
                "--pairs", "200",
            ]
        )
        print(f"  mmap query smoke vs oracle: {check}", flush=True)

    passed = memory_died and streaming_ok and streaming_identical and check.get("ok", False)
    return {
        "n": n,
        "scheme": QUERY_SCHEME,
        "cap_bytes": cap,
        "streaming_vm_peak_bytes": vm_s,
        "memory_vm_peak_bytes": vm_m,
        "capped_memory_failed_with_memoryerror": memory_died,
        "capped_streaming_completed": streaming_ok,
        "capped_streaming_byte_identical": streaming_identical,
        "mmap_query_smoke_ok": bool(check.get("ok", False)),
        "passed": passed,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--gate", action="store_true",
        help="run only the capped-build assertion (exit 1 on failure)",
    )
    parser.add_argument("--out", help="JSON output path (default: repo root)")
    parser.add_argument(
        "--work-dir", default=os.path.join(REPO_ROOT, ".bench_scale"),
        help="scratch directory for trees and stores",
    )
    parser.add_argument("--keep", action="store_true", help="keep scratch files")

    parser.add_argument("--child", help=argparse.SUPPRESS)
    parser.add_argument("--n", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--pipeline", help=argparse.SUPPRESS)
    parser.add_argument("--scheme", help=argparse.SUPPRESS)
    parser.add_argument("--tree-file", help=argparse.SUPPRESS)
    parser.add_argument("--store", help=argparse.SUPPRESS)
    parser.add_argument("--pairs", type=int, default=QUERY_PAIRS, help=argparse.SUPPRESS)
    parser.add_argument("--mmap", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--cap-bytes", type=int, default=0, help=argparse.SUPPRESS)
    parser.add_argument("--run-mib", type=int, default=32, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.child:
        handler = {
            "gen-tree": _child_gen_tree,
            "build": _child_build,
            "query": _child_query,
            "query-check": _child_query_check,
        }[args.child]
        print(json.dumps(handler(args)))
        return 0

    os.makedirs(args.work_dir, exist_ok=True)
    started = time.perf_counter()

    # Scratch cleanup must run on EVERY exit path -- the gate's early
    # return and crashed runs used to leave hundreds of MB in .bench_scale.
    try:
        if args.gate:
            print("scale gate (capped build, n=100,000):", flush=True)
            gate = _gate_section(args.work_dir)
            payload = {"benchmark": "scale", "mode": "gate", "gate": gate}
            path = write_json("BENCH_scale.json", payload, out=args.out)
            print(f"wrote {path}")
            if not gate["passed"]:
                print("GATE FAILED", file=sys.stderr)
                return 1
            print(f"gate passed in {time.perf_counter() - started:.1f}s")
            return 0

        build_n = SMOKE_BUILD_N if args.smoke else FULL_BUILD_N
        query_n = SMOKE_QUERY_N if args.smoke else FULL_QUERY_N

        builds = {}
        tree_file = _ensure_tree(args.work_dir, build_n)
        for scheme in BUILD_SCHEMES:
            print(f"build section: {scheme}", flush=True)
            builds[scheme] = _build_pair(args.work_dir, tree_file, scheme, build_n)

        print("query section:", flush=True)
        query_store = None
        if query_n == build_n and QUERY_SCHEME in builds:
            query_store = builds[QUERY_SCHEME].pop("store_path", None)
        else:
            for scheme in builds:
                builds[scheme].pop("store_path", None)
        query = _query_section(args.work_dir, query_n, query_store)

        payload = {
            "benchmark": "scale",
            "mode": "smoke" if args.smoke else "full",
            "tree_family": "random",
            "tree_seed": TREE_SEED,
            "builds": builds,
            "query": query,
        }
        path = write_json("BENCH_scale.json", payload, out=args.out)
        print(f"wrote {path} in {time.perf_counter() - started:.1f}s")
        return 0
    finally:
        if not args.keep:
            import shutil

            shutil.rmtree(args.work_dir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
