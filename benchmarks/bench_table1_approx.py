"""Experiment T1-approx: the "Approximate" row of the summary table.

Sweeps epsilon, measures encoding time and label sizes, and records the
Theta(log(1/eps) log n) reference together with the worst observed stretch.
"""

from __future__ import annotations

import pytest

from repro.core.approximate import ApproximateScheme
from repro.generators.workloads import make_tree, random_pairs
from repro.lowerbounds.bounds import approx_bound_bits
from repro.oracles.exact_oracle import TreeDistanceOracle

N = 2048
EPSILONS = [1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125]


@pytest.mark.parametrize("eps", EPSILONS)
def test_approximate_label_sizes(benchmark, eps):
    tree = make_tree("random", N, seed=13)
    scheme = ApproximateScheme(eps)

    labels = benchmark(scheme.encode, tree)

    sizes = [label.bit_length() for label in labels.values()]
    oracle = TreeDistanceOracle(tree)
    worst = 1.0
    for u, v in random_pairs(tree, 200, seed=5):
        exact = oracle.distance(u, v)
        if exact == 0:
            continue
        worst = max(worst, scheme.approximate_distance(labels[u], labels[v]) / exact)
    benchmark.extra_info.update(
        {
            "experiment": "T1-approx",
            "n": N,
            "eps": eps,
            "max_label_bits": max(sizes),
            "avg_label_bits": round(sum(sizes) / len(sizes), 1),
            "paper_bound_bits": round(approx_bound_bits(N, eps), 1),
            "worst_observed_stretch": round(worst, 4),
            "allowed_stretch": 1.0 + eps,
        }
    )
