"""Setuptools shim plus a best-effort native kernel build.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works in offline environments whose pip cannot
build PEP 517 editable wheels (no ``wheel`` package available), and so an
install attempts to compile the :mod:`repro.kernels` native extension
(``src/repro/kernels/_kernels.c``) up front.  The build is strictly
best-effort: no compiler, no cffi, or any compile error leaves a pure-Python
install — ``repro.kernels`` probes again at first use and degrades
gracefully, so failure here is logged and swallowed, never fatal.
"""

import sys

from setuptools import setup
from setuptools.command.build_py import build_py


class build_py_with_kernels(build_py):
    """Standard build_py, then try to compile the native kernel library."""

    def run(self):
        super().run()
        try:
            sys.path.insert(0, "src")
            from repro.kernels.native import ensure_built

            path = ensure_built()
            print(f"repro.kernels: native extension built at {path}")
        except Exception as error:  # pragma: no cover - environment dependent
            print(
                "repro.kernels: native extension not built "
                f"({error}); pure-Python tiers will serve",
            )
        finally:
            if sys.path and sys.path[0] == "src":
                sys.path.pop(0)


setup(cmdclass={"build_py": build_py_with_kernels})
