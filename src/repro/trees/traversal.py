"""Iterative traversals used by oracles and schemes.

All traversals are iterative so that deep trees (paths of tens of thousands
of nodes) never hit CPython's recursion limit.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.trees.tree import RootedTree


def preorder(tree: RootedTree) -> list[int]:
    """Preorder traversal with children visited in stored order."""
    return tree.preorder()


def postorder(tree: RootedTree) -> list[int]:
    """Postorder traversal with children visited in stored order."""
    return tree.postorder()


def bfs_order(tree: RootedTree) -> list[int]:
    """Breadth-first order from the root."""
    order = []
    queue = deque([tree.root])
    while queue:
        node = queue.popleft()
        order.append(node)
        queue.extend(tree.children(node))
    return order


def euler_tour(tree: RootedTree) -> tuple[list[int], list[int], list[int]]:
    """Euler tour of the tree.

    Returns ``(tour, depths, first_occurrence)`` where ``tour`` lists nodes in
    the order they are visited (each internal node appears once per child
    visit plus once), ``depths`` gives the depth of each tour entry and
    ``first_occurrence[v]`` is the index of the first appearance of ``v``.
    This is the classical input to the sparse-table LCA oracle.
    """
    tour: list[int] = []
    depths: list[int] = []
    first: list[int] = [-1] * tree.n

    stack: list[tuple[int, int, int]] = [(tree.root, 0, 0)]
    # each stack frame: (node, depth, index of next child to expand)
    while stack:
        node, depth, child_index = stack.pop()
        if child_index == 0 or True:
            tour.append(node)
            depths.append(depth)
            if first[node] == -1:
                first[node] = len(tour) - 1
        children = tree.children(node)
        if child_index < len(children):
            stack.append((node, depth, child_index + 1))
            stack.append((children[child_index], depth + 1, 0))
    return tour, depths, first


def leaves_in_preorder(tree: RootedTree) -> Iterator[int]:
    """Yield leaves in preorder."""
    for node in tree.preorder():
        if tree.is_leaf(node):
            yield node


def nodes_by_depth(tree: RootedTree) -> dict[int, list[int]]:
    """Group nodes by depth."""
    groups: dict[int, list[int]] = {}
    for node in tree.nodes():
        groups.setdefault(tree.depth(node), []).append(node)
    return groups
