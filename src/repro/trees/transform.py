"""The Section 2 transform: leaf attachment and binarization.

The paper reduces distance labeling of an arbitrary unweighted tree to
labeling the *leaves* of a *binary* tree whose edges have weights in
``{0, 1}``:

* every node ``u`` receives a pendant leaf ``u+`` attached by a 0-weight
  edge (queries are asked on the pendant leaves),
* nodes with more than two children are replaced by a chain of intermediate
  nodes connected by 0-weight edges.

Both operations preserve all pairwise distances between the pendant leaves,
so a scheme that labels the leaves of the transformed tree labels every node
of the original tree.

Deviation from the paper (documented in DESIGN.md §3.2): we attach a pendant
leaf to *every* original node, not only to internal ones.  This guarantees
that every queried node hangs off its ancestor heavy paths via light edges,
which the accumulator reconstruction of Property 3.2 relies on.

The node maps are compact ``array('i')`` rows rather than dicts (4 bytes
per node instead of ~100 per dict entry): ``query_node[original]`` indexes
exactly like the old mapping, and ``origin`` uses ``-1`` for transformed
nodes that represent no original node.  At the 10⁷-node scale of
:mod:`repro.scale` the dict versions alone cost gigabytes.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.trees.tree import RootedTree


@dataclass
class TransformResult:
    """Outcome of a tree transform.

    Attributes:
        tree: the transformed tree.
        query_node: row indexed by original node giving the node of ``tree``
            on which queries about the original node should be asked.
        origin: inverse row indexed by transformed node (``-1`` where the
            transformed node represents no original node).
    """

    tree: RootedTree
    query_node: array
    origin: array


def attach_leaves(tree: RootedTree, only_internal: bool = False) -> TransformResult:
    """Attach a 0-weight pendant leaf to (internal or all) nodes.

    Returns a transform whose ``query_node`` maps every original node to its
    pendant leaf (or to itself if no leaf was attached).
    """
    n = tree.n
    parents = array("i", (-1 if tree.parent(v) is None else tree.parent(v) for v in tree.nodes()))
    weights = array("q", (tree.edge_weight(v) for v in tree.nodes()))
    query_node = array("i", range(n))

    next_node = n
    for node in tree.nodes():
        if only_internal and tree.is_leaf(node):
            continue
        parents.append(node)
        weights.append(0)
        query_node[node] = next_node
        next_node += 1

    transformed = RootedTree(parents, weights)
    origin = array("i", bytes(4 * next_node))
    for node in range(n, next_node):
        origin[node] = -1
    return TransformResult(transformed, query_node, origin)


def binarize(tree: RootedTree) -> TransformResult:
    """Make every node have at most two children.

    A node with children ``c1 .. ck`` (k > 2) keeps ``c1`` and delegates the
    rest to a chain of fresh internal nodes connected by 0-weight edges, so
    all original pairwise distances are preserved.
    """
    n = tree.n
    parents = array("i", [-1]) * n
    weights = array("q", bytes(8 * n))

    next_node = n
    extra_parents = array("i")
    extra_weights = array("q")

    for node in tree.nodes():
        children = tree.children(node)
        if len(children) <= 2:
            for child in children:
                parents[child] = node
                weights[child] = tree.edge_weight(child)
            continue
        # first child stays attached to the original node
        first = children[0]
        parents[first] = node
        weights[first] = tree.edge_weight(first)
        anchor = node
        remaining = children[1:]
        # chain of dummies; each dummy holds one child, the last holds two
        while len(remaining) > 2:
            dummy = next_node
            next_node += 1
            extra_parents.append(anchor)
            extra_weights.append(0)
            child = remaining.pop(0)
            parents[child] = dummy
            weights[child] = tree.edge_weight(child)
            anchor = dummy
        dummy = next_node
        next_node += 1
        extra_parents.append(anchor)
        extra_weights.append(0)
        for child in remaining:
            parents[child] = dummy
            weights[child] = tree.edge_weight(child)

    transformed = RootedTree(parents + extra_parents, weights + extra_weights)
    query_node = array("i", range(n))
    origin = array("i", range(n)) + array("i", [-1]) * (next_node - n)
    return TransformResult(transformed, query_node, origin)


def prepare_for_leaf_queries(
    tree: RootedTree, binarize_tree: bool = True
) -> TransformResult:
    """Full Section 2 pipeline: attach pendant leaves, then binarize.

    The result's ``query_node`` maps each original node to a *leaf* of the
    transformed tree, and all leaf-to-leaf distances in the transformed tree
    equal the corresponding original distances.
    """
    attached = attach_leaves(tree)
    if not binarize_tree:
        return attached
    binarized = binarize(attached.tree)
    bin_query = binarized.query_node
    query_node = array("i", (bin_query[leaf] for leaf in attached.query_node))
    origin = array("i", [-1]) * binarized.tree.n
    for original in range(tree.n):
        origin[query_node[original]] = original
    return TransformResult(binarized.tree, query_node, origin)
