"""Rooted-tree substrate.

Everything in the paper operates on rooted trees: the labeling schemes, the
heavy path decomposition of Section 2, the collapsed tree of Fig. 1, the
transform that reduces arbitrary trees to binary trees with 0/1 edge weights
whose queries touch only leaves, and the lower-bound instance families.

This package provides:

* :class:`~repro.trees.tree.RootedTree` — an immutable rooted tree with
  optional non-negative integer edge weights,
* builders from parent arrays, edge lists and networkx graphs,
* iterative traversals (preorder, postorder, Euler tour, BFS),
* the Section 2 transform (leaf attachment + binarization),
* the heavy path decomposition in the paper's ``>= |T|/2`` variant and the
  classical largest-child variant,
* the collapsed tree C(T) with child ordering, exceptional edges and the
  domination order used by Lemma 3.1.
"""

from repro.trees.tree import RootedTree
from repro.trees.builder import (
    tree_from_edges,
    tree_from_parents,
    tree_from_networkx,
)
from repro.trees.transform import TransformResult, attach_leaves, binarize, prepare_for_leaf_queries
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.collapsed import CollapsedTree

__all__ = [
    "RootedTree",
    "tree_from_parents",
    "tree_from_edges",
    "tree_from_networkx",
    "TransformResult",
    "attach_leaves",
    "binarize",
    "prepare_for_leaf_queries",
    "HeavyPathDecomposition",
    "CollapsedTree",
]
