"""Structural validation helpers.

These checks back the property tests: heavy paths must partition the tree,
light depths are bounded by ``log2 n``, the collapsed tree's height is
bounded by ``log2 n``, and the Section 2 transform preserves distances.
"""

from __future__ import annotations

import math

from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree


def check_partition_into_paths(decomposition: HeavyPathDecomposition) -> None:
    """Every node lies on exactly one heavy path and paths are downward chains."""
    tree = decomposition.tree
    seen = [0] * tree.n
    for path_id, path in enumerate(decomposition.paths()):
        for index, node in enumerate(path):
            seen[node] += 1
            if index > 0:
                parent = tree.parent(node)
                if parent != path[index - 1]:
                    raise AssertionError(
                        f"path {path_id} is not a downward chain at node {node}"
                    )
    if any(count != 1 for count in seen):
        raise AssertionError("heavy paths do not partition the node set")


def check_light_depth_bound(decomposition: HeavyPathDecomposition) -> None:
    """Light depth is at most log2 n for the paper's decomposition variant."""
    n = decomposition.tree.n
    bound = max(1, int(math.floor(math.log2(n)))) if n > 1 else 0
    worst = decomposition.max_light_depth()
    if worst > bound:
        raise AssertionError(f"light depth {worst} exceeds log2(n) = {bound}")


def check_collapsed_height_bound(collapsed: CollapsedTree) -> None:
    """Collapsed tree height is at most log2 n."""
    n = collapsed.tree.n
    bound = max(1, int(math.floor(math.log2(n)))) if n > 1 else 0
    height = collapsed.height()
    if height > bound:
        raise AssertionError(f"collapsed height {height} exceeds log2(n) = {bound}")


def check_heavy_path_rule(decomposition: HeavyPathDecomposition) -> None:
    """The paper's rule: each path step keeps at least half the decomposition size."""
    if decomposition.variant != "paper":
        return
    tree = decomposition.tree
    for path in decomposition.paths():
        decomposition_size = tree.subtree_size(path[0])
        for node in path[1:]:
            if tree.subtree_size(node) * 2 < decomposition_size:
                raise AssertionError(
                    "heavy path descends into a subtree smaller than |T|/2"
                )
        tail = path[-1]
        for child in tree.children(tail):
            if tree.subtree_size(child) * 2 >= decomposition_size:
                raise AssertionError(
                    "heavy path stopped although a half-size child exists"
                )


def check_transform_preserves_distances(
    original: RootedTree,
    transformed: RootedTree,
    query_node,
    sample_pairs: list[tuple[int, int]],
    distance_fn,
) -> None:
    """Distances between query nodes must equal original distances."""
    for u, v in sample_pairs:
        original_distance = distance_fn(original, u, v)
        transformed_distance = distance_fn(transformed, query_node[u], query_node[v])
        if original_distance != transformed_distance:
            raise AssertionError(
                f"transform changed distance between {u} and {v}: "
                f"{original_distance} != {transformed_distance}"
            )
