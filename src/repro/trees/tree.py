"""The rooted tree data structure.

Nodes are integers ``0 .. n-1``.  Every node except the root has a parent and
a non-negative integer weight on the edge to its parent (default 1, the
unweighted case).  The structure is immutable after construction; derived
quantities (subtree sizes, depths, root distances, traversal orders) are
computed once and cached.

Storage is compact: every node-valued quantity lives in an ``array('i')``
(4 bytes per node instead of a pointer to a Python ``int`` object each;
node ids fit ``int32`` up to the 2·10⁹-node mark, far past the 10⁸ ceiling
of :mod:`repro.scale`), weighted quantities (edge weights, root distances)
in an ``array('q')``, and the children adjacency is CSR — one flat child
array plus per-node start offsets.  That keeps a tree near ~52 bytes/node,
which is what makes the 10⁷–10⁸-node instances of the external-memory
pipeline hold in RAM at all; the accessor API is unchanged and none of
this is visible to callers.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence


class TreeError(ValueError):
    """Raised when tree construction input is inconsistent."""


class RootedTree:
    """An immutable rooted tree with integer nodes and weighted edges."""

    def __init__(
        self,
        parents: Sequence[int | None],
        weights: Sequence[int] | None = None,
    ) -> None:
        n = len(parents)
        if n == 0:
            raise TreeError("a tree must contain at least one node")
        # -1 encodes "no parent" internally; accessors translate to None
        parent_row = array("i", (-1 if p is None or p < 0 else p for p in parents))
        roots = [v for v in range(n) if parent_row[v] < 0]
        if len(roots) != 1:
            raise TreeError(f"expected exactly one root, found {len(roots)}")
        self._root = roots[0]
        self._parents = parent_row
        if weights is None:
            self._weights = array("q", [1]) * n
            self._weights[self._root] = 0
        else:
            if len(weights) != n:
                raise TreeError("weights must have one entry per node")
            self._weights = array("q", weights)
            if any(w < 0 for w in self._weights):
                raise TreeError("edge weights must be non-negative")
            self._weights[self._root] = 0
        for v in range(n):
            if self._parents[v] >= n:
                raise TreeError(f"parent of node {v} out of range: {self._parents[v]}")

        # children in CSR form, construction order == ascending child id
        counts = array("i", bytes(4 * (n + 1)))
        for v in range(n):
            p = parent_row[v]
            if p >= 0:
                counts[p + 1] += 1
        for v in range(n):
            counts[v + 1] += counts[v]
        self._child_start = counts
        data = array("i", bytes(4 * (n - 1))) if n > 1 else array("i")
        cursor = array("i", counts[:n])
        for v in range(n):
            p = parent_row[v]
            if p >= 0:
                data[cursor[p]] = v
                cursor[p] += 1
        self._child_data = data

        self._validate_acyclic()
        self._compute_orders()

    # -- construction helpers -------------------------------------------

    def _validate_acyclic(self) -> None:
        n = len(self._parents)
        seen = bytearray(n)
        seen[self._root] = 1
        stack = [self._root]
        visited = 1
        start, data = self._child_start, self._child_data
        while stack:
            node = stack.pop()
            for child in data[start[node] : start[node + 1]]:
                if seen[child]:
                    raise TreeError("parent array contains a cycle")
                seen[child] = 1
                visited += 1
                stack.append(child)
        if visited != n:
            raise TreeError("parent array is disconnected")

    def _compute_orders(self) -> None:
        n = len(self._parents)
        zeros = bytes(4 * n)
        preorder = array("i", zeros)
        postorder = array("i", zeros)
        depth = array("i", zeros)
        root_distance = array("q", bytes(8 * n))
        subtree_size = array("i", [1]) * n
        start, data, weights = self._child_start, self._child_data, self._weights

        pre_cursor = post_cursor = 0
        stack: list[int] = [self._root]
        # non-negative entry = enter the node, ~entry = exit it
        while stack:
            node = stack.pop()
            if node < 0:
                node = ~node
                postorder[post_cursor] = node
                post_cursor += 1
                for child in data[start[node] : start[node + 1]]:
                    subtree_size[node] += subtree_size[child]
                continue
            preorder[pre_cursor] = node
            pre_cursor += 1
            stack.append(~node)
            base = depth[node]
            distance = root_distance[node]
            for index in range(start[node + 1] - 1, start[node] - 1, -1):
                child = data[index]
                depth[child] = base + 1
                root_distance[child] = distance + weights[child]
                stack.append(child)

        self._preorder = preorder
        self._postorder = postorder
        self._depth = depth
        self._root_distance = root_distance
        self._subtree_size = subtree_size

        pre_index = array("i", zeros)
        for index in range(n):
            pre_index[preorder[index]] = index
        post_index = array("i", zeros)
        for index in range(n):
            post_index[postorder[index]] = index
        self._pre_index = pre_index
        self._post_index = post_index

    # -- basic accessors -------------------------------------------------

    def __len__(self) -> int:
        return len(self._parents)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._parents)

    @property
    def root(self) -> int:
        """The root node."""
        return self._root

    def nodes(self) -> range:
        """Iterate over all node identifiers."""
        return range(len(self._parents))

    def parent(self, node: int) -> int | None:
        """Parent of ``node`` (``None`` for the root)."""
        p = self._parents[node]
        return None if p < 0 else p

    def children(self, node: int) -> list[int]:
        """Children of ``node`` in construction order."""
        return self._child_data[
            self._child_start[node] : self._child_start[node + 1]
        ].tolist()

    def degree(self, node: int) -> int:
        """Number of children."""
        return self._child_start[node + 1] - self._child_start[node]

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` has no children."""
        return self._child_start[node + 1] == self._child_start[node]

    def leaves(self) -> list[int]:
        """All leaves in preorder."""
        return [v for v in self._preorder if self.is_leaf(v)]

    def edge_weight(self, node: int) -> int:
        """Weight of the edge from ``node`` to its parent (0 for the root)."""
        return self._weights[node]

    def is_unit_weighted(self) -> bool:
        """Whether every non-root edge has weight exactly 1."""
        return all(
            self._weights[v] == 1 for v in self.nodes() if v != self._root
        )

    # -- derived quantities ------------------------------------------------

    def depth(self, node: int) -> int:
        """Number of edges on the root-to-``node`` path."""
        return self._depth[node]

    def root_distance(self, node: int) -> int:
        """Weighted distance from the root to ``node``."""
        return self._root_distance[node]

    def subtree_size(self, node: int) -> int:
        """Number of nodes in the subtree rooted at ``node``."""
        return self._subtree_size[node]

    def preorder(self) -> list[int]:
        """Preorder traversal (children in construction order)."""
        return self._preorder.tolist()

    def postorder(self) -> list[int]:
        """Postorder traversal (children in construction order)."""
        return self._postorder.tolist()

    def preorder_index(self, node: int) -> int:
        """Position of ``node`` in the preorder traversal."""
        return self._pre_index[node]

    def postorder_index(self, node: int) -> int:
        """Position of ``node`` in the postorder traversal."""
        return self._post_index[node]

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Whether ``ancestor`` is an (improper) ancestor of ``descendant``."""
        pre_a = self._pre_index[ancestor]
        pre_d = self._pre_index[descendant]
        return pre_a <= pre_d < pre_a + self._subtree_size[ancestor]

    def path_to_root(self, node: int) -> list[int]:
        """Nodes on the path from ``node`` up to (and including) the root."""
        path = [node]
        current = self._parents[node]
        while current >= 0:
            path.append(current)
            current = self._parents[current]
        return path

    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self._depth)

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(parent, child, weight)`` triples."""
        for v in range(len(self._parents)):
            p = self._parents[v]
            if p >= 0:
                yield p, v, self._weights[v]

    # -- ordered variants --------------------------------------------------

    def with_child_order(self, order: dict[int, list[int]]) -> "RootedTree":
        """Return a copy whose children obey the given per-node ordering."""
        clone = RootedTree(self._parents, self._weights)
        for node, children in order.items():
            row = slice(clone._child_start[node], clone._child_start[node + 1])
            if sorted(children) != sorted(clone._child_data[row]):
                raise TreeError(f"child order for node {node} is not a permutation")
            clone._child_data[row] = array("i", children)
        clone._compute_orders()
        return clone

    def reweighted(self, weights: Iterable[int]) -> "RootedTree":
        """Return a copy of the tree with new edge weights."""
        return RootedTree(self._parents, list(weights))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RootedTree(n={self.n}, root={self._root})"
