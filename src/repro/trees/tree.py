"""The rooted tree data structure.

Nodes are integers ``0 .. n-1``.  Every node except the root has a parent and
a non-negative integer weight on the edge to its parent (default 1, the
unweighted case).  The structure is immutable after construction; derived
quantities (subtree sizes, depths, root distances, traversal orders) are
computed once and cached.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class TreeError(ValueError):
    """Raised when tree construction input is inconsistent."""


class RootedTree:
    """An immutable rooted tree with integer nodes and weighted edges."""

    def __init__(
        self,
        parents: Sequence[int | None],
        weights: Sequence[int] | None = None,
    ) -> None:
        n = len(parents)
        if n == 0:
            raise TreeError("a tree must contain at least one node")
        roots = [v for v, p in enumerate(parents) if p is None or p < 0]
        if len(roots) != 1:
            raise TreeError(f"expected exactly one root, found {len(roots)}")
        self._root = roots[0]
        self._parents: list[int | None] = [
            None if (p is None or p < 0) else int(p) for p in parents
        ]
        if weights is None:
            self._weights = [1] * n
            self._weights[self._root] = 0
        else:
            if len(weights) != n:
                raise TreeError("weights must have one entry per node")
            if any(w < 0 for w in weights):
                raise TreeError("edge weights must be non-negative")
            self._weights = list(weights)
            self._weights[self._root] = 0
        for v, p in enumerate(self._parents):
            if p is not None and not 0 <= p < n:
                raise TreeError(f"parent of node {v} out of range: {p}")

        self._children: list[list[int]] = [[] for _ in range(n)]
        for v, p in enumerate(self._parents):
            if p is not None:
                self._children[p].append(v)

        self._validate_acyclic()
        self._compute_orders()

    # -- construction helpers -------------------------------------------

    def _validate_acyclic(self) -> None:
        n = len(self._parents)
        seen = [False] * n
        seen[self._root] = True
        stack = [self._root]
        visited = 1
        while stack:
            node = stack.pop()
            for child in self._children[node]:
                if seen[child]:
                    raise TreeError("parent array contains a cycle")
                seen[child] = True
                visited += 1
                stack.append(child)
        if visited != n:
            raise TreeError("parent array is disconnected")

    def _compute_orders(self) -> None:
        n = len(self._parents)
        self._preorder: list[int] = []
        self._postorder: list[int] = []
        self._depth = [0] * n
        self._root_distance = [0] * n
        self._subtree_size = [1] * n

        stack: list[tuple[int, bool]] = [(self._root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                self._postorder.append(node)
                for child in self._children[node]:
                    self._subtree_size[node] += self._subtree_size[child]
                continue
            self._preorder.append(node)
            stack.append((node, True))
            for child in reversed(self._children[node]):
                self._depth[child] = self._depth[node] + 1
                self._root_distance[child] = (
                    self._root_distance[node] + self._weights[child]
                )
                stack.append((child, False))

        self._pre_index = [0] * n
        for index, node in enumerate(self._preorder):
            self._pre_index[node] = index
        self._post_index = [0] * n
        for index, node in enumerate(self._postorder):
            self._post_index[node] = index

    # -- basic accessors -------------------------------------------------

    def __len__(self) -> int:
        return len(self._parents)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._parents)

    @property
    def root(self) -> int:
        """The root node."""
        return self._root

    def nodes(self) -> range:
        """Iterate over all node identifiers."""
        return range(len(self._parents))

    def parent(self, node: int) -> int | None:
        """Parent of ``node`` (``None`` for the root)."""
        return self._parents[node]

    def children(self, node: int) -> list[int]:
        """Children of ``node`` in construction order."""
        return list(self._children[node])

    def degree(self, node: int) -> int:
        """Number of children."""
        return len(self._children[node])

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` has no children."""
        return not self._children[node]

    def leaves(self) -> list[int]:
        """All leaves in preorder."""
        return [v for v in self._preorder if self.is_leaf(v)]

    def edge_weight(self, node: int) -> int:
        """Weight of the edge from ``node`` to its parent (0 for the root)."""
        return self._weights[node]

    def is_unit_weighted(self) -> bool:
        """Whether every non-root edge has weight exactly 1."""
        return all(
            self._weights[v] == 1 for v in self.nodes() if v != self._root
        )

    # -- derived quantities ------------------------------------------------

    def depth(self, node: int) -> int:
        """Number of edges on the root-to-``node`` path."""
        return self._depth[node]

    def root_distance(self, node: int) -> int:
        """Weighted distance from the root to ``node``."""
        return self._root_distance[node]

    def subtree_size(self, node: int) -> int:
        """Number of nodes in the subtree rooted at ``node``."""
        return self._subtree_size[node]

    def preorder(self) -> list[int]:
        """Preorder traversal (children in construction order)."""
        return list(self._preorder)

    def postorder(self) -> list[int]:
        """Postorder traversal (children in construction order)."""
        return list(self._postorder)

    def preorder_index(self, node: int) -> int:
        """Position of ``node`` in the preorder traversal."""
        return self._pre_index[node]

    def postorder_index(self, node: int) -> int:
        """Position of ``node`` in the postorder traversal."""
        return self._post_index[node]

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Whether ``ancestor`` is an (improper) ancestor of ``descendant``."""
        pre_a = self._pre_index[ancestor]
        pre_d = self._pre_index[descendant]
        return pre_a <= pre_d < pre_a + self._subtree_size[ancestor]

    def path_to_root(self, node: int) -> list[int]:
        """Nodes on the path from ``node`` up to (and including) the root."""
        path = [node]
        current = node
        while (parent := self._parents[current]) is not None:
            path.append(parent)
            current = parent
        return path

    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self._depth)

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(parent, child, weight)`` triples."""
        for v, p in enumerate(self._parents):
            if p is not None:
                yield p, v, self._weights[v]

    # -- ordered variants --------------------------------------------------

    def with_child_order(self, order: dict[int, list[int]]) -> "RootedTree":
        """Return a copy whose children obey the given per-node ordering."""
        clone = RootedTree(self._parents, self._weights)
        for node, children in order.items():
            if sorted(children) != sorted(clone._children[node]):
                raise TreeError(f"child order for node {node} is not a permutation")
            clone._children[node] = list(children)
        clone._compute_orders()
        return clone

    def reweighted(self, weights: Iterable[int]) -> "RootedTree":
        """Return a copy of the tree with new edge weights."""
        return RootedTree(self._parents, list(weights))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RootedTree(n={self.n}, root={self._root})"
