"""Heavy path decompositions (Section 2, Fig. 1 left).

The paper uses a specific variant: starting from the root of the (sub)tree
``T`` being decomposed, repeatedly descend to the unique child whose subtree
has size at least ``|T| / 2``, stopping as soon as no such child exists.
This differs from the classical Sleator-Tarjan decomposition (descend to the
largest child until a leaf) — the paper's slack analysis (Lemmas 3.3/3.4)
depends on the ``|T| / 2`` threshold being measured against the size of the
tree at the *start* of the path.

Both variants are provided; the classical one is used for comparisons and by
some baselines.
"""

from __future__ import annotations

from array import array

from repro.trees.tree import RootedTree

PAPER_VARIANT = "paper"
CLASSIC_VARIANT = "classic"


class HeavyPathDecomposition:
    """Decomposition of a rooted tree into disjoint heavy paths."""

    def __init__(self, tree: RootedTree, variant: str = PAPER_VARIANT) -> None:
        if variant not in (PAPER_VARIANT, CLASSIC_VARIANT):
            raise ValueError(f"unknown heavy path variant: {variant!r}")
        self._tree = tree
        self._variant = variant
        # per-node rows are array('i') and paths are CSR (flat node array
        # plus per-path start offsets): 20 bytes/node total, which matters
        # at the 10^7-node scale of repro.scale
        zeros = bytes(4 * tree.n)
        self._path_of = array("i", zeros)
        self._position = array("i", zeros)
        self._heavy_child = array("i", zeros)  # -1 encodes "no heavy child"
        self._light_depth = array("i", zeros)
        self._path_data = array("i")
        self._path_start = array("i", [0])
        self._decompose()

    # -- construction -----------------------------------------------------

    def _select_heavy_child(self, node: int, decomposition_size: int) -> int | None:
        children = self._tree.children(node)
        if not children:
            return None
        if self._variant == PAPER_VARIANT:
            threshold = decomposition_size / 2
            for child in children:
                if self._tree.subtree_size(child) >= threshold:
                    return child
            return None
        # classic: largest child, ties broken by node id for determinism
        return max(children, key=lambda c: (self._tree.subtree_size(c), -c))

    def _decompose(self) -> None:
        tree = self._tree
        path_data = self._path_data
        path_start = self._path_start
        # stack holds (subtree root, light depth of that subtree root)
        stack: list[tuple[int, int]] = [(tree.root, 0)]
        while stack:
            start, light_depth = stack.pop()
            decomposition_size = tree.subtree_size(start)
            path_id = len(path_start) - 1
            position = 0
            node: int | None = start
            while node is not None:
                path_data.append(node)
                self._path_of[node] = path_id
                self._position[node] = position
                self._light_depth[node] = light_depth
                heavy = self._select_heavy_child(node, decomposition_size)
                self._heavy_child[node] = -1 if heavy is None else heavy
                for child in tree.children(node):
                    if child != heavy:
                        stack.append((child, light_depth + 1))
                node = heavy
                position += 1
            path_start.append(len(path_data))

    # -- accessors ---------------------------------------------------------

    @property
    def tree(self) -> RootedTree:
        """The decomposed tree."""
        return self._tree

    @property
    def variant(self) -> str:
        """Which decomposition rule was used."""
        return self._variant

    def paths(self) -> list[list[int]]:
        """All heavy paths, each listed from head (closest to root) down."""
        return [self.path_nodes(path_id) for path_id in range(self.path_count())]

    def path_count(self) -> int:
        """Number of heavy paths."""
        return len(self._path_start) - 1

    def path_of(self, node: int) -> int:
        """Identifier of the heavy path containing ``node``."""
        return self._path_of[node]

    def path_nodes(self, path_id: int) -> list[int]:
        """Nodes of a heavy path from head to tail."""
        return self._path_data[
            self._path_start[path_id] : self._path_start[path_id + 1]
        ].tolist()

    def head(self, path_id: int) -> int:
        """Head (node closest to the root) of a heavy path."""
        return self._path_data[self._path_start[path_id]]

    def head_of(self, node: int) -> int:
        """Head of the heavy path containing ``node``."""
        return self._path_data[self._path_start[self._path_of[node]]]

    def position_on_path(self, node: int) -> int:
        """0-based position of ``node`` on its heavy path (head = 0)."""
        return self._position[node]

    def heavy_child(self, node: int) -> int | None:
        """The heavy child of ``node`` (``None`` if the path ends here)."""
        heavy = self._heavy_child[node]
        return None if heavy < 0 else heavy

    def is_heavy_edge(self, child: int) -> bool:
        """Whether the edge from ``child`` to its parent is heavy."""
        parent = self._tree.parent(child)
        return parent is not None and self._heavy_child[parent] == child

    def is_light_edge(self, child: int) -> bool:
        """Whether the edge from ``child`` to its parent is light."""
        parent = self._tree.parent(child)
        return parent is not None and self._heavy_child[parent] != child

    def light_depth(self, node: int) -> int:
        """Number of light edges on the root-to-``node`` path."""
        return self._light_depth[node]

    def max_light_depth(self) -> int:
        """Maximum light depth over all nodes (at most log2 n)."""
        return max(self._light_depth)

    def light_edges_on_root_path(self, node: int) -> list[int]:
        """Children (lower endpoints) of the light edges on the root path.

        Returned from the topmost light edge down to the one closest to
        ``node``; the list has length ``light_depth(node)``.
        """
        edges: list[int] = []
        current = node
        while True:
            parent = self._tree.parent(current)
            if parent is None:
                break
            if self._heavy_child[parent] != current:
                edges.append(current)
            current = parent
        edges.reverse()
        return edges

    def preorder_with_heavy_child_last(self) -> list[int]:
        """Preorder numbering that visits the heavy child of a node last.

        Section 4 of the paper uses this ordering so that the light range of
        every node is a contiguous prefix of its subtree's preorder range.
        """
        order: list[int] = []
        stack = [self._tree.root]
        while stack:
            node = stack.pop()
            order.append(node)
            heavy = self._heavy_child[node]
            ordered_children = [c for c in self._tree.children(node) if c != heavy]
            if heavy >= 0:
                ordered_children.append(heavy)
            for child in reversed(ordered_children):
                stack.append(child)
        return order
