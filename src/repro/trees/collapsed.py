"""The collapsed tree C(T) (Section 2, Fig. 1 right).

Every heavy path of a heavy path decomposition becomes one node of the
collapsed tree.  The light edges hanging off a heavy path become the edges to
its children.  The collapsed tree has height at most ``log2 n`` and drives
all the distance-array machinery of Section 3:

* children are ordered "top-to-bottom": a subtree branching at a shallower
  node of the heavy path comes before one branching deeper; among subtrees
  branching at the same node the largest subtree comes last (the
  *exceptional* edge),
* the **domination order** of Lemma 3.1 is realised as the postorder number
  of a node's collapsed node under this child ordering (DESIGN.md §3.1
  explains why postorder implements the paper's domination relation).
"""

from __future__ import annotations

from array import array

from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree


class CollapsedTree:
    """Collapsed tree over a heavy path decomposition."""

    def __init__(self, decomposition: HeavyPathDecomposition) -> None:
        self._hpd = decomposition
        self._tree = decomposition.tree
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        hpd = self._hpd
        tree = self._tree
        path_count = hpd.path_count()
        zeros = bytes(4 * path_count)

        # like RootedTree, everything is array('i') rows with -1 sentinels
        # and a CSR children adjacency — a few dozen bytes per heavy path
        # instead of nested Python lists
        self._parent = array("i", zeros)
        self._branch_node = array("i", zeros)
        counts = array("i", bytes(4 * (path_count + 1)))

        for path_id in range(path_count):
            head = hpd.head(path_id)
            branch = tree.parent(head)
            if branch is None:
                self._root_path = path_id
                self._parent[path_id] = -1
                self._branch_node[path_id] = -1
                continue
            parent_path = hpd.path_of(branch)
            self._parent[path_id] = parent_path
            self._branch_node[path_id] = branch
            counts[parent_path + 1] += 1

        for path_id in range(path_count):
            counts[path_id + 1] += counts[path_id]
        self._child_start = counts
        child_data = array("i", zeros[: 4 * (path_count - 1)])
        cursor = array("i", counts[:path_count])
        for path_id in range(path_count):
            parent_path = self._parent[path_id]
            if parent_path >= 0:
                child_data[cursor[parent_path]] = path_id
                cursor[parent_path] += 1

        # order children: branch position on the parent path ascending,
        # then subtree size ascending (largest / exceptional last), then id
        for path_id in range(path_count):
            row = slice(counts[path_id], counts[path_id + 1])
            siblings = child_data[row].tolist()
            if len(siblings) > 1:
                siblings.sort(
                    key=lambda child: (
                        hpd.position_on_path(self._branch_node[child]),
                        tree.subtree_size(hpd.head(child)),
                        child,
                    )
                )
                child_data[row] = array("i", siblings)
        self._child_data = child_data

        self._child_index = array("i", zeros)
        for path_id in range(path_count):
            for index in range(counts[path_id], counts[path_id + 1]):
                self._child_index[child_data[index]] = index - counts[path_id]

        self._depth = array("i", zeros)
        preorder = array("i", zeros)
        pre_cursor = 0
        stack = [self._root_path]
        while stack:
            node = stack.pop()
            preorder[pre_cursor] = node
            pre_cursor += 1
            for index in range(counts[node], counts[node + 1]):
                child = child_data[index]
                self._depth[child] = self._depth[node] + 1
                stack.append(child)
        self._preorder = preorder

        # postorder (domination) numbering; ~node encodes the exit visit
        self._postorder_number = array("i", zeros)
        counter = 0
        stack2 = [self._root_path]
        while stack2:
            node = stack2.pop()
            if node < 0:
                self._postorder_number[~node] = counter
                counter += 1
                continue
            stack2.append(~node)
            for index in range(counts[node + 1] - 1, counts[node] - 1, -1):
                stack2.append(child_data[index])

    # -- accessors ---------------------------------------------------------

    @property
    def decomposition(self) -> HeavyPathDecomposition:
        """The underlying heavy path decomposition."""
        return self._hpd

    @property
    def tree(self) -> RootedTree:
        """The original (decomposed) tree."""
        return self._tree

    def __len__(self) -> int:
        return self._hpd.path_count()

    @property
    def root(self) -> int:
        """Collapsed node corresponding to the root heavy path."""
        return self._root_path

    def parent(self, collapsed_node: int) -> int | None:
        """Parent collapsed node (``None`` for the root)."""
        parent = self._parent[collapsed_node]
        return None if parent < 0 else parent

    def children(self, collapsed_node: int) -> list[int]:
        """Ordered children of a collapsed node."""
        return self._child_data[
            self._child_start[collapsed_node] : self._child_start[collapsed_node + 1]
        ].tolist()

    def child_index(self, collapsed_node: int) -> int:
        """Index of a collapsed node among its parent's ordered children."""
        return self._child_index[collapsed_node]

    def branch_node(self, collapsed_node: int) -> int | None:
        """Tree node on the parent heavy path from which this path hangs."""
        branch = self._branch_node[collapsed_node]
        return None if branch < 0 else branch

    def head(self, collapsed_node: int) -> int:
        """Head (in T) of the heavy path behind a collapsed node."""
        return self._hpd.head(collapsed_node)

    def light_edge_weight(self, collapsed_node: int) -> int:
        """Weight of the light edge connecting this path to its parent path."""
        return self._tree.edge_weight(self._hpd.head(collapsed_node))

    def depth(self, collapsed_node: int) -> int:
        """Depth of a collapsed node (= light depth of its heavy path)."""
        return self._depth[collapsed_node]

    def height(self) -> int:
        """Height of the collapsed tree (at most log2 n)."""
        return max(self._depth)

    def domination_number(self, collapsed_node: int) -> int:
        """Postorder number implementing the domination order of Lemma 3.1."""
        return self._postorder_number[collapsed_node]

    def is_exceptional(self, collapsed_node: int) -> bool:
        """Whether the light edge to this collapsed node is the exceptional one."""
        parent = self._parent[collapsed_node]
        if parent < 0:
            return False
        return self._child_data[self._child_start[parent + 1] - 1] == collapsed_node

    def collapsed_node_of(self, tree_node: int) -> int:
        """Collapsed node (heavy path id) containing a tree node."""
        return self._hpd.path_of(tree_node)

    def root_path_sequence(self, tree_node: int) -> list[int]:
        """Collapsed nodes on the path from the collapsed root to ``tree_node``'s path."""
        sequence = []
        current = self._hpd.path_of(tree_node)
        while current >= 0:
            sequence.append(current)
            current = self._parent[current]
        sequence.reverse()
        return sequence

    def dominates(self, tree_node_a: int, tree_node_b: int) -> bool:
        """Whether ``tree_node_a`` dominates ``tree_node_b`` (Lemma 3.1 sense)."""
        a = self.domination_number(self._hpd.path_of(tree_node_a))
        b = self.domination_number(self._hpd.path_of(tree_node_b))
        return a < b
