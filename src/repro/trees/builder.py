"""Constructors for :class:`~repro.trees.tree.RootedTree`.

Trees can be built from parent arrays, from (undirected or directed) edge
lists, or from a networkx graph (optional dependency, used by the example
applications that extract spanning trees of larger networks).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.trees.tree import RootedTree, TreeError


def tree_from_parents(
    parents: Sequence[int | None], weights: Sequence[int] | None = None
) -> RootedTree:
    """Build a tree from a parent array (``None``/negative marks the root)."""
    return RootedTree(parents, weights)


def tree_from_edges(
    n: int,
    edges: Iterable[tuple[int, int] | tuple[int, int, int]],
    root: int = 0,
) -> RootedTree:
    """Build a tree from an undirected edge list by rooting it at ``root``.

    Each edge is ``(u, v)`` or ``(u, v, weight)``.
    """
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    count = 0
    for edge in edges:
        if len(edge) == 2:
            u, v = edge  # type: ignore[misc]
            w = 1
        else:
            u, v, w = edge  # type: ignore[misc]
        if not (0 <= u < n and 0 <= v < n):
            raise TreeError(f"edge ({u}, {v}) out of range for n={n}")
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
        count += 1
    if count != n - 1:
        raise TreeError(f"a tree on {n} nodes needs {n - 1} edges, got {count}")

    parents: list[int | None] = [None] * n
    weights = [0] * n
    seen = [False] * n
    seen[root] = True
    queue = deque([root])
    visited = 1
    while queue:
        node = queue.popleft()
        for neighbour, weight in adjacency[node]:
            if not seen[neighbour]:
                seen[neighbour] = True
                parents[neighbour] = node
                weights[neighbour] = weight
                visited += 1
                queue.append(neighbour)
    if visited != n:
        raise TreeError("edge list is disconnected")
    return RootedTree(parents, weights)


def tree_from_networkx(graph, root=None) -> tuple[RootedTree, dict]:
    """Build a tree from a networkx tree or from a BFS spanning tree.

    Returns the tree plus a mapping from original graph nodes to the integer
    node identifiers used by :class:`RootedTree`.
    """
    import networkx as nx  # local import: optional dependency

    if root is None:
        root = next(iter(graph.nodes))
    if not nx.is_tree(graph):
        graph = nx.bfs_tree(graph, root).to_undirected()
    mapping = {node: index for index, node in enumerate(graph.nodes)}
    edges = []
    for u, v, data in graph.edges(data=True):
        weight = int(data.get("weight", 1))
        edges.append((mapping[u], mapping[v], weight))
    tree = tree_from_edges(len(mapping), edges, root=mapping[root])
    return tree, mapping


def path_tree(n: int) -> RootedTree:
    """A path on ``n`` nodes rooted at one end."""
    parents: list[int | None] = [None] + [i for i in range(n - 1)]
    return RootedTree(parents)


def star_tree(n: int) -> RootedTree:
    """A star on ``n`` nodes rooted at the centre."""
    parents: list[int | None] = [None] + [0] * (n - 1)
    return RootedTree(parents)
