"""The RSP/1 wire protocol: varint-framed label-distance messages.

See the package docstring of :mod:`repro.serve` for the full frame and
message grammar.  This module is the single source of truth for opcodes and
the byte-level encoders/decoders shared by :mod:`repro.serve.server` and
:mod:`repro.serve.client`; everything is built on the same LEB128 varints
(:mod:`repro.encoding.varint`) that frame the ``LabelStore`` and
``IndexCatalog`` file formats.

Requests and responses are plain tuples/dataclass-free values so both ends
stay allocation-light on the hot path: the server decodes a request body
into ``(op, request_id, name, payload, trace_id, route_version)`` and the
client decodes a response body into ``(op, request_id, payload)``.
"""

from __future__ import annotations

import json
import struct

from repro.encoding.varint import decode_uvarint, encode_uvarint

#: protocol revision carried nowhere on the wire (frames are self-framing);
#: bumped only when the message grammar changes incompatibly
PROTOCOL_VERSION = 1

#: additive capabilities inside RSP/1, advertised in the INFO payload so a
#: client can feature-detect without a version bump: existing message
#: encodings never change, new response opcodes only ever ride on them.
#: ``generation`` means INFO carries the served store's generation (content
#: hash + path) and STATS its ``store_generation`` — the fields rolling
#: reloads flip, so clients can observe a re-encoded store going live.
#: ``tracing`` means QUERY/BATCH accept an optional trailing trace-id field
#: (flag byte ``0x01`` + uvarint) and the server answers :data:`OP_TRACE`
#: with its recent-trace ring and slow-query log; servers without the
#: feature ignore the trailing bytes and serve the query unchanged.
#: ``routing`` means INFO publishes the fleet's member→slot routing table
#: (version, member owners, per-slot direct endpoints), QUERY/BATCH accept
#: an optional route-version suffix field (tag byte ``0x02`` + uvarint),
#: and a routed request for a member this worker does not own is answered
#: with :data:`OP_MOVED` (the owning slot's endpoint + the authoritative
#: table version) instead of being served — Redis-cluster-style redirect
#: hints.  Requests without the suffix are always served in place, so
#: pre-routing clients keep working byte-identically.
PROTOCOL_FEATURES = ("busy", "generation", "tracing", "routing")

#: hard ceiling on one frame's body, server- and client-side (a matrix
#: response over a few thousand nodes fits comfortably; anything larger is
#: a protocol error, not a workload)
MAX_FRAME_BYTES = 64 * 1024 * 1024

# -- opcodes -----------------------------------------------------------------

OP_QUERY = 0x01  #: one (u, v) distance query
OP_BATCH = 0x02  #: many (u, v) queries answered as one unit
OP_MATRIX = 0x03  #: all-pairs answers over a node subset
OP_STATS = 0x04  #: serving statistics (qps, latency percentiles, cache)
OP_INFO = 0x05  #: member listing: name -> {spec, kind, n}
OP_TRACE = 0x06  #: recent request traces + slow-query log (``tracing`` feature)

OP_RESULT = 0x81  #: answers to QUERY / BATCH / MATRIX
OP_STATS_RESULT = 0x83  #: JSON statistics blob
OP_INFO_RESULT = 0x84  #: JSON member listing
OP_TRACE_RESULT = 0x85  #: JSON trace ring / slow-query log
OP_MOVED = 0xFD  #: redirect hint: another slot owns the member (``routing``)
OP_BUSY = 0xFE  #: backpressure: the request was shed, retry after a delay
OP_ERROR = 0xFF  #: request-scoped failure (connection stays usable)

REQUEST_OPS = frozenset({OP_QUERY, OP_BATCH, OP_MATRIX, OP_STATS, OP_INFO, OP_TRACE})
RESPONSE_OPS = frozenset(
    {
        OP_RESULT,
        OP_STATS_RESULT,
        OP_INFO_RESULT,
        OP_TRACE_RESULT,
        OP_MOVED,
        OP_BUSY,
        OP_ERROR,
    }
)

# -- result kinds ------------------------------------------------------------

KIND_EXACT = 0  #: values are exact distances (uvarint)
KIND_BOUNDED = 1  #: values are distance-or-beyond (flag byte + uvarint)
KIND_APPROXIMATE = 2  #: values are (1+eps)-approximations (IEEE double)

KIND_CODES = {"exact": KIND_EXACT, "bounded": KIND_BOUNDED, "approximate": KIND_APPROXIMATE}
KIND_NAMES = {code: name for name, code in KIND_CODES.items()}

_DOUBLE = struct.Struct(">d")


class ProtocolError(ValueError):
    """Raised when a frame or message is malformed.

    A ``ProtocolError`` is a *connection-level* failure (unparseable bytes);
    application failures (unknown member, node out of range) travel as
    :data:`OP_ERROR` responses instead and leave the connection usable.
    """


# -- framing -----------------------------------------------------------------


def encode_frame(body: bytes) -> bytes:
    """One wire frame: ``uvarint(len(body)) + body``."""
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds the limit")
    return encode_uvarint(len(body)) + body


class FrameDecoder:
    """Incremental frame splitter for a byte stream.

    Feed arbitrary chunks with :meth:`feed`; iterate complete frame bodies
    with :meth:`frames`.  Partial frames stay buffered between feeds, so the
    decoder works equally under ``data_received`` callbacks and blocking
    ``recv`` loops.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Append a received chunk."""
        self._buffer += data

    def frames(self) -> list[bytes]:
        """Every complete frame body currently buffered, oldest first."""
        buffer = self._buffer
        out: list[bytes] = []
        pos = 0
        total = len(buffer)
        while pos < total:
            # a frame's length prefix may itself be split across chunks
            try:
                length, body_start = decode_uvarint(buffer, pos)
            except ValueError:
                if total - pos >= 10:  # a uvarint never needs 10 bytes: corrupt
                    raise ProtocolError("corrupt frame length prefix") from None
                break
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(f"frame of {length} bytes exceeds the limit")
            if body_start + length > total:
                break
            out.append(bytes(buffer[body_start : body_start + length]))
            pos = body_start + length
        if pos:
            del buffer[:pos]
        return out


# -- request encoding --------------------------------------------------------


def _encode_name(name: str) -> bytes:
    encoded = name.encode("utf-8")
    return encode_uvarint(len(encoded)) + encoded


#: tags of the additive tagged suffix fields a QUERY/BATCH payload may carry
SUFFIX_TRACE = 0x01
SUFFIX_ROUTE = 0x02


def _request_suffix(trace_id: int | None, route_version: int | None) -> bytes:
    """The additive tagged suffix fields: ``tag byte + uvarint`` each.

    Appended after a QUERY/BATCH payload in ascending tag order:
    :data:`SUFFIX_TRACE` carries the trace id (the ``tracing`` feature),
    :data:`SUFFIX_ROUTE` the client's routing-table version (the
    ``routing`` feature).  Servers that predate a field ignore trailing
    request bytes, so a tagging client interoperates with an old server
    unchanged; a request without either field is byte-identical to the
    original encoding.
    """
    out = b""
    if trace_id is not None:
        out += bytes([SUFFIX_TRACE]) + encode_uvarint(trace_id)
    if route_version is not None:
        out += bytes([SUFFIX_ROUTE]) + encode_uvarint(route_version)
    return out


def encode_query(
    request_id: int,
    u: int,
    v: int,
    name: str = "",
    trace_id: int | None = None,
    route_version: int | None = None,
) -> bytes:
    """A framed :data:`OP_QUERY` request (optionally trace-/route-tagged)."""
    body = bytes([OP_QUERY]) + encode_uvarint(request_id) + _encode_name(name)
    return encode_frame(
        body
        + encode_uvarint(u)
        + encode_uvarint(v)
        + _request_suffix(trace_id, route_version)
    )


def encode_batch(
    request_id: int,
    pairs,
    name: str = "",
    trace_id: int | None = None,
    route_version: int | None = None,
) -> bytes:
    """A framed :data:`OP_BATCH` request (optionally trace-/route-tagged)."""
    parts = [bytes([OP_BATCH]), encode_uvarint(request_id), _encode_name(name)]
    pairs = list(pairs)
    parts.append(encode_uvarint(len(pairs)))
    for u, v in pairs:
        parts.append(encode_uvarint(u))
        parts.append(encode_uvarint(v))
    parts.append(_request_suffix(trace_id, route_version))
    return encode_frame(b"".join(parts))


def encode_matrix(request_id: int, nodes=None, name: str = "") -> bytes:
    """A framed :data:`OP_MATRIX` request (``nodes=None`` means every node)."""
    parts = [bytes([OP_MATRIX]), encode_uvarint(request_id), _encode_name(name)]
    if nodes is None:
        parts.append(encode_uvarint(0))
        parts.append(bytes([0]))
    else:
        nodes = list(nodes)
        parts.append(encode_uvarint(len(nodes)))
        parts.append(bytes([1]))
        for node in nodes:
            parts.append(encode_uvarint(node))
    return encode_frame(b"".join(parts))


def encode_stats(request_id: int, name: str = "", *, reservoir: bool = False) -> bytes:
    """A framed :data:`OP_STATS` request (empty name = server-wide).

    ``reservoir=True`` appends the additive detail flag byte asking the
    server to embed its full latency detail — historically the raw
    reservoir, now the per-stage histogram snapshots fleet merges are
    computed from.  Fleet-merging consumers (loadgen, the supervisor) opt
    in; a plain STATS poll stays a few hundred bytes.  Servers ignore
    trailing bytes they do not understand, so this is RSP/1-compatible in
    both directions.
    """
    body = bytes([OP_STATS]) + encode_uvarint(request_id) + _encode_name(name)
    if reservoir:
        body += b"\x01"
    return encode_frame(body)


def encode_info(request_id: int) -> bytes:
    """A framed :data:`OP_INFO` request."""
    return encode_frame(bytes([OP_INFO]) + encode_uvarint(request_id))


def encode_trace_request(
    request_id: int, *, limit: int = 32, slow: bool = True
) -> bytes:
    """A framed :data:`OP_TRACE` request.

    ``limit`` caps how many recent traces the worker returns (0 = its whole
    ring); ``slow`` asks for the slow-query log too.
    """
    body = (
        bytes([OP_TRACE])
        + encode_uvarint(request_id)
        + encode_uvarint(limit)
        + (b"\x01" if slow else b"\x00")
    )
    return encode_frame(body)


def _decode_request_suffix(body: bytes, pos: int) -> tuple[int | None, int | None]:
    """The optional tagged suffix fields of a QUERY/BATCH request.

    Returns ``(trace_id, route_version)``.  Fields are ``tag byte +
    uvarint`` in ascending tag order; an unknown tag stops the scan (it
    belongs to a future feature this server does not speak — the remaining
    bytes are ignored, per the additive-suffix contract).
    """
    trace_id = None
    route_version = None
    while pos < len(body):
        tag = body[pos]
        if tag == SUFFIX_TRACE and trace_id is None:
            trace_id, pos = decode_uvarint(body, pos + 1)
        elif tag == SUFFIX_ROUTE and route_version is None:
            route_version, pos = decode_uvarint(body, pos + 1)
        else:
            break
    return trace_id, route_version


def decode_request(body: bytes):
    """Decode one request body into
    ``(op, request_id, name, payload, trace_id, route_version)``.

    ``payload`` is op-specific: ``(u, v)`` for QUERY, a pair list for BATCH,
    a node list or ``None`` for MATRIX, ``None`` for INFO, for STATS
    ``True`` when the optional detail flag byte is present (else ``None``),
    and ``(limit, include_slow)`` for TRACE.  ``trace_id`` and
    ``route_version`` are the optional additive suffix tags of QUERY/BATCH
    requests (``None`` otherwise — the ``tracing`` and ``routing`` features
    of RSP/1).
    """
    if not body:
        raise ProtocolError("empty frame body")
    op = body[0]
    if op not in REQUEST_OPS:
        raise ProtocolError(f"unknown request opcode 0x{op:02x}")
    try:
        request_id, pos = decode_uvarint(body, 1)
        if op == OP_INFO:
            return op, request_id, "", None, None, None
        if op == OP_TRACE:
            limit, pos = decode_uvarint(body, pos)
            include_slow = pos < len(body) and body[pos] == 1
            return op, request_id, "", (limit, include_slow), None, None
        name_len, pos = decode_uvarint(body, pos)
        if pos + name_len > len(body):
            raise ValueError("truncated member name")
        name = body[pos : pos + name_len].decode("utf-8")
        pos += name_len
        if op == OP_STATS:
            detail = pos < len(body) and body[pos] == 1
            return op, request_id, name, True if detail else None, None, None
        if op == OP_QUERY:
            u, pos = decode_uvarint(body, pos)
            v, pos = decode_uvarint(body, pos)
            trace_id, route_version = _decode_request_suffix(body, pos)
            return op, request_id, name, (u, v), trace_id, route_version
        count, pos = decode_uvarint(body, pos)
        if op == OP_BATCH:
            pairs = []
            for _ in range(count):
                u, pos = decode_uvarint(body, pos)
                v, pos = decode_uvarint(body, pos)
                pairs.append((u, v))
            trace_id, route_version = _decode_request_suffix(body, pos)
            return op, request_id, name, pairs, trace_id, route_version
        # OP_MATRIX: explicit-nodes flag distinguishes "all nodes" from []
        if pos >= len(body):
            raise ValueError("truncated matrix request")
        explicit = body[pos]
        pos += 1
        if not explicit:
            return op, request_id, name, None, None, None
        nodes = []
        for _ in range(count):
            node, pos = decode_uvarint(body, pos)
            nodes.append(node)
        return op, request_id, name, nodes, None, None
    except ValueError as error:
        raise ProtocolError(f"malformed request: {error}") from error


# -- response encoding -------------------------------------------------------


def encode_values(kind: int, values, ratio_bound: float | None = None) -> bytes:
    """The kind-tagged value block shared by every :data:`OP_RESULT`.

    ``values`` is a flat sequence of raw scheme answers; matrix responses
    flatten row-major and the client re-shapes (it knows the node count).
    """
    values = list(values)
    parts = [bytes([kind]), encode_uvarint(len(values))]
    if kind == KIND_EXACT:
        for value in values:
            parts.append(encode_uvarint(value))
    elif kind == KIND_BOUNDED:
        for value in values:
            if value is None:
                parts.append(b"\x00")
            else:
                parts.append(b"\x01" + encode_uvarint(value))
    elif kind == KIND_APPROXIMATE:
        if ratio_bound is None:
            raise ProtocolError("approximate results require a ratio bound")
        parts.insert(1, _DOUBLE.pack(ratio_bound))
        for value in values:
            parts.append(_DOUBLE.pack(value))
    else:
        raise ProtocolError(f"unknown result kind {kind}")
    return b"".join(parts)


def encode_result(request_id: int, kind: int, values, ratio_bound: float | None = None) -> bytes:
    """A framed :data:`OP_RESULT` response."""
    body = bytes([OP_RESULT]) + encode_uvarint(request_id)
    return encode_frame(body + encode_values(kind, values, ratio_bound))


def encode_result_block(answered, kind: int, ratio_bound: float | None = None) -> bytes:
    """Many single-value :data:`OP_RESULT` frames as one byte string.

    ``answered`` is an iterable of ``(request_id, value)``.  This is the
    server coalescer's response path: one call builds every response frame
    destined for one connection, so the per-query cost is a few string
    concatenations instead of a function call per response.
    """
    uvarint = encode_uvarint
    op = bytes([OP_RESULT])
    out = bytearray()
    if kind == KIND_EXACT:
        tag = bytes([kind]) + b"\x01"  # kind + count=1
        for request_id, value in answered:
            body = op + uvarint(request_id) + tag + uvarint(value)
            out += uvarint(len(body))
            out += body
    elif kind == KIND_BOUNDED:
        tag = bytes([kind]) + b"\x01"
        for request_id, value in answered:
            if value is None:
                body = op + uvarint(request_id) + tag + b"\x00"
            else:
                body = op + uvarint(request_id) + tag + b"\x01" + uvarint(value)
            out += uvarint(len(body))
            out += body
    elif kind == KIND_APPROXIMATE:
        if ratio_bound is None:
            raise ProtocolError("approximate results require a ratio bound")
        tag = bytes([kind]) + _DOUBLE.pack(ratio_bound) + b"\x01"
        for request_id, value in answered:
            body = op + uvarint(request_id) + tag + _DOUBLE.pack(value)
            out += uvarint(len(body))
            out += body
    else:
        raise ProtocolError(f"unknown result kind {kind}")
    return bytes(out)


def encode_busy(request_id: int, retry_after_ms: int = 1) -> bytes:
    """A framed :data:`OP_BUSY` response.

    BUSY is request-scoped backpressure: the server's pending-query queue is
    full and this request was shed without being answered.  The payload is a
    uvarint retry hint in milliseconds; clients add their own jitter on top
    (see the retry logic in :mod:`repro.serve.client`).  The connection
    stays fully usable — this is the additive ``"busy"`` feature of RSP/1.
    """
    body = bytes([OP_BUSY]) + encode_uvarint(request_id) + encode_uvarint(retry_after_ms)
    return encode_frame(body)


def encode_moved(
    request_id: int, version: int, name: str, host: str, port: int
) -> bytes:
    """A framed :data:`OP_MOVED` redirect hint (the ``routing`` feature).

    Sent instead of an answer when a *routed* request (one carrying the
    route-version suffix) names a member this worker does not own.  The
    payload tells the client where to go and how stale it is: the
    authoritative table version, the member name, and the owning slot's
    direct ``host:port``.  Requests without the suffix are never redirected
    — the worker serves them in place so pre-routing clients keep working.
    """
    encoded_host = host.encode("utf-8")
    body = (
        bytes([OP_MOVED])
        + encode_uvarint(request_id)
        + encode_uvarint(version)
        + _encode_name(name)
        + encode_uvarint(len(encoded_host))
        + encoded_host
        + encode_uvarint(port)
    )
    return encode_frame(body)


def encode_error(request_id: int, message: str) -> bytes:
    """A framed :data:`OP_ERROR` response."""
    encoded = message.encode("utf-8")
    body = (
        bytes([OP_ERROR])
        + encode_uvarint(request_id)
        + encode_uvarint(len(encoded))
        + encoded
    )
    return encode_frame(body)


def encode_json_response(op: int, request_id: int, payload: dict) -> bytes:
    """A framed :data:`OP_STATS_RESULT` / :data:`OP_INFO_RESULT` response."""
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    body = bytes([op]) + encode_uvarint(request_id) + encode_uvarint(len(blob)) + blob
    return encode_frame(body)


def decode_response(body: bytes):
    """Decode one response body into ``(op, request_id, payload)``.

    ``payload`` is ``(kind, ratio_bound, values)`` for RESULT, a ``dict``
    for STATS_RESULT / INFO_RESULT, an error-message string for ERROR,
    the retry-after hint in milliseconds (an ``int``) for BUSY and
    ``(version, name, host, port)`` for MOVED.
    """
    if not body:
        raise ProtocolError("empty frame body")
    op = body[0]
    if op not in RESPONSE_OPS:
        raise ProtocolError(f"unknown response opcode 0x{op:02x}")
    try:
        request_id, pos = decode_uvarint(body, 1)
        if op == OP_BUSY:
            retry_after_ms, pos = decode_uvarint(body, pos)
            return op, request_id, retry_after_ms
        if op == OP_MOVED:
            version, pos = decode_uvarint(body, pos)
            name_len, pos = decode_uvarint(body, pos)
            name = body[pos : pos + name_len].decode("utf-8")
            pos += name_len
            host_len, pos = decode_uvarint(body, pos)
            host = body[pos : pos + host_len].decode("utf-8")
            pos += host_len
            port, pos = decode_uvarint(body, pos)
            return op, request_id, (version, name, host, port)
        if op == OP_ERROR:
            length, pos = decode_uvarint(body, pos)
            return op, request_id, body[pos : pos + length].decode("utf-8")
        if op in (OP_STATS_RESULT, OP_INFO_RESULT, OP_TRACE_RESULT):
            length, pos = decode_uvarint(body, pos)
            return op, request_id, json.loads(body[pos : pos + length].decode("utf-8"))
        kind = body[pos]
        pos += 1
        ratio_bound = None
        if kind == KIND_APPROXIMATE:
            ratio_bound = _DOUBLE.unpack_from(body, pos)[0]
            pos += 8
        count, pos = decode_uvarint(body, pos)
        values: list = []
        if kind == KIND_EXACT:
            for _ in range(count):
                value, pos = decode_uvarint(body, pos)
                values.append(value)
        elif kind == KIND_BOUNDED:
            for _ in range(count):
                flag = body[pos]
                pos += 1
                if flag:
                    value, pos = decode_uvarint(body, pos)
                    values.append(value)
                else:
                    values.append(None)
        elif kind == KIND_APPROXIMATE:
            for _ in range(count):
                values.append(_DOUBLE.unpack_from(body, pos)[0])
                pos += 8
        else:
            raise ValueError(f"unknown result kind {kind}")
        return op, request_id, (kind, ratio_bound, values)
    except (ValueError, IndexError, struct.error) as error:
        raise ProtocolError(f"malformed response: {error}") from error
