"""Env-driven fault injection for the serving stack.

Self-healing code is only trustworthy if its failure paths are exercised,
so the workers can be told to misbehave on purpose::

    REPRO_FAULTS=crash:p=0.01            # 1% of dispatches: os._exit(70)
    REPRO_FAULTS=stall:ms=200            # every dispatch sleeps 200 ms
    REPRO_FAULTS=crash:p=0.5:at=accept   # half of new connections kill us
    REPRO_FAULTS=exit:after=250          # worker exits 250 ms after ready
    REPRO_FAULTS=crash:at=start:slot=1   # slot 1 dies before its handshake
    REPRO_FAULTS=crash:p=0.01,stall:ms=50   # clauses combine

Grammar: comma-separated clauses, each ``kind[:key=value]*``.

=========  =====================================================
``crash``  ``os._exit(code)`` — an abrupt worker death the
           supervisor must notice and repair.  Params: ``p``
           (probability per firing, default 1), ``at``
           (``dispatch`` | ``accept`` | ``start``, default
           ``dispatch``), ``code`` (exit code, default 70),
           ``slot`` (only this worker slot, default all).
``stall``  ``time.sleep(ms / 1000)`` on the event loop — a
           wedged worker that holds connections without
           answering.  Params: ``ms`` (default 100), ``p``,
           ``at`` (``dispatch`` | ``accept``), ``slot``.
``exit``   schedule ``os._exit(code)`` ``after`` milliseconds
           once the worker is serving — a deterministic crash
           that needs no traffic (the crash-loop tests use it).
           Params: ``after`` (default 0), ``code``, ``slot``.
=========  =====================================================

Firing points: ``dispatch`` is :meth:`ServingCore.handle_request` (one
chance per decoded request), ``accept`` is the connection-made callback,
``start`` is worker startup *before* the ready handshake (exercises the
supervisor's partial-start paths).  ``p`` draws from a
``random.Random(REPRO_FAULTS_SEED + slot)`` stream when the seed env var is
set, so chaos runs are replayable.

The plan is parsed once per process (workers inherit the environment at
fork); with no ``REPRO_FAULTS`` set, :func:`plan_for` returns ``None`` and
the serving hot path pays a single attribute check.
"""

from __future__ import annotations

import os
import random
import time

ENV_VAR = "REPRO_FAULTS"
SEED_ENV_VAR = "REPRO_FAULTS_SEED"

KINDS = ("crash", "stall", "exit")
POINTS = ("dispatch", "accept", "start")

#: exit code of an injected crash — distinctive in supervisor diagnostics
CRASH_EXIT_CODE = 70


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULTS`` value."""


class FaultClause:
    """One parsed fault clause."""

    __slots__ = ("kind", "p", "at", "ms", "after_ms", "code", "slot")

    def __init__(self, kind: str, **params) -> None:
        if kind not in KINDS:
            raise FaultSpecError(f"unknown fault kind {kind!r} (expected {KINDS})")
        self.kind = kind
        self.p = float(params.pop("p", 1.0))
        self.at = str(params.pop("at", "dispatch"))
        self.ms = float(params.pop("ms", 100.0))
        self.after_ms = float(params.pop("after", 0.0))
        self.code = int(params.pop("code", CRASH_EXIT_CODE))
        slot = params.pop("slot", None)
        self.slot = None if slot is None else int(slot)
        if params:
            raise FaultSpecError(
                f"unknown parameter(s) {sorted(params)} for fault {kind!r}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise FaultSpecError(f"fault probability must be in [0, 1], got {self.p}")
        if self.at not in POINTS:
            raise FaultSpecError(f"unknown fault point {self.at!r} (expected {POINTS})")

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        extras = f":p={self.p:g}:at={self.at}"
        if self.slot is not None:
            extras += f":slot={self.slot}"
        return f"<fault {self.kind}{extras}>"


def parse_faults(spec: str) -> list[FaultClause]:
    """Parse a ``REPRO_FAULTS`` value into clauses (empty list for '')."""
    clauses: list[FaultClause] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        params: dict[str, str] = {}
        for part in parts[1:]:
            if "=" not in part:
                raise FaultSpecError(
                    f"fault parameter {part!r} is not key=value (in {chunk!r})"
                )
            key, value = part.split("=", 1)
            params[key.strip()] = value.strip()
        clauses.append(FaultClause(parts[0].strip(), **params))
    return clauses


class FaultPlan:
    """The active fault clauses for one worker process."""

    __slots__ = ("clauses", "_rng")

    def __init__(self, clauses: list[FaultClause], slot: int = 0, seed=None) -> None:
        self.clauses = clauses
        if seed is None:
            self._rng = random.Random()
        else:
            self._rng = random.Random(int(seed) + slot)

    def fire(self, point: str) -> None:
        """Run every clause bound to ``point`` (may sleep or never return)."""
        for clause in self.clauses:
            if clause.kind == "exit" or clause.at != point:
                continue
            if clause.p < 1.0 and self._rng.random() >= clause.p:
                continue
            if clause.kind == "stall":
                time.sleep(clause.ms / 1000.0)
            else:  # crash
                os._exit(clause.code)

    def exit_clause(self) -> FaultClause | None:
        """The ``exit`` clause, if any (the worker schedules it itself)."""
        for clause in self.clauses:
            if clause.kind == "exit":
                return clause
        return None


def plan_for(slot: int = 0, environ=None) -> FaultPlan | None:
    """The fault plan for worker ``slot``, or ``None`` when faults are off.

    Clauses scoped to a different slot are dropped here, so the serving hot
    path never re-checks slot membership.
    """
    environ = os.environ if environ is None else environ
    spec = environ.get(ENV_VAR, "")
    if not spec:
        return None
    clauses = [
        clause
        for clause in parse_faults(spec)
        if clause.slot is None or clause.slot == slot
    ]
    if not clauses:
        return None
    return FaultPlan(clauses, slot=slot, seed=environ.get(SEED_ENV_VAR))
