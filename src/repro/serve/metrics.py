"""Serving metrics shared by the server, the supervisor and the loadgen.

Two concerns live here because every multi-worker consumer needs both:

* :func:`percentile` — the nearest-rank estimator used for raw sample
  lists (reservoir snapshots, loadgen client-side timings);
* :func:`merge_fleet_stats` — fold many per-worker STATS payloads into one
  fleet-wide view.  Counters add, rates recompute from the summed counters,
  and latency percentiles are recomputed from the **merged histogram
  buckets** when the payloads carry them (detailed STATS do) — never by
  averaging per-worker p50/p99, because an average of percentiles is not a
  percentile (a worker answering 10 queries at 9 ms must not weigh as much
  as one answering 10 000 at 1 ms).  Bucket merges are also immune to the
  reservoir-concatenation skew: a restarted worker's short reservoir held
  *every* one of its samples while a veteran's held only the last 4096 of
  millions, so concatenation over-weighted the restarted worker.  Payloads
  without histograms (older workers, synthetic fixtures) still merge via
  concatenated reservoirs.
"""

from __future__ import annotations

import math

from repro.obs.hist import merge_histogram_dicts


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (0 when empty).

    Nearest-rank: the smallest sample with at least ``fraction`` of the set
    at or below it — rank ``ceil(fraction * n)`` (1-based).  The previous
    ``int(fraction * n)`` 0-based form was off by one: it returned the
    element *after* the nearest rank (p50 of ``[1, 2]`` came out as 2) and
    p0 returned the minimum only by accident of the clamp.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


#: STATS counters that add across workers.  ``restarts`` is per-slot (each
#: incarnation reports how many times its slot was restarted), so the sum
#: over one snapshot per slot is the fleet's total restart count.
_SUMMED_COUNTERS = (
    "queries",
    "batch_requests",
    "batch_request_pairs",
    "matrix_requests",
    "matrix_offloaded",
    "flushes",
    "coalesced_queries",
    "errors",
    "busy_rejections",
    "pending",
    "connections_open",
    "connections_total",
    "restarts",
    "rss_bytes",
    "misroutes",
    "moved_redirects",
)


def merge_fleet_stats(stats_list: list[dict]) -> dict:
    """One fleet-wide stats payload from many per-worker STATS payloads.

    ``stats_list`` may contain several snapshots of the same worker (e.g.
    one per loadgen connection); only the last snapshot per ``(slot, pid)``
    incarnation is kept.  De-duplicating by pid alone would conflate a
    restarted slot's old and new incarnations when both snapshots are in
    the list (a supervisor re-fork mid-run); keying by slot alone would
    drop the dead incarnation's counters.  The result mirrors the
    per-worker payload shape — the same keys a single-process consumer
    reads — plus ``workers`` (distinct snapshot count), ``slots``
    (distinct slot count) and ``restarts_observed`` (snapshots beyond one
    per slot — i.e. how many worker replacements the collection itself
    witnessed), and ``per_worker`` (one compact row per snapshot).
    """
    by_worker: dict[object, dict] = {}
    for stats in stats_list:
        by_worker[(stats.get("slot", 0), stats.get("worker"))] = stats
    workers = list(by_worker.values())
    if not workers:
        raise ValueError("merge_fleet_stats needs at least one stats payload")

    slots = {stats.get("slot", 0) for stats in workers}
    merged: dict = {
        "workers": len(workers),
        "slots": len(slots),
        "restarts_observed": len(workers) - len(slots),
    }
    for key in _SUMMED_COUNTERS:
        merged[key] = sum(stats.get(key, 0) for stats in workers)
    merged["qps"] = round(sum(stats.get("qps", 0.0) for stats in workers), 1)
    merged["uptime_seconds"] = max(stats.get("uptime_seconds", 0.0) for stats in workers)
    merged["coalescing"] = all(stats.get("coalescing", True) for stats in workers)
    merged["max_pending"] = max(stats.get("max_pending", 0) for stats in workers)
    merged["mean_batch_size"] = (
        round(merged["coalesced_queries"] / merged["flushes"], 2)
        if merged["flushes"]
        else 0.0
    )
    # kernel tier per worker; normally uniform across a fleet, but a mixed
    # deployment (one worker degraded to python) is worth surfacing as-is
    tiers = sorted({stats["kernel"] for stats in workers if stats.get("kernel")})
    if tiers:
        merged["kernel"] = tiers[0] if len(tiers) == 1 else ",".join(tiers)
    # store generation per worker; uniform once a rolling reload completes,
    # and a comma-joined set mid-roll — a probe can watch the flip happen
    generations = sorted(
        {
            stats["store_generation"]
            for stats in workers
            if stats.get("store_generation")
        }
    )
    if generations:
        merged["store_generation"] = (
            generations[0] if len(generations) == 1 else ",".join(generations)
        )
    # routing table version: the fleet is "at" the newest table any worker
    # reports (mid-reload the retiring workers still carry the old one)
    versions = [
        stats["routing_version"]
        for stats in workers
        if stats.get("routing_version")
    ]
    if versions:
        merged["routing_version"] = max(versions)

    # fleet latency: merge histogram buckets when the payloads carry them
    # (exact — every worker weighted by its true sample count), otherwise
    # fall back to concatenating the per-worker reservoirs
    histograms = [
        stats["latency_ms"]["histogram"]
        for stats in workers
        if isinstance(stats.get("latency_ms", {}).get("histogram"), dict)
    ]
    reservoir: list[float] = []
    for stats in workers:
        reservoir.extend(stats.get("latency_ms", {}).get("reservoir", ()))
    fleet_hist = merge_histogram_dicts(histograms)
    if fleet_hist is not None:
        merged["latency_ms"] = {
            "p50": round(fleet_hist.percentile(0.50), 4),
            "p99": round(fleet_hist.percentile(0.99), 4),
            "samples": fleet_hist.total,
            "histogram": fleet_hist.to_dict(),
            "reservoir": reservoir,
        }
    else:
        merged["latency_ms"] = {
            "p50": round(percentile(reservoir, 0.50), 4),
            "p99": round(percentile(reservoir, 0.99), 4),
            "samples": len(reservoir),
            "reservoir": reservoir,
        }

    # per-stage histograms merge the same way (absent unless detailed STATS)
    stage_names = sorted(
        {stage for stats in workers for stage in stats.get("stages", {})}
    )
    if stage_names:
        merged["stages"] = {}
        for stage in stage_names:
            stage_hist = merge_histogram_dicts(
                [
                    stats["stages"][stage]
                    for stats in workers
                    if isinstance(stats.get("stages", {}).get(stage), dict)
                ]
            )
            if stage_hist is not None:
                merged["stages"][stage] = stage_hist.to_dict()

    merged["per_worker"] = [
        {
            "worker": stats.get("worker"),
            "slot": stats.get("slot", 0),
            "restarts": stats.get("restarts", 0),
            "uptime_seconds": stats.get("uptime_seconds", 0.0),
            "qps": stats.get("qps", 0.0),
            "queries": stats.get("queries", 0),
            "busy_rejections": stats.get("busy_rejections", 0),
            "p50_ms": stats.get("latency_ms", {}).get("p50", 0.0),
            "p99_ms": stats.get("latency_ms", {}).get("p99", 0.0),
            **(
                {"members_open": stats["members_open"]}
                if "members_open" in stats
                else {}
            ),
            **(
                {"members_assigned": stats["members_assigned"]}
                if "members_assigned" in stats
                else {}
            ),
        }
        for stats in workers
    ]

    index = _merge_index_stats([s["index"] for s in workers if "index" in s])
    if index is not None:
        merged["index"] = index
    return merged


def _merge_index_stats(rows: list[dict]) -> dict | None:
    """Fold per-worker member-index stats (cache counters add)."""
    open_rows = [row for row in rows if row.get("open")]
    if not open_rows:
        return dict(rows[0]) if rows else None
    merged = dict(open_rows[0])
    for cache_key in ("cache", "pair_cache"):
        partials = [row[cache_key] for row in open_rows if cache_key in row]
        if not partials:
            continue
        hits = sum(p.get("hits", 0) for p in partials)
        misses = sum(p.get("misses", 0) for p in partials)
        lookups = hits + misses
        folded = dict(partials[0])
        folded.update(
            hits=hits,
            misses=misses,
            hit_rate=round(hits / lookups, 4) if lookups else 0.0,
            size=sum(p.get("size", 0) for p in partials),
        )
        merged[cache_key] = folded
        if cache_key == "cache":
            merged["cache_hit_rate"] = folded["hit_rate"]
    return merged
