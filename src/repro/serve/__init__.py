"""``repro.serve`` — serve packed distance labels over TCP.

The paper's labels are the perfect network-serving unit: a query needs only
two small labels, so a server holds nothing but a packed
:class:`~repro.api.DistanceIndex` (or a multi-tree
:class:`~repro.api.IndexCatalog`) and answers from bits.  This package adds
the missing network surface on top of the ``LabelStore`` → ``parse_many`` →
``QueryEngine`` pipeline:

* :class:`ServingCore` / :class:`LabelServer` (:mod:`repro.serve.server`)
  — the socket-free per-process serving engine and its asyncio TCP
  wrapper.  The engine's **micro-batching coalescer** gathers every QUERY
  that arrives in one event-loop tick, across all connections, into a
  single ``QueryEngine.batch_query`` call per member and a single response
  write per connection; a bounded pending queue sheds overload with BUSY,
  MATRIX requests run on a thread executor, and an optional hot-pair
  response cache answers repeated pairs without touching the labels;
* :class:`FleetSupervisor` (:mod:`repro.serve.supervisor`) — shard-per-core
  serving as a *supervised* fleet: N pre-forked workers (one
  :class:`LabelServer` each) sharing one listening address via
  ``SO_REUSEPORT`` (inherited-socket fallback); crashed workers are
  re-forked with backoff (:class:`~repro.serve.retry.RestartPolicy`, crash
  loops raise :class:`FleetCrashLoop`), ``reload()`` rolls a re-encoded
  store through the fleet one drained worker at a time, and SIGTERM
  propagates a drain-then-exit shutdown with fleet-merged statistics;
* :class:`LabelClient` / :class:`AsyncLabelClient`
  (:mod:`repro.serve.client`) — blocking and asyncio clients with
  connection reuse, request pipelining, transparent BUSY
  retry-with-jitter and reconnect-on-EOF (a dropped worker is a retryable
  event, not an error), returning the same typed
  :class:`~repro.api.QueryResult` values as in-process queries;
* fault injection (:mod:`repro.serve.faults`) — ``REPRO_FAULTS``-driven
  crashes/stalls honored at worker dispatch/accept/start points, plus the
  loadgen's ``chaos`` mode, so the supervision paths are tested instead of
  trusted;
* observability (:mod:`repro.obs`) — per-request tracing with
  per-stage spans (decode/queue/batch/encode/write), log-spaced latency
  histograms merged bucket-wise across the fleet, a Prometheus text
  endpoint (``serve --metrics-port``), a slow-query log
  (``serve --slow-ms``) and an opt-in ``cProfile`` window
  (``REPRO_PROFILE`` / SIGUSR2);
* the wire protocol (:mod:`repro.serve.protocol`), summarised below.

On the command line: ``repro-labels serve <store-or-catalog>
[--workers N] [--metrics-port P]``, ``repro-labels loadgen
[--chaos kill-worker:t=2] [--trace-every N]``, ``repro-labels
fleet-status`` and ``repro-labels trace`` (see ``repro-labels serve
--help``).

Wire protocol (RSP/1)
---------------------

Every message — both directions — is one *frame*::

    frame    :=  uvarint(len(body)) body
    body     :=  opcode:u8 request_id:uvarint payload

using the same LEB128 uvarints as the ``LabelStore``/``IndexCatalog`` file
formats (:mod:`repro.encoding.varint`).  Clients choose ``request_id``
freely and responses echo it: any number of requests may be in flight, and
a coalescing server may answer them out of order.

Request payloads (``name`` is a uvarint-length-prefixed UTF-8 member name;
empty selects the sole index of a single-store server)::

    QUERY  (0x01)  name u:uvarint v:uvarint [suffix]
    BATCH  (0x02)  name count:uvarint (u:uvarint v:uvarint){count} [suffix]
    MATRIX (0x03)  name count:uvarint explicit:u8 node:uvarint{count}
                   -- explicit=0 means "all nodes" (count is then 0)
    STATS  (0x04)  name [detail:u8]  -- empty name = server-wide counters
    INFO   (0x05)              -- no payload
    TRACE  (0x06)  limit:uvarint slow:u8  -- recent traces + slow log

    suffix :=  (tag:u8 value:uvarint)*    -- optional trailing fields in
               -- ascending tag order: 0x01 trace_id, 0x02 route_version

Response payloads::

    RESULT       (0x81)  kind:u8 [ratio:f64be] count:uvarint value{count}
    STATS_RESULT (0x83)  len:uvarint json-utf8
    INFO_RESULT  (0x84)  len:uvarint json-utf8
    TRACE_RESULT (0x85)  len:uvarint json-utf8
    MOVED        (0xFD)  version:uvarint name host:len-utf8 port:uvarint
                         -- member owned elsewhere; retry there
    BUSY         (0xFE)  retry_after_ms:uvarint   -- backpressure shed
    ERROR        (0xFF)  len:uvarint utf8-message

``kind`` preserves the scheme family semantics end to end:

* ``0`` exact — each value is ``uvarint(distance)``;
* ``1`` bounded — each value is ``0x00`` (beyond the scheme's k) or
  ``0x01 uvarint(distance)``;
* ``2`` approximate — a big-endian IEEE-754 double per value, preceded by
  one double holding the guaranteed ratio bound ``1 + eps``.

MATRIX results flatten row-major; the client reshapes (it knows the node
count).  ERROR and BUSY responses are request-scoped — the connection stays
usable — while unparseable bytes close the connection.  BUSY is the
additive ``"busy"`` capability of RSP/1 (advertised in the INFO payload's
``features`` list): an overloaded server sheds the request instead of
queueing it, and the clients retry with jittered backoff.  The additive
``"generation"`` capability means INFO carries a ``store`` block (path,
bytes, content-hash ``generation``) and STATS a ``store_generation``
field, so rolling reloads are observable over the wire.  The additive
``"tracing"`` capability covers the optional ``0x01 trace_id`` suffix
field on QUERY/BATCH (servers that predate it ignore trailing request
bytes, so stamped requests degrade to untraced ones) and the TRACE
opcode; a request without suffix fields is byte-identical to its
pre-suffix encoding.  The additive ``"routing"`` capability means a
sharded fleet (``serve --shard-members``) publishes its consistent-hash
routing table in the INFO payload's ``routing`` block (version,
replication, member → owning slots, slot → direct ``(host, port)``);
clients that fetch it pin each member's traffic to the owning shard's
direct port and stamp requests with the ``0x02 route_version`` suffix
field.  A sharded worker answers a *stamped* request for a member it
does not own with MOVED naming the owner — Redis-cluster style — which
the clients follow (bounded, then shared-address fallback); unstamped
legacy requests are served in place via a lazy fallback open, so old
clients keep byte-identical behaviour.
"""

from __future__ import annotations

from repro.serve.client import (
    AsyncLabelClient,
    LabelClient,
    ServerBusy,
    ServerError,
    ServerMoved,
)
from repro.serve.protocol import ProtocolError
from repro.serve.retry import RestartPolicy
from repro.serve.routing import HashRing, build_routing_table
from repro.serve.server import LabelServer, ServingCore, serve
from repro.serve.supervisor import FleetCrashLoop, FleetSupervisor, store_generation

__all__ = [
    "ServingCore",
    "LabelServer",
    "FleetSupervisor",
    "FleetCrashLoop",
    "RestartPolicy",
    "store_generation",
    "serve",
    "LabelClient",
    "AsyncLabelClient",
    "ServerError",
    "ServerBusy",
    "ServerMoved",
    "ProtocolError",
    "HashRing",
    "build_routing_table",
]
