"""Load generator for a :mod:`repro.serve` endpoint.

One entry point, :func:`run_load`, shared by the ``repro-labels loadgen``
command and ``benchmarks/bench_serve_throughput.py``: generate a named pair
workload (:mod:`repro.generators.workloads` — uniform, Zipf-skewed, or the
structural ``sibling``/``khop`` shapes), drive the server from several
pipelined connections, and report client-side throughput next to the
server's own statistics (coalescer batch sizes, latency percentiles,
parsed-label and hot-pair cache hit rates).

The structural workloads need the tree itself, which the server never
ships over the wire; ``family``/``tree_seed`` rebuild it locally from the
generator registry using the node count the server reports in INFO — the
same ``(family, n, seed)`` triple the index was encoded from.

Against a multi-worker fleet (``repro-labels serve --workers N``) each
connection lands on some worker, so ``loadgen`` asks **every** connection
for STATS, de-duplicates the payloads by worker id and merges them with
:func:`repro.serve.metrics.merge_fleet_stats`: counters and qps add, and
the latency percentiles are recomputed from the bucket-wise merged
per-worker histograms — an average of per-worker p50/p99 values is *not* a
percentile of the fleet's latency distribution and is never reported.

``trace_every=N`` stamps every Nth pipelined request with a trace id; after
the run the traced spans are fetched back from each connection's worker
(``OP_TRACE``) and folded into ``report["tracing"]`` — a per-stage
decode/queue/batch/encode/write breakdown of real sampled requests under
this exact load.

``chaos="kill-worker:t=2"`` turns a load run into a self-healing check
against a *supervised* fleet on the same machine: every ``t`` seconds a
probe connection asks INFO for the pid of whichever worker it landed on
and SIGKILLs it mid-run.  The run must still answer every pair — the
clients reconnect, the supervisor re-forks — and the report counts the
kills next to the client ``reconnects`` that absorbed them.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

from repro.generators.workloads import pair_workload
from repro.serve.client import AsyncLabelClient
from repro.serve.metrics import merge_fleet_stats


def parse_chaos(spec: str) -> tuple[str, float]:
    """``(kind, interval_seconds)`` from a chaos spec like ``kill-worker:t=2``."""
    kind, _, rest = spec.partition(":")
    if kind != "kill-worker":
        raise ValueError(f"unknown chaos kind {kind!r} (expected 'kill-worker')")
    interval = 2.0
    if rest:
        key, _, value = rest.partition("=")
        if key != "t":
            raise ValueError(f"unknown chaos parameter {key!r} (expected 't')")
        interval = float(value)
    if interval <= 0:
        raise ValueError("chaos interval must be positive")
    return kind, interval


async def _chaos_kill_workers(
    host: str, port: int, interval: float, kills: list[int]
) -> None:
    """SIGKILL the worker behind a fresh probe connection every ``interval``."""
    while True:
        await asyncio.sleep(interval)
        try:
            async with await AsyncLabelClient.connect(host, port) as probe:
                pid = (await probe.info())["worker"]
            os.kill(pid, signal.SIGKILL)
        except (ConnectionError, OSError):
            continue  # mid-restart window; try again next tick
        kills.append(pid)


def member_pair_counts(count: int, members: int, member_skew: float) -> list[int]:
    """Split ``count`` pairs over ``members`` by Zipf rank weight.

    ``member_skew=0`` is a uniform split; larger skews concentrate traffic
    on the first-ranked members (the shape the sharded bench uses to model
    hot catalog members).  Counts always sum to ``count``.
    """
    if members < 1:
        raise ValueError("need at least one member")
    weights = [1.0 / (rank + 1) ** member_skew for rank in range(members)]
    total = sum(weights)
    counts = [int(count * weight / total) for weight in weights]
    counts[0] += count - sum(counts)
    return counts


async def _run_load_async(
    host: str,
    port: int,
    *,
    name: str,
    pairs: int,
    workload: str,
    skew: float,
    connections: int,
    window: int,
    mode: str,
    seed: int,
    family: str,
    tree_seed: int,
    hops: int,
    chaos: str | None,
    trace_every: int,
    members: list[str] | None,
    member_skew: float,
    route: bool,
) -> dict:
    if connections < 1:
        raise ValueError("connections must be at least 1")
    if mode not in ("pipeline", "batch"):
        raise ValueError(f"unknown loadgen mode {mode!r}")
    if trace_every < 0:
        raise ValueError("trace_every must be non-negative")
    if trace_every and mode != "pipeline":
        raise ValueError("tracing requires mode='pipeline'")
    chaos_plan = parse_chaos(chaos) if chaos else None
    clients = [
        await AsyncLabelClient.connect(host, port, route=route)
        for _ in range(connections)
    ]
    try:
        info = await clients[0].info()
        served = info["members"]
        targets = list(members) if members else [name]
        for member in targets:
            if member not in served:
                raise ValueError(
                    f"no member named {member!r} on the server; "
                    f"members: {sorted(served)}"
                )
        counts = member_pair_counts(pairs, len(targets), member_skew)
        # one workload per member (each member may have its own node count),
        # seeded by member rank so shards differ but stay reproducible
        works: list[tuple[str, list]] = []
        for rank, (member, count) in enumerate(zip(targets, counts)):
            n = served[member]["n"]
            params = {}
            target: object = n
            if workload == "zipf":
                params = {"skew": skew}
            elif workload in ("sibling", "khop"):
                # the server only reports n; rebuild the tree the index came
                # from so the structural workload can read its shape
                from repro.generators.workloads import make_tree

                target = make_tree(family, n, tree_seed)
                if workload == "khop":
                    params = {"hops": hops}
            works.append(
                (member, pair_workload(workload, target, count, seed + rank, **params))
            )
        # per connection: its slice of every member's workload
        shards = [
            [(member, work[index::connections]) for member, work in works]
            for index in range(connections)
        ]

        kills: list[int] = []
        chaos_task = None
        if chaos_plan is not None:
            chaos_task = asyncio.get_running_loop().create_task(
                _chaos_kill_workers(host, port, chaos_plan[1], kills)
            )
        started = time.perf_counter()
        try:
            if mode == "pipeline":

                async def run_shard(client, jobs):
                    answered = await asyncio.gather(
                        *(
                            client.pipeline(
                                work,
                                name=member,
                                raw=True,
                                window=window,
                                trace_every=trace_every,
                            )
                            for member, work in jobs
                            if work
                        )
                    )
                    return [value for chunk in answered for value in chunk]

            else:
                # BATCH mode: window-sized OP_BATCH requests, all in flight at once
                async def run_shard(client, jobs):
                    chunks = [
                        (member, work[pos : pos + window])
                        for member, work in jobs
                        for pos in range(0, len(work), window)
                    ]
                    answered = await asyncio.gather(
                        *(
                            client.batch(chunk, name=member, raw=True)
                            for member, chunk in chunks
                        )
                    )
                    return [value for chunk in answered for value in chunk]

            shard_results = await asyncio.gather(
                *(run_shard(client, jobs) for client, jobs in zip(clients, shards))
            )
        finally:
            if chaos_task is not None:
                chaos_task.cancel()
                try:
                    await chaos_task
                except asyncio.CancelledError:
                    pass
        elapsed = max(time.perf_counter() - started, 1e-9)
        # every connection may face a different worker: collect all STATS
        # payloads and fold them into one fleet view (reservoirs merged).
        # Routed clients additionally poll their per-shard pooled
        # connections, so the merge sees every worker the run touched.
        if route:
            per_connection = await asyncio.gather(
                *(client.stats_all(detail=True) for client in clients)
            )
            rows = [stats for group in per_connection for stats in group]
        else:
            rows = list(
                await asyncio.gather(
                    *(client.stats(name, detail=True) for client in clients)
                )
            )
        stats = merge_fleet_stats(rows)
        # routed runs do the real work on pooled per-shard connections, so
        # fold their retry counters into the client-side totals too
        conns = [
            peer
            for client in clients
            for peer in (client, *client._route_pool.values())
        ]
        busy_retried = sum(peer.busy_retried for peer in conns)
        reconnects = sum(peer.reconnects for peer in conns)
        route_redirects = sum(client.route_redirects for client in clients)
        tracing = None
        if trace_every:
            tracing = await _collect_traces(conns, trace_every)
    finally:
        for client in clients:
            await client.close()

    answered = sum(len(shard) for shard in shard_results)
    checksum = sum(value for shard in shard_results for value in shard if value is not None)
    report = {
        "host": host,
        "port": port,
        "member": name,
        "members": targets if members else None,
        "member_skew": member_skew if members else None,
        "route": route,
        "route_redirects": route_redirects,
        "workload": workload,
        "skew": skew if workload == "zipf" else None,
        "mode": mode,
        "connections": connections,
        "window": window,
        "pairs": answered,
        "seconds": round(elapsed, 4),
        "qps": round(answered / elapsed, 1),
        "checksum": round(checksum, 4),
        "busy_retried": busy_retried,
        "reconnects": reconnects,
        "workers": stats["workers"],
        "restarts_observed": stats.get("restarts_observed", 0),
        "server": stats,
    }
    if tracing is not None:
        report["tracing"] = tracing
    if chaos_plan is not None:
        report["chaos"] = {"spec": chaos, "kills": len(kills), "pids": kills}
    return report


async def _collect_traces(clients, trace_every: int) -> dict:
    """Fetch sampled traces back from the workers and fold a stage breakdown.

    Each connection asks its own worker's trace ring (``OP_TRACE``), so with
    one connection per worker the whole fleet is covered; traces are matched
    to the ids *this* run stamped (the ring may also hold other clients'
    traces) and de-duplicated.  Workers bound their rings, so under heavy
    sampling ``collected < requested`` — the counts make that visible.
    """
    requested = {
        trace_id for client in clients for trace_id in client.traced_ids
    }
    collected: dict[int, dict] = {}
    for client in clients:
        try:
            snapshot = await client.trace(limit=0, slow=False)
        except (ConnectionError, OSError):  # pragma: no cover - dying fleet
            continue
        for trace in snapshot.get("traces", ()):
            trace_id = trace.get("trace_id")
            if trace_id in requested and trace_id not in collected:
                collected[trace_id] = trace
    stages: dict[str, dict] = {}
    total_count = 0
    total_sum = 0.0
    for trace in collected.values():
        total_count += 1
        total_sum += trace.get("total_ms", 0.0)
        for span in trace.get("spans", ()):
            stage = span.get("stage")
            row = stages.setdefault(
                stage, {"count": 0, "sum_ms": 0.0, "max_ms": 0.0}
            )
            row["count"] += 1
            row["sum_ms"] += span.get("ms", 0.0)
            row["max_ms"] = max(row["max_ms"], span.get("ms", 0.0))
    breakdown = {
        stage: {
            "count": row["count"],
            "mean_ms": round(row["sum_ms"] / row["count"], 4),
            "max_ms": round(row["max_ms"], 4),
        }
        for stage, row in stages.items()
    }
    return {
        "sample_every": trace_every,
        "requested": len(requested),
        "collected": len(collected),
        "mean_total_ms": round(total_sum / total_count, 4) if total_count else 0.0,
        "stages": breakdown,
    }


def run_load(
    host: str,
    port: int,
    *,
    name: str = "",
    pairs: int = 10000,
    workload: str = "uniform",
    skew: float = 1.0,
    connections: int = 4,
    window: int = 128,
    mode: str = "pipeline",
    seed: int = 0,
    family: str = "random",
    tree_seed: int = 0,
    hops: int = 4,
    chaos: str | None = None,
    trace_every: int = 0,
    members: list[str] | None = None,
    member_skew: float = 0.0,
    route: bool = False,
) -> dict:
    """Drive a serve endpoint and return a metrics dict.

    ``mode="pipeline"`` issues one QUERY per pair with up to ``window`` in
    flight per connection (the shape that exercises the server's
    micro-batching coalescer); ``mode="batch"`` groups pairs into
    window-sized BATCH requests instead.  The structural workloads
    (``sibling``, ``khop``) rebuild the served tree locally from
    ``family``/``tree_seed`` and the server-reported node count; ``hops``
    bounds the khop walk.  ``report["server"]`` is the fleet-merged STATS
    view; ``report["workers"]`` counts the distinct workers the
    connections reached.  ``chaos`` (e.g. ``"kill-worker:t=2"``) SIGKILLs
    a worker pid every ``t`` seconds mid-run — only meaningful against a
    supervised fleet on this machine.  ``trace_every=N`` samples every Nth
    pipelined request for server-side tracing and adds the per-stage
    breakdown as ``report["tracing"]``.

    ``members=[...]`` spreads the workload over several catalog members
    (pairs split by Zipf rank weight, ``member_skew=0`` uniform), and
    ``route=True`` lets clients consult the fleet's routing table and pin
    per-member traffic to the owning shard (see
    :class:`repro.serve.client.LabelClient`).  Fleet STATS are then
    collected from every pooled per-shard connection and merged by
    ``(slot, pid)``, so ``report["restarts_observed"]`` counts workers
    that were replaced mid-run.
    """
    return asyncio.run(
        _run_load_async(
            host,
            port,
            name=name,
            pairs=pairs,
            workload=workload,
            skew=skew,
            connections=connections,
            window=window,
            mode=mode,
            seed=seed,
            family=family,
            tree_seed=tree_seed,
            hops=hops,
            chaos=chaos,
            trace_every=trace_every,
            members=members,
            member_skew=member_skew,
            route=route,
        )
    )
