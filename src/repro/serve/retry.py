"""Retry and restart policy shared by the clients and the fleet supervisor.

One backoff shape for every retry loop in :mod:`repro.serve`: exponential
growth with **full jitter**.  A deterministic backoff would march every shed
client (or every crashed worker slot) back in lockstep, re-creating the very
burst that caused the shed — jitter spreads the retries out.

Two consumers:

* the clients (:mod:`repro.serve.client`) retry BUSY-shed requests and
  broken connections with :func:`backoff_delay`;
* the supervisor (:mod:`repro.serve.supervisor`) re-forks crashed workers
  under a :class:`RestartPolicy` — the same exponential-plus-jitter delay
  with a larger cap, plus the crash-loop circuit breaker (more than
  ``max_restarts`` deaths of the same slot inside ``window_seconds`` means
  the slot is beyond restarting and the fleet is torn down instead of
  flapping forever).
"""

from __future__ import annotations

import random

#: client-side retry delays are capped so a long backoff run cannot stall a
#: caller; the supervisor uses a larger cap (restarts are rare and a crashed
#: worker's siblings keep serving meanwhile)
CLIENT_MAX_BACKOFF_SECONDS = 0.25


def backoff_delay(
    attempt: int,
    retry_after_ms: int = 1,
    base_delay: float = 0.002,
    max_delay: float = CLIENT_MAX_BACKOFF_SECONDS,
) -> float:
    """Jittered exponential backoff seeded by the server's retry hint.

    Full jitter (``uniform(0.5, 1.5) * 2^attempt * base``), capped at
    ``max_delay`` before the jitter is applied.
    """
    base = max(retry_after_ms / 1000.0, base_delay)
    delay = min(max_delay, base * (1 << max(0, attempt - 1)))
    return delay * (0.5 + random.random())


class RestartPolicy:
    """When (and how fast) the supervisor re-forks a dead worker slot.

    ``max_restarts`` deaths of the same slot inside a sliding
    ``window_seconds`` window is a **crash loop**: the slot's problem is not
    transient (bad store file, deterministic fault, OOM on every start) and
    restarting would flap forever, so the supervisor tears the fleet down
    with a diagnostic summary instead.  Deaths older than the window are
    forgotten — a worker that crashes once a day restarts forever.
    """

    __slots__ = ("max_restarts", "window_seconds", "base_delay", "max_delay")

    def __init__(
        self,
        max_restarts: int = 5,
        window_seconds: float = 30.0,
        base_delay: float = 0.05,
        max_delay: float = 5.0,
    ) -> None:
        if max_restarts < 1:
            raise ValueError("max_restarts must be at least 1")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.max_restarts = max_restarts
        self.window_seconds = window_seconds
        self.base_delay = base_delay
        self.max_delay = max_delay

    def backoff(self, deaths: int) -> float:
        """Delay before the ``deaths``-th re-fork of a slot."""
        return backoff_delay(
            deaths, 0, base_delay=self.base_delay, max_delay=self.max_delay
        )

    def is_crash_loop(self, deaths_in_window: int) -> bool:
        """True when a slot has died too often to keep restarting it."""
        return deaths_in_window > self.max_restarts

    def describe(self) -> dict:
        return {
            "max_restarts": self.max_restarts,
            "window_seconds": self.window_seconds,
        }
