"""Shard-per-core serving: a supervising control plane over worker fleets.

One Python process tops out at one core's worth of label decoding, so the
production shape is N worker processes — one per core — all accepting on
the **same** address:

* where the platform has ``SO_REUSEPORT`` (Linux, modern BSDs) every worker
  binds its own socket to the shared ``(host, port)`` and the kernel
  load-balances incoming connections across them — no accept lock, no
  thundering herd;
* elsewhere the supervisor binds one listening socket before forking and
  every worker serves the inherited socket (the classic pre-fork fallback).

Each worker is a full :class:`~repro.serve.server.LabelServer` (its own
event loop, engine caches and coalescer) re-opening the served file in its
own address space — nothing is shared but the listening address, so there
is no cross-process locking anywhere on the query path.

The supervisor is a control plane, not a launcher:

**Restart-on-crash.**  :meth:`FleetSupervisor.supervise` watches every
worker slot; a worker dying unexpectedly is re-forked after an exponential
backoff with full jitter (the same retry shape the clients use, via
:class:`repro.serve.retry.RestartPolicy`) while its siblings keep serving
on the shared address.  More than ``max_restarts`` deaths of the same slot
inside a sliding window is a **crash loop** — the slot's problem is not
transient — and the supervisor tears the fleet down with a diagnostic
summary and raises :class:`FleetCrashLoop` instead of flapping forever.
Restart counts, last exit codes and per-slot uptimes are carried in every
worker's STATS (``slot`` / ``restarts``) and in :meth:`fleet_status`.

**Rolling reloads.**  :meth:`FleetSupervisor.reload` drains and replaces
workers one at a time: the replacement forks against the (possibly
re-encoded) store file and completes its ready handshake *before* the old
worker gets SIGTERM, finishes its in-flight coalescer tick, and closes its
connections — so a new store generation rolls out with zero dropped
requests (clients treat the EOF as a retryable event and reconnect).  The
store generation (content hash + path, :func:`store_generation`) is
reported in INFO/STATS so clients and tests can observe the flip.

**Fault injection.**  Workers honor :mod:`repro.serve.faults`
(``REPRO_FAULTS=crash:p=0.01,stall:ms=200``) at their accept/dispatch
points, which is how the self-healing paths above are tested
deterministically.

Lifecycle: SIGTERM (or :meth:`FleetSupervisor.shutdown`) is propagated to
every worker, each worker drains its queue, reports its final STATS over a
pipe and exits 0; the supervisor folds those per-worker payloads — plus the
final STATS of workers retired by rolling reloads — into one fleet-wide
summary (:func:`repro.serve.metrics.merge_fleet_stats`: summed counters,
latency percentiles recomputed from bucket-wise merged histograms).

**Observability.**  The worker pipes double as a live control channel: the
supervisor's ``/metrics`` endpoint (:meth:`FleetSupervisor.start_metrics`,
``serve --metrics-port``) scrapes every worker's detailed STATS per GET and
renders the fleet-merged Prometheus exposition; workers also honor the
``REPRO_PROFILE`` / SIGUSR2 cProfile hook (:mod:`repro.obs.profile`).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import socket
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection

from repro.serve import faults
from repro.serve.metrics import merge_fleet_stats
from repro.serve.retry import RestartPolicy
from repro.serve.routing import build_routing_table

#: seconds to wait for worker ready handshakes / final stats / joins
_START_TIMEOUT = 60.0
_STOP_TIMEOUT = 15.0


class FleetCrashLoop(RuntimeError):
    """A worker slot died too often inside the restart window.

    Carries the fleet's shutdown ``summary`` (merged final stats plus exit
    codes) and the ``diagnostic`` dict describing the flapping slot.
    """

    def __init__(self, message: str, diagnostic: dict, summary: dict) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic
        self.summary = summary


def store_generation(path: str) -> dict:
    """The content identity of a served store file.

    ``generation`` is a sha256 prefix of the file bytes — two byte-identical
    re-encodes share it, any real re-encode flips it — and rides through
    worker INFO/STATS so a rolling reload is observable end to end.
    """
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
            size += len(chunk)
    return {
        "path": os.path.abspath(path),
        "bytes": size,
        "generation": digest.hexdigest()[:16],
    }


def open_serve_target(path: str, cache_size: int = 4096, use_mmap: bool = False):
    """``(target, description)`` from a store or catalog file, by magic.

    Shared by the CLI ``serve`` command and every supervisor worker (each
    worker re-opens the file in its own process).  Hot-pair cache enabling
    is the server's job, so lazily opened catalog members get it too.

    With ``use_mmap`` the file is opened as a read-only memory mapping
    instead of being read into the heap — for a pre-forked fleet, N workers
    mapping the same file share **one** physical copy through the page
    cache (the per-worker ``rss_bytes`` in STATS makes the sharing
    visible).
    """
    from repro.api import CATALOG_MAGIC, DistanceIndex, IndexCatalog

    with open(path, "rb") as handle:
        magic = handle.read(4)
    via = "mmap" if use_mmap else "heap"
    if magic == CATALOG_MAGIC:
        catalog = IndexCatalog.load(path, mmap=use_mmap)
        return catalog, f"catalog {path} ({len(catalog)} member(s), {via})"
    index = DistanceIndex.open(path, cache_size=cache_size, mmap=use_mmap)
    return index, f"index {path} (scheme={index.spec}, n={index.n}, {via})"


def read_member_names(path: str) -> list[str]:
    """Member names of a catalog file (TOC-only read; ``[""]`` for a store).

    This is what the supervisor partitions across worker slots — reading the
    RLC1 table of contents never opens (parses) a member.
    """
    from repro.api import CATALOG_MAGIC, IndexCatalog

    with open(path, "rb") as handle:
        magic = handle.read(4)
    if magic == CATALOG_MAGIC:
        return IndexCatalog.load(path).names()
    return [""]


def _worker_main(path: str, config: dict, listen, conn) -> None:
    """One worker process: open the target, serve until SIGTERM, report stats.

    ``listen`` is either an ``(host, port)`` address to bind with
    ``SO_REUSEPORT`` or an inherited listening ``socket.socket``.  The final
    STATS payload travels back through ``conn`` after the event loop exits.

    On SIGTERM the worker *drains* instead of dropping: stop accepting,
    answer everything already queued in the coalescer, flush and close the
    client connections (a clean EOF the clients retry against), then exit 0.

    While serving, ``conn`` doubles as a control channel: the supervisor's
    metrics endpoint sends ``("stats_request", detail)`` and the worker
    answers ``("stats_snapshot", pid, stats)`` from the event loop — live
    per-worker observability without consuming a client connection or
    polluting the query counters.
    """
    import asyncio

    from repro.obs.profile import install_profile_hook
    from repro.serve.server import LabelServer

    # the supervisor owns interactive interrupts; workers stop on SIGTERM
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    cache_size = config.pop("cache_size", 4096)
    use_mmap = config.pop("use_mmap", False)
    drain_seconds = config.pop("drain_seconds", 5.0)
    direct_listen = config.pop("direct_listen", None)
    plan = faults.plan_for(config.get("slot", 0))
    if plan is not None:
        # the pre-handshake crash point: the supervisor must attribute the
        # death to this slot without leaking its already-ready siblings
        plan.fire("start")
    target, _ = open_serve_target(path, cache_size, use_mmap)
    server = LabelServer(target, **config)

    async def main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        install_profile_hook(
            loop,
            slot=config.get("slot", 0),
            generation=(config.get("generation") or {}).get("generation"),
        )
        if isinstance(listen, socket.socket):
            address = await server.start(sock=listen)
        else:
            host, port = listen
            address = await server.start(host, port, reuse_port=True)
        if direct_listen is not None:
            # the worker's own routed endpoint, alongside the shared address;
            # the port was reserved by the supervisor's per-slot anchor, so
            # the routing table knew it before this process even forked
            direct_host, direct_port = direct_listen
            await server.start_direct(direct_host, direct_port, reuse_port=True)
        conn.send(("ready", os.getpid(), address))

        def on_control() -> None:
            """Answer a supervisor control message from the event loop."""
            try:
                message = conn.recv()
            except (EOFError, OSError):
                loop.remove_reader(conn.fileno())
                return
            if not (isinstance(message, tuple) and message):
                return  # pragma: no cover - defensive
            if message[0] == "stats_request":
                detail = bool(message[1]) if len(message) > 1 else True
                try:
                    conn.send(
                        ("stats_snapshot", os.getpid(), server.stats(detail=detail))
                    )
                except (BrokenPipeError, OSError):  # pragma: no cover - race
                    pass
            elif message[0] == "routing" and len(message) > 1:
                # post-reload routing-table swap, pushed by the supervisor
                server.set_routing(message[1])

        loop.add_reader(conn.fileno(), on_control)
        if plan is not None:
            exit_clause = plan.exit_clause()
            if exit_clause is not None:
                loop.call_later(
                    exit_clause.after_ms / 1000.0, os._exit, exit_clause.code
                )
        serving = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        # drain-and-exit: close the listener first (nothing new arrives),
        # finish the queued coalescer work, then hand every client a clean
        # EOF so its retry logic moves it to a sibling or replacement
        await server.stop()
        await server.drain(drain_seconds)
        server.close_connections()
        loop.remove_reader(conn.fileno())
        serving.cancel()

    asyncio.run(main())
    conn.send(("stats", os.getpid(), server.stats(detail=True)))
    conn.close()


class _WorkerSlot:
    """One fleet slot: the current worker process plus its restart history."""

    __slots__ = (
        "slot",
        "process",
        "conn",
        "restarts",
        "deaths",
        "exit_history",
        "last_exit_code",
        "started_at",
    )

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.process = None
        self.conn = None
        self.restarts = 0
        #: monotonic timestamps of recent deaths (pruned to the policy window)
        self.deaths: deque[float] = deque()
        #: last few exit codes, for crash-loop diagnostics
        self.exit_history: deque[int | None] = deque(maxlen=8)
        self.last_exit_code: int | None = None
        self.started_at = 0.0

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


class FleetSupervisor:
    """Pre-fork N :class:`LabelServer` workers sharing one listening address.

    ``path`` is a store (RLS1) or catalog (RLC1) file — workers re-open it
    independently, so the target must be a file, not a live object.  The
    remaining keyword arguments are per-worker :class:`ServingCore`
    configuration plus ``cache_size`` for the parsed-label LRU,
    ``drain_seconds`` for the worker shutdown drain, and
    ``restart_policy`` — the :class:`~repro.serve.retry.RestartPolicy`
    governing restart-on-crash (``None`` uses the defaults).
    """

    def __init__(
        self,
        path: str,
        *,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 4096,
        use_mmap: bool = False,
        restart_policy: RestartPolicy | None = None,
        drain_seconds: float = 5.0,
        shard_members: bool = False,
        replication: int = 1,
        **server_kwargs,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if replication < 1:
            raise ValueError("replication must be at least 1")
        self.path = str(path)
        self.workers = workers
        self.host = host
        self.port = port
        self.restart_policy = restart_policy or RestartPolicy()
        self._config = dict(
            server_kwargs,
            cache_size=cache_size,
            use_mmap=use_mmap,
            drain_seconds=drain_seconds,
        )
        #: catalog-aware member placement: with ``shard_members`` every slot
        #: gets its own direct port and a consistent-hash share of the
        #: catalog's members; the versioned table is published through INFO
        self.shard_members = bool(shard_members)
        self.replication = int(replication)
        self.routing_table: dict | None = None
        self.routing_version = 0
        self._member_names: list[str] = []
        self._direct_anchors: dict[int, socket.socket] = {}
        self._slots: list[_WorkerSlot] = []
        self._context = None
        self._listen = None
        self._anchor: socket.socket | None = None
        self._address: tuple[str, int] | None = None
        self._retired_stats: list[dict] = []
        self.generation: dict | None = None
        self.total_restarts = 0
        self.reloads = 0
        self.reuse_port = hasattr(socket, "SO_REUSEPORT")
        #: serialises worker-pipe reads between the supervision thread and
        #: the metrics endpoint's scrape thread — a scrape must never steal
        #: a retiring worker's final stats message
        self._pipe_lock = threading.Lock()
        self._metrics_server = None
        self.metrics_address: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def pids(self) -> list[int]:
        """PIDs of the current worker processes (after :meth:`start`)."""
        return [slot.pid for slot in self._slots if slot.pid]

    def start(self) -> tuple[str, int]:
        """Fork the fleet and wait for every worker; returns ``(host, port)``."""
        if self._slots:
            raise RuntimeError("fleet already started")
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platform
            if not self.reuse_port:
                raise RuntimeError(
                    "multi-worker serving needs fork or SO_REUSEPORT"
                ) from None
            self._context = multiprocessing.get_context("spawn")

        if self.reuse_port:
            # reserve the (possibly ephemeral) port without listening: a
            # bound non-listening socket takes no connections, but pins the
            # address so every worker can bind it with SO_REUSEPORT
            anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            anchor.bind((self.host, self.port))
            self._anchor = anchor
            self._address = anchor.getsockname()[:2]
            self._listen = self._address
        else:  # pragma: no cover - exercised only on platforms w/o REUSEPORT
            anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            anchor.bind((self.host, self.port))
            anchor.listen(1024)
            self._anchor = anchor
            self._address = anchor.getsockname()[:2]
            self._listen = anchor

        self.generation = store_generation(self.path)
        if self.shard_members:
            if not self.reuse_port:  # pragma: no cover - non-REUSEPORT platform
                raise RuntimeError(
                    "--shard-members needs SO_REUSEPORT (per-slot direct ports "
                    "must survive worker restarts)"
                )
            # one bound, non-listening anchor per slot pins that slot's
            # direct port for the fleet's whole lifetime: the routing table
            # is complete before the first fork, and a restarted or reloaded
            # worker re-binds the same port with SO_REUSEPORT
            for slot_index in range(self.workers):
                anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                anchor.bind((self.host, 0))
                self._direct_anchors[slot_index] = anchor
            self._member_names = read_member_names(self.path)
            self.routing_version = 1
            self.routing_table = self._build_routing_table()
        for slot_index in range(self.workers):
            slot = _WorkerSlot(slot_index)
            self._fork_into(slot)
            self._slots.append(slot)

        failures = self._await_ready(self._slots, _START_TIMEOUT)
        if failures:
            slot, reason = failures[0]
            pid = slot.pid
            self.shutdown()
            raise RuntimeError(f"worker slot {slot.slot} (pid {pid}) {reason}")
        return self._address

    def _build_routing_table(self) -> dict:
        """The versioned member→slot table for the current fleet geometry."""
        address_host = self._address[0] if self._address else self.host
        endpoints = {
            slot: (address_host, anchor.getsockname()[1])
            for slot, anchor in self._direct_anchors.items()
        }
        return build_routing_table(
            self._member_names,
            endpoints,
            version=self.routing_version,
            replication=self.replication,
            generation=(self.generation or {}).get("generation"),
        )

    def _fork_into(self, slot: _WorkerSlot) -> None:
        """Fork a fresh worker process for ``slot`` (handshake awaited later)."""
        parent_conn, child_conn = self._context.Pipe()
        config = dict(
            self._config,
            slot=slot.slot,
            restarts=slot.restarts,
            generation=dict(self.generation),
        )
        if self.routing_table is not None:
            anchor = self._direct_anchors[slot.slot]
            config["routing_table"] = self.routing_table
            config["direct_listen"] = anchor.getsockname()[:2]
        process = self._context.Process(
            target=_worker_main,
            args=(self.path, config, self._listen, child_conn),
            daemon=False,
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.started_at = time.monotonic()

    def _await_ready(self, slots: list[_WorkerSlot], timeout: float) -> list[tuple]:
        """Wait for every slot's ready handshake; returns ``(slot, reason)``
        failures.

        Event-driven over all the handshake pipes and process sentinels at
        once, so a worker dying while a *sibling* is still starting is
        attributed to the worker that actually died — never to whichever
        slot happened to be polled when a shared deadline ran out.
        """
        pending = {slot.conn: slot for slot in slots}
        deadline = time.monotonic() + timeout
        failures: list[tuple] = []
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                failures.extend(
                    (slot, "never became ready") for slot in pending.values()
                )
                break
            sentinels = {
                slot.process.sentinel: slot for slot in pending.values()
            }
            ready = mp_connection.wait(
                list(pending) + list(sentinels), timeout=remaining
            )
            for waitable in ready:
                slot = pending.get(waitable)
                if slot is not None:
                    try:
                        kind, _pid, _payload = waitable.recv()
                    except (EOFError, OSError):
                        # the worker died before its handshake (unreadable
                        # store, injected start fault, OOM kill, ...)
                        del pending[waitable]
                        failures.append((slot, "died before becoming ready"))
                        continue
                    del pending[waitable]
                    if kind != "ready":  # pragma: no cover - defensive
                        failures.append((slot, f"sent unexpected handshake {kind!r}"))
                    continue
                dead = sentinels.get(waitable)
                if dead is not None and dead.conn in pending:
                    # process exited; its pipe may still buffer a handshake —
                    # give the conn branch one more round to drain it
                    if dead.conn.poll(0):
                        continue
                    del pending[dead.conn]
                    failures.append((dead, "died before becoming ready"))
        return failures

    def poll(self) -> bool:
        """``True`` while every slot has a live worker."""
        return bool(self._slots) and all(
            slot.process is not None and slot.process.is_alive()
            for slot in self._slots
        )

    # -- supervision ---------------------------------------------------------

    def supervise(self, stop_check=None, reload_check=None, interval: float = 0.1) -> None:
        """The supervision loop: restart dead workers until ``stop_check``.

        ``stop_check`` is typically "has a SIGTERM/SIGINT arrived";
        ``reload_check`` (e.g. "has a SIGHUP arrived") triggers a rolling
        :meth:`reload` of the current path.  A crash-looping slot raises
        :class:`FleetCrashLoop` after a controlled fleet teardown.
        """
        while self._slots:
            if stop_check is not None and stop_check():
                return
            if reload_check is not None and reload_check():
                self.reload()
            for slot in list(self._slots):
                if slot.process is not None and not slot.process.is_alive():
                    self._revive(slot, stop_check)
                    if not self._slots:  # pragma: no cover - defensive
                        return
            time.sleep(interval)

    def wait(self, stop_check=None, interval: float = 0.2) -> None:
        """Backwards-compatible alias for :meth:`supervise` (no reloads)."""
        self.supervise(stop_check=stop_check, interval=interval)

    def _revive(self, slot: _WorkerSlot, stop_check=None) -> None:
        """Re-fork a dead slot (with backoff); raise on a crash loop."""
        policy = self.restart_policy
        while True:
            process = slot.process
            process.join()
            slot.last_exit_code = process.exitcode
            slot.exit_history.append(process.exitcode)
            now = time.monotonic()
            slot.deaths.append(now)
            while slot.deaths and slot.deaths[0] < now - policy.window_seconds:
                slot.deaths.popleft()
            if slot.conn is not None:
                try:
                    slot.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            if policy.is_crash_loop(len(slot.deaths)):
                diagnostic = {
                    "slot": slot.slot,
                    "deaths_in_window": len(slot.deaths),
                    "window_seconds": policy.window_seconds,
                    "max_restarts": policy.max_restarts,
                    "exit_codes": list(slot.exit_history),
                }
                summary = self.shutdown()
                raise FleetCrashLoop(
                    f"worker slot {slot.slot} crash-looped: "
                    f"{diagnostic['deaths_in_window']} deaths inside "
                    f"{policy.window_seconds:g}s (exit codes "
                    f"{diagnostic['exit_codes']}); fleet torn down",
                    diagnostic,
                    summary,
                )
            deadline = time.monotonic() + policy.backoff(len(slot.deaths))
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if stop_check is not None and stop_check():
                    return
                time.sleep(min(0.05, remaining))
            slot.restarts += 1
            self.total_restarts += 1
            self._fork_into(slot)
            if not self._await_ready([slot], _START_TIMEOUT):
                return
            # died again before becoming ready: another death, loop

    # -- rolling reload ------------------------------------------------------

    def reload(self, path: str | None = None) -> dict:
        """Drain-and-replace every worker, one at a time, on the new store.

        For each slot the replacement forks against ``path`` (default: the
        current path, re-hashed — the file may have been re-encoded in
        place), completes its ready handshake, and only then does the old
        worker get SIGTERM: it finishes its in-flight tick, closes its
        connections and reports final stats, which are folded into the
        eventual fleet summary.  At no point is the listening address
        unserved, so a pipelined client under continuous load sees at most
        a reconnect, never a dropped request.

        Returns the new generation dict.  If a replacement fails to become
        ready the reload aborts with the *old* fleet fully intact.
        """
        if not self._slots:
            raise RuntimeError("fleet not running")
        previous = (self.path, self.generation)
        previous_routing = (self.routing_table, self.routing_version, self._member_names)
        if path is not None:
            self.path = str(path)
        self.generation = store_generation(self.path)
        if self.shard_members:
            # a strictly increasing table version per reload: replacements
            # fork with the new table (member set may have changed with the
            # file); old workers keep the previous version until retired, so
            # every member stays owned by at least one live slot throughout
            self._member_names = read_member_names(self.path)
            self.routing_version += 1
            self.routing_table = self._build_routing_table()
        swapped = 0
        for slot in self._slots:
            replacement = _WorkerSlot(slot.slot)
            replacement.restarts = slot.restarts
            self._fork_into(replacement)
            failures = self._await_ready([replacement], _START_TIMEOUT)
            if failures:
                _, reason = failures[0]
                if replacement.process.is_alive():  # pragma: no cover - defensive
                    replacement.process.kill()
                replacement.process.join(5)
                if not swapped:
                    # nothing replaced yet (typically an unloadable file):
                    # future restarts must fork against the store the fleet
                    # is actually serving, not the one that failed to load
                    self.path, self.generation = previous
                    (
                        self.routing_table,
                        self.routing_version,
                        self._member_names,
                    ) = previous_routing
                raise RuntimeError(
                    f"rolling reload aborted: replacement for slot {slot.slot} "
                    f"{reason}; "
                    + ("old fleet left intact" if not swapped else
                       f"{swapped} slot(s) already on the new store")
                )
            self._retire(slot)
            slot.process = replacement.process
            slot.conn = replacement.conn
            slot.started_at = replacement.started_at
            swapped += 1
        self.reloads += 1
        if self.routing_table is not None:
            # idempotent post-roll push: every live worker (replacements
            # included) converges on the new table version
            for slot in self._slots:
                try:
                    slot.conn.send(("routing", self.routing_table))
                except (BrokenPipeError, OSError):  # pragma: no cover - race
                    pass
        return dict(self.generation)

    def _retire(self, slot: _WorkerSlot) -> None:
        """SIGTERM a slot's current worker, collect its final stats, join."""
        process, conn = slot.process, slot.conn
        if process.is_alive() and process.pid:
            try:
                os.kill(process.pid, signal.SIGTERM)
            except ProcessLookupError:  # pragma: no cover - exit race
                pass
        deadline = time.monotonic() + _STOP_TIMEOUT
        try:
            with self._pipe_lock:
                # skip stats_snapshot replies a metrics scrape left behind;
                # only the worker's final "stats" message retires the slot
                while conn.poll(max(0.0, deadline - time.monotonic())):
                    kind, _pid, payload = conn.recv()
                    if kind == "stats":
                        self._retired_stats.append(payload)
                        break
        except (EOFError, OSError):
            pass
        process.join(max(0.1, deadline - time.monotonic()))
        if process.is_alive():  # pragma: no cover - stuck worker
            process.kill()
            process.join(5)
        slot.last_exit_code = process.exitcode
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # -- observability -------------------------------------------------------

    def scrape_stats(self, timeout: float = 2.0) -> list[dict]:
        """One detailed STATS snapshot per live worker, over the control pipes.

        Pipe-based (not probe connections), so a scrape is exact per worker —
        it never depends on ``SO_REUSEPORT`` balancing landing one probe on
        each worker — and never inflates the fleet's connection counters.
        Dead or unresponsive workers are simply absent from the result.
        """
        with self._pipe_lock:
            requested: list[_WorkerSlot] = []
            for slot in self._slots:
                if (
                    slot.process is None
                    or not slot.process.is_alive()
                    or slot.conn is None
                ):
                    continue
                try:
                    slot.conn.send(("stats_request", True))
                except (BrokenPipeError, OSError):  # pragma: no cover - race
                    continue
                requested.append(slot)
            stats: list[dict] = []
            deadline = time.monotonic() + timeout
            for slot in requested:
                try:
                    while slot.conn.poll(max(0.0, deadline - time.monotonic())):
                        kind, _pid, payload = slot.conn.recv()
                        # a draining worker may answer with its final "stats"
                        # instead of a snapshot; both are usable here
                        if kind in ("stats_snapshot", "stats"):
                            stats.append(payload)
                            break
                except (EOFError, OSError):
                    continue
            return stats

    def render_metrics(self) -> str:
        """The Prometheus text exposition for one live fleet scrape."""
        from repro.obs.prom import fleet_registry, render

        stats = self.scrape_stats()
        merged = merge_fleet_stats(stats) if stats else {"workers": 0}
        # the supervisor's restart counter is authoritative: a scrape can
        # miss a worker mid-replacement, per-slot sums cannot exceed it
        merged["restarts"] = self.total_restarts
        return render(fleet_registry(merged, supervisor=self.fleet_status()))

    def start_metrics(self, port: int, host: str = "127.0.0.1") -> tuple[str, int]:
        """Expose :meth:`render_metrics` on an HTTP endpoint (daemon thread)."""
        from repro.obs.prom import MetricsServer

        if self._metrics_server is not None:
            raise RuntimeError("metrics endpoint already started")
        self._metrics_server = MetricsServer(self.render_metrics, host, port)
        self.metrics_address = self._metrics_server.start()
        return self.metrics_address

    # -- status & teardown ---------------------------------------------------

    def fleet_status(self) -> dict:
        """The supervisor-side control-plane view (no worker round-trips)."""
        now = time.monotonic()
        status = {
            "workers": len(self._slots),
            "address": list(self._address) if self._address else None,
            "path": self.path,
            "generation": (self.generation or {}).get("generation"),
            "restarts": self.total_restarts,
            "reloads": self.reloads,
            "restart_policy": self.restart_policy.describe(),
            "slots": [
                {
                    "slot": slot.slot,
                    "pid": slot.pid,
                    "alive": slot.process.is_alive() if slot.process else False,
                    "restarts": slot.restarts,
                    "last_exit_code": slot.last_exit_code,
                    "uptime_seconds": round(now - slot.started_at, 3)
                    if slot.started_at
                    else 0.0,
                }
                for slot in self._slots
            ],
        }
        if self.routing_table is not None:
            table = self.routing_table
            placement: dict[int, list[str]] = {}
            for name, owners in table.get("members", {}).items():
                for owner in owners:
                    placement.setdefault(owner, []).append(name)
            status["routing"] = {
                "version": table.get("version"),
                "replication": table.get("replication"),
                "members": len(table.get("members", {})),
                "slots": {
                    slot_key: {
                        "endpoint": list(endpoint),
                        "members": sorted(placement.get(int(slot_key), [])),
                    }
                    for slot_key, endpoint in table.get("slots", {}).items()
                },
            }
        return status

    def shutdown(self) -> dict:
        """SIGTERM every worker, collect final stats, return the fleet summary.

        The summary is :func:`merge_fleet_stats` over the workers' final
        STATS payloads — including workers retired by rolling reloads, so
        lifetime counters survive replacement — with ``exit_codes``,
        ``restarts`` (supervisor-counted) and ``reloads`` added.
        """
        if self._metrics_server is not None:
            self._metrics_server.stop()
            self._metrics_server = None
            self.metrics_address = None
        slots, self._slots = self._slots, []
        for slot in slots:
            process = slot.process
            if process is not None and process.is_alive() and process.pid:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except ProcessLookupError:  # pragma: no cover - exit race
                    pass
        deadline = time.monotonic() + _STOP_TIMEOUT
        stats: list[dict] = list(self._retired_stats)
        with self._pipe_lock:
            for slot in slots:
                if slot.conn is None:
                    continue
                try:
                    while slot.conn.poll(max(0.0, deadline - time.monotonic())):
                        kind, _pid, payload = slot.conn.recv()
                        if kind == "stats":
                            stats.append(payload)
                            break
                except (EOFError, OSError):
                    continue
        exit_codes: list[int | None] = []
        for slot in slots:
            process = slot.process
            if process is None:
                exit_codes.append(slot.last_exit_code)
                continue
            process.join(max(0.1, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(5)
            slot.last_exit_code = process.exitcode
            exit_codes.append(process.exitcode)
        for slot in slots:
            if slot.conn is not None:
                try:
                    slot.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        if self._anchor is not None:
            self._anchor.close()
            self._anchor = None
        for anchor in self._direct_anchors.values():
            anchor.close()
        self._direct_anchors = {}
        self._retired_stats = []
        summary = merge_fleet_stats(stats) if stats else {}
        summary["exit_codes"] = exit_codes
        summary["restarts"] = self.total_restarts
        summary["reloads"] = self.reloads
        summary["per_slot"] = [
            {
                "slot": slot.slot,
                "restarts": slot.restarts,
                "last_exit_code": slot.last_exit_code,
            }
            for slot in slots
        ]
        return summary
