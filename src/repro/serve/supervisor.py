"""Shard-per-core serving: a pre-fork supervisor over :class:`LabelServer`.

One Python process tops out at one core's worth of label decoding, so the
production shape is N worker processes — one per core — all accepting on
the **same** address:

* where the platform has ``SO_REUSEPORT`` (Linux, modern BSDs) every worker
  binds its own socket to the shared ``(host, port)`` and the kernel
  load-balances incoming connections across them — no accept lock, no
  thundering herd;
* elsewhere the supervisor binds one listening socket before forking and
  every worker serves the inherited socket (the classic pre-fork fallback).

Each worker is a full :class:`~repro.serve.server.LabelServer` (its own
event loop, engine caches and coalescer) re-opening the served file in its
own address space — nothing is shared but the listening address, so there
is no cross-process locking anywhere on the query path.

Lifecycle: the supervisor forks the fleet, waits for every worker's ready
handshake, and from then on only supervises — SIGTERM (or
:meth:`FleetSupervisor.shutdown`) is propagated to every worker, each
worker finishes its event-loop tick, reports its final STATS over a pipe
and exits 0; the supervisor folds those per-worker payloads into one
fleet-wide summary (:func:`repro.serve.metrics.merge_fleet_stats` — summed
counters, latency percentiles recomputed from merged reservoirs).  A worker
dying unexpectedly tears the whole fleet down rather than serving degraded.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import time

from repro.serve.metrics import merge_fleet_stats

#: seconds to wait for worker ready handshakes / final stats / joins
_START_TIMEOUT = 60.0
_STOP_TIMEOUT = 15.0


def open_serve_target(path: str, cache_size: int = 4096, use_mmap: bool = False):
    """``(target, description)`` from a store or catalog file, by magic.

    Shared by the CLI ``serve`` command and every supervisor worker (each
    worker re-opens the file in its own process).  Hot-pair cache enabling
    is the server's job, so lazily opened catalog members get it too.

    With ``use_mmap`` the file is opened as a read-only memory mapping
    instead of being read into the heap — for a pre-forked fleet, N workers
    mapping the same file share **one** physical copy through the page
    cache (the per-worker ``rss_bytes`` in STATS makes the sharing
    visible).
    """
    from repro.api import CATALOG_MAGIC, DistanceIndex, IndexCatalog

    with open(path, "rb") as handle:
        magic = handle.read(4)
    via = "mmap" if use_mmap else "heap"
    if magic == CATALOG_MAGIC:
        catalog = IndexCatalog.load(path, mmap=use_mmap)
        return catalog, f"catalog {path} ({len(catalog)} member(s), {via})"
    index = DistanceIndex.open(path, cache_size=cache_size, mmap=use_mmap)
    return index, f"index {path} (scheme={index.spec}, n={index.n}, {via})"


def _worker_main(path: str, config: dict, listen, conn) -> None:
    """One worker process: open the target, serve until SIGTERM, report stats.

    ``listen`` is either an ``(host, port)`` address to bind with
    ``SO_REUSEPORT`` or an inherited listening ``socket.socket``.  The final
    STATS payload travels back through ``conn`` after the event loop exits.
    """
    import asyncio

    from repro.serve.server import LabelServer

    # the supervisor owns interactive interrupts; workers stop on SIGTERM
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    cache_size = config.pop("cache_size", 4096)
    use_mmap = config.pop("use_mmap", False)
    target, _ = open_serve_target(path, cache_size, use_mmap)
    server = LabelServer(target, **config)

    async def main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        if isinstance(listen, socket.socket):
            address = await server.start(sock=listen)
        else:
            host, port = listen
            address = await server.start(host, port, reuse_port=True)
        conn.send(("ready", os.getpid(), address))
        serving = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        serving.cancel()
        await server.stop()

    asyncio.run(main())
    conn.send(("stats", os.getpid(), server.stats(include_reservoir=True)))
    conn.close()


class FleetSupervisor:
    """Pre-fork N :class:`LabelServer` workers sharing one listening address.

    ``path`` is a store (RLS1) or catalog (RLC1) file — workers re-open it
    independently, so the target must be a file, not a live object.  The
    remaining keyword arguments are per-worker :class:`ServingCore`
    configuration plus ``cache_size`` for the parsed-label LRU.
    """

    def __init__(
        self,
        path: str,
        *,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 4096,
        use_mmap: bool = False,
        **server_kwargs,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.path = path
        self.workers = workers
        self.host = host
        self.port = port
        self._config = dict(server_kwargs, cache_size=cache_size, use_mmap=use_mmap)
        self._processes: list[multiprocessing.Process] = []
        self._conns: list = []
        self._anchor: socket.socket | None = None
        self._address: tuple[str, int] | None = None
        self._final_stats: list[dict] = []
        self.reuse_port = hasattr(socket, "SO_REUSEPORT")

    # -- lifecycle -----------------------------------------------------------

    @property
    def pids(self) -> list[int]:
        """PIDs of the worker processes (after :meth:`start`)."""
        return [process.pid for process in self._processes if process.pid]

    def start(self) -> tuple[str, int]:
        """Fork the fleet and wait for every worker; returns ``(host, port)``."""
        if self._processes:
            raise RuntimeError("fleet already started")
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platform
            if not self.reuse_port:
                raise RuntimeError(
                    "multi-worker serving needs fork or SO_REUSEPORT"
                ) from None
            context = multiprocessing.get_context("spawn")

        if self.reuse_port:
            # reserve the (possibly ephemeral) port without listening: a
            # bound non-listening socket takes no connections, but pins the
            # address so every worker can bind it with SO_REUSEPORT
            anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            anchor.bind((self.host, self.port))
            self._anchor = anchor
            self._address = anchor.getsockname()[:2]
            listen = self._address
        else:  # pragma: no cover - exercised only on platforms w/o REUSEPORT
            anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            anchor.bind((self.host, self.port))
            anchor.listen(1024)
            self._anchor = anchor
            self._address = anchor.getsockname()[:2]
            listen = anchor

        for _ in range(self.workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(self.path, dict(self._config), listen, child_conn),
                daemon=False,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._conns.append(parent_conn)

        deadline = time.monotonic() + _START_TIMEOUT
        for process, conn in zip(self._processes, self._conns):
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not conn.poll(remaining):
                self.shutdown()
                raise RuntimeError(f"worker {process.pid} never became ready")
            try:
                kind, pid, payload = conn.recv()
            except (EOFError, OSError):
                # the worker died before its handshake (unreadable store,
                # OOM kill, ...): tear down the siblings instead of leaving
                # a half-fleet holding the port
                self.shutdown()
                raise RuntimeError(
                    f"worker {process.pid} died before becoming ready"
                ) from None
            if kind != "ready":  # pragma: no cover - defensive
                self.shutdown()
                raise RuntimeError(f"unexpected worker handshake {kind!r}")
        return self._address

    def poll(self) -> bool:
        """``True`` while every worker is still alive."""
        return bool(self._processes) and all(
            process.is_alive() for process in self._processes
        )

    def wait(self, stop_check=None, interval: float = 0.2) -> None:
        """Block until a worker dies or ``stop_check()`` returns true.

        The CLI's foreground loop: ``stop_check`` is typically "has a
        SIGTERM/SIGINT arrived".  A worker dying unexpectedly ends the wait
        so the caller can tear the fleet down instead of serving degraded.
        """
        while self.poll():
            if stop_check is not None and stop_check():
                return
            time.sleep(interval)

    def shutdown(self) -> dict:
        """SIGTERM every worker, collect final stats, return the fleet summary.

        The summary is :func:`merge_fleet_stats` over the workers' final
        STATS payloads (``{}`` if none reported), with ``exit_codes`` added.
        """
        for process in self._processes:
            if process.is_alive() and process.pid:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except ProcessLookupError:  # pragma: no cover - exit race
                    pass
        deadline = time.monotonic() + _STOP_TIMEOUT
        stats: list[dict] = []
        for conn in self._conns:
            try:
                while conn.poll(max(0.0, deadline - time.monotonic())):
                    kind, pid, payload = conn.recv()
                    if kind == "stats":
                        stats.append(payload)
                        break
            except (EOFError, OSError):
                continue
        for process in self._processes:
            process.join(max(0.1, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(5)
        exit_codes = [process.exitcode for process in self._processes]
        for conn in self._conns:
            conn.close()
        if self._anchor is not None:
            self._anchor.close()
            self._anchor = None
        self._final_stats = stats
        self._processes = []
        self._conns = []
        summary = merge_fleet_stats(stats) if stats else {}
        summary["exit_codes"] = exit_codes
        return summary
