"""Clients for the :mod:`repro.serve` wire protocol.

Two flavours over one protocol:

:class:`LabelClient`
    blocking sockets, no event loop — scripts, REPLs and tests.  One
    connection is reused across calls; :meth:`LabelClient.pipeline` keeps a
    window of QUERY requests in flight so a single connection can saturate
    the server's micro-batching coalescer.

:class:`AsyncLabelClient`
    asyncio streams with a background reader task; any number of requests
    may be outstanding concurrently (responses are matched by request id,
    so coalesced servers may answer out of order).

Both return the same typed :class:`repro.api.QueryResult` values as the
in-process :class:`DistanceIndex` — the wire carries the result *kind* and
ratio bound, so exact, k-distance and approximate schemes round-trip with
their semantics intact.  Pass ``raw=True`` for the native values.

Backpressure: an overloaded server sheds QUERY/MATRIX requests with
``OP_BUSY`` instead of queueing them.  Both clients retry busy requests
transparently with exponential backoff and full jitter (so a fleet of
retrying clients does not resynchronise into thundering herds); the retry
budget is per-request (``busy_retries``) and exhausting it raises
:class:`ServerBusy`.  ``pipeline`` retries only the shed subset of its
window — answered requests are never re-sent.

Self-healing: against a supervised fleet, a dropped connection (worker
crash, rolling reload) is a *retryable* event, not an error.  Clients that
know their remote address reconnect with the same jittered backoff — the
kernel (or the supervisor's replacement worker) lands the new connection on
a live worker — and re-issue only the unanswered requests; queries are
read-only, so the re-send is always safe.  The budget is
``reconnect_retries`` consecutive failures per call, and the lifetime
``reconnects`` counter makes chaos tests' healing visible.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import time

from repro.api.result import QueryResult
from repro.serve import protocol
from repro.serve.retry import backoff_delay as _backoff_delay


class ServerError(RuntimeError):
    """An :data:`repro.serve.protocol.OP_ERROR` response from the server."""


class ServerBusy(ServerError):
    """An :data:`repro.serve.protocol.OP_BUSY` response: the request was
    shed by server backpressure and may be retried after a delay."""

    def __init__(self, retry_after_ms: int = 1) -> None:
        super().__init__(f"server busy; retry in ~{retry_after_ms}ms")
        self.retry_after_ms = retry_after_ms


class ServerMoved(ServerError):
    """An :data:`repro.serve.protocol.OP_MOVED` redirect hint.

    A routed request named a member the answering worker does not own; the
    hint carries the owning slot's direct endpoint and the authoritative
    routing-table version.  Routed clients apply the hint and re-issue the
    request (queries are read-only, so the re-send is always safe).
    """

    def __init__(self, version: int, member: str, host: str, port: int) -> None:
        super().__init__(
            f"member {member!r} is owned elsewhere: {host}:{port} "
            f"(routing table v{version})"
        )
        self.version = version
        self.member = member
        self.host = host
        self.port = port


_BEYOND = QueryResult(None, False, False, None)


def wrap_values(kind: int, ratio_bound: float | None, values: list) -> list:
    """Typed :class:`QueryResult` objects from one decoded value block."""
    if kind == protocol.KIND_EXACT:
        return [QueryResult(value, True, True, 1.0) for value in values]
    if kind == protocol.KIND_BOUNDED:
        return [
            _BEYOND if value is None else QueryResult(value, True, True, 1.0)
            for value in values
        ]
    return [QueryResult(value, False, True, ratio_bound) for value in values]


def _unwrap(payload, raw: bool) -> list:
    kind, ratio_bound, values = payload
    return values if raw else wrap_values(kind, ratio_bound, values)


def _reshape(flat: list, size: int) -> list[list]:
    """Row-major matrix rows from a flat MATRIX value block."""
    return [flat[row * size : (row + 1) * size] for row in range(size)]


async def _settle(future) -> None:
    """Wait for ``future`` without raising; outcomes are collected later."""
    try:
        await future
    except Exception:
        pass


class LabelClient:
    """Blocking client over one reused TCP connection."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 30.0,
        busy_retries: int = 8,
        busy_base_delay: float = 0.002,
        reconnect_retries: int = 8,
        route: bool = False,
        route_retries: int = 3,
    ) -> None:
        self._remote = (host, port)
        self._timeout = timeout
        self._sock = None
        self._decoder = protocol.FrameDecoder()
        self._ids = itertools.count(1)
        self._unclaimed: dict[int, tuple] = {}
        self.busy_retries = busy_retries
        self.busy_base_delay = busy_base_delay
        self.reconnect_retries = reconnect_retries
        #: lifetime count of BUSY responses this client retried
        self.busy_retried = 0
        #: lifetime count of connections re-established after a drop
        self.reconnects = 0
        #: member-aware routing (the ``routing`` feature): with ``route=True``
        #: the client fetches the fleet's routing table from INFO and pins
        #: per-member requests straight to the owning shard's direct port,
        #: applying ``MOVED`` redirect hints when its table goes stale and
        #: falling back to the shared address when routing cannot help
        self.route = route
        self.route_retries = route_retries
        self.route_redirects = 0  #: lifetime MOVED hints applied
        self._route_table: dict | None = None
        self._route_checked = False
        self._route_pool: dict[tuple[str, int], "LabelClient"] = {}
        self._route_overrides: dict[str, tuple[str, int]] = {}
        #: when set, QUERY/BATCH frames carry the route-version suffix — the
        #: marker that lets a sharded worker answer MOVED instead of serving
        #: a member it does not own (routed leaf connections set this)
        self._route_stamp: int | None = None
        #: trace ids this client stamped on requests (``pipeline`` sampling
        #: and explicit ``trace_id=`` calls); random base so ids from many
        #: clients against one fleet don't collide
        self._trace_ids = itertools.count(random.getrandbits(48))
        self.traced_ids: list[int] = []
        self._connect()

    def next_trace_id(self) -> int:
        """A fresh client-unique trace id (also remembered in ``traced_ids``)."""
        trace_id = next(self._trace_ids)
        self.traced_ids.append(trace_id)
        return trace_id

    def _connect(self) -> None:
        self._sock = socket.create_connection(self._remote, timeout=self._timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # a dropped connection invalidates everything in flight on it
        self._decoder = protocol.FrameDecoder()
        self._unclaimed.clear()

    def _reconnect(self, drops: int) -> None:
        """Re-establish the connection after drop number ``drops``.

        Retries connection *refusals* too (against a one-worker fleet there
        is a window where the replacement has not bound yet); the budget is
        the caller's, this only spends backoff time.
        """
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._sock = None
        attempt = drops
        while True:
            time.sleep(_backoff_delay(attempt, 1, self.busy_base_delay))
            try:
                self._connect()
            except OSError:
                attempt += 1
                if attempt - drops > self.reconnect_retries:
                    raise
                continue
            self.reconnects += 1
            return

    # -- context management --------------------------------------------------

    def __enter__(self) -> "LabelClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Close the connection and any routed leaf connections (idempotent)."""
        pool, self._route_pool = self._route_pool, {}
        for leaf in pool.values():
            leaf.close()
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    # -- member-aware routing --------------------------------------------------

    def _ensure_routing(self) -> None:
        """Fetch the fleet's routing table once (no table ⇒ shared address)."""
        if self._route_checked:
            return
        self._route_checked = True
        try:
            self._route_table = self.info().get("routing")
        except ServerError:  # pragma: no cover - defensive
            self._route_table = None
        if self._route_table is not None:
            self._route_stamp = int(self._route_table.get("version", 0))

    def routing_table(self) -> dict | None:
        """The routing table this client is working from (fetched lazily)."""
        self._ensure_routing()
        return self._route_table

    def _make_leaf(self, host: str, port: int) -> "LabelClient":
        leaf = LabelClient(
            host,
            port,
            timeout=self._timeout,
            busy_retries=self.busy_retries,
            busy_base_delay=self.busy_base_delay,
            reconnect_retries=self.reconnect_retries,
        )
        return leaf

    def _leaf_for(self, name: str) -> "LabelClient | None":
        """The pooled connection pinned to ``name``'s owning shard."""
        from repro.serve.routing import member_endpoint

        endpoint = self._route_overrides.get(name)
        if endpoint is None and self._route_table is not None:
            endpoint = member_endpoint(self._route_table, name)
        if endpoint is None:
            return None
        leaf = self._route_pool.get(endpoint)
        if leaf is None:
            leaf = self._route_pool[endpoint] = self._make_leaf(*endpoint)
        leaf._route_stamp = self._route_stamp
        return leaf

    def _apply_moved(self, moved: ServerMoved) -> None:
        """Adopt a MOVED hint: pin the member, advance the table version."""
        self.route_redirects += 1
        self._route_overrides[moved.member] = (moved.host, moved.port)
        if self._route_stamp is None or moved.version > self._route_stamp:
            self._route_stamp = moved.version

    def _routed_call(self, name: str, call):
        """Run ``call(client)`` against ``name``'s owner, following redirects.

        Falls back to the shared address — with an *unstamped* leaf, which a
        sharded worker always serves in place — when there is no table, no
        owner endpoint, or the redirect budget is spent (a pathological
        routing loop must degrade to the legacy path, not fail).
        """
        self._ensure_routing()
        redirects = 0
        while redirects <= self.route_retries:
            leaf = self._leaf_for(name)
            if leaf is None:
                break
            try:
                return call(leaf)
            except ServerMoved as moved:
                self._apply_moved(moved)
                redirects += 1
        fallback = self._route_pool.get(self._remote)
        if fallback is None:
            fallback = self._route_pool[self._remote] = self._make_leaf(*self._remote)
        fallback._route_stamp = None
        return call(fallback)

    # -- plumbing ------------------------------------------------------------

    def _receive(self, request_id: int):
        """The response for ``request_id`` (buffering any others seen first)."""
        while True:
            claimed = self._unclaimed.pop(request_id, None)
            if claimed is not None:
                op, payload = claimed
                if op == protocol.OP_BUSY:
                    raise ServerBusy(payload)
                if op == protocol.OP_ERROR:
                    raise ServerError(payload)
                if op == protocol.OP_MOVED:
                    raise ServerMoved(*payload)
                return op, payload
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._decoder.feed(chunk)
            for body in self._decoder.frames():
                op, seen_id, payload = protocol.decode_response(body)
                self._unclaimed[seen_id] = (op, payload)

    def _roundtrip(self, frame_for_id):
        """Send one request, retrying with backoff while the server is busy.

        ``frame_for_id`` builds the frame from a request id — every retry
        uses a fresh id so a late answer to a shed request can never be
        confused with the retry's answer.  A dropped connection (worker
        crash, rolling reload) is reconnected and the request re-sent.
        """
        attempt = 0
        drops = 0
        while True:
            request_id = next(self._ids)
            try:
                self._sock.sendall(frame_for_id(request_id))
                return self._receive(request_id)
            except ServerBusy as busy:
                attempt += 1
                if attempt > self.busy_retries:
                    raise
                self.busy_retried += 1
                time.sleep(
                    _backoff_delay(attempt, busy.retry_after_ms, self.busy_base_delay)
                )
            except (ConnectionError, OSError):
                if self._sock is None:  # deliberately closed, not a drop
                    raise
                drops += 1
                if drops > self.reconnect_retries:
                    raise
                self._reconnect(drops)

    # -- requests ------------------------------------------------------------

    def query(
        self, u: int, v: int, *, name: str = "", raw: bool = False,
        trace_id: int | None = None,
    ):
        """One distance query; a :class:`QueryResult` unless ``raw``.

        ``trace_id`` stamps the request with the additive trace field: the
        server records per-stage spans for it, retrievable via
        :meth:`trace`.  Old servers ignore the field.
        """
        if self.route:
            return self._routed_call(
                name, lambda c: c.query(u, v, name=name, raw=raw, trace_id=trace_id)
            )
        _, payload = self._roundtrip(
            lambda request_id: protocol.encode_query(
                request_id, u, v, name,
                trace_id=trace_id, route_version=self._route_stamp,
            )
        )
        return _unwrap(payload, raw)[0]

    def batch(
        self, pairs, *, name: str = "", raw: bool = False,
        trace_id: int | None = None,
    ) -> list:
        """Answer many pairs with a single BATCH request."""
        pairs = list(pairs)
        if self.route:
            return self._routed_call(
                name, lambda c: c.batch(pairs, name=name, raw=raw, trace_id=trace_id)
            )
        _, payload = self._roundtrip(
            lambda request_id: protocol.encode_batch(
                request_id, pairs, name,
                trace_id=trace_id, route_version=self._route_stamp,
            )
        )
        return _unwrap(payload, raw)

    def matrix(self, nodes=None, *, name: str = "", raw: bool = False) -> list[list]:
        """All pairwise answers over ``nodes`` (default: every node)."""
        if self.route:
            return self._routed_call(
                name, lambda c: c.matrix(nodes, name=name, raw=raw)
            )
        if nodes is not None:
            nodes = list(nodes)
            size = len(nodes)
        else:
            size = self.info()["members"][name]["n"]
        _, payload = self._roundtrip(
            lambda request_id: protocol.encode_matrix(request_id, nodes, name)
        )
        return _reshape(_unwrap(payload, raw), size)

    def stats(
        self, name: str = "", *, detail: bool = False, reservoir: bool = False
    ) -> dict:
        """Server statistics (plus one member's cache stats when named).

        ``detail=True`` asks for the latency/per-stage histogram snapshots
        (and the raw reservoir) that fleet merging needs; plain polls should
        leave it off.  ``reservoir=True`` is the historical alias for the
        same detail flag.
        """
        _, payload = self._roundtrip(
            lambda request_id: protocol.encode_stats(
                request_id, name, reservoir=detail or reservoir
            )
        )
        return payload

    def stats_all(self, *, detail: bool = False) -> list[dict]:
        """STATS from this connection plus every routed leaf connection.

        Fleet-merging consumers (``loadgen``) feed the list straight to
        :func:`repro.serve.metrics.merge_fleet_stats`, which dedupes rows by
        ``(slot, pid)`` — the direct connections a routed client holds are
        how it observes the specific workers it actually queried.
        """
        payloads = [self.stats(detail=detail)]
        for leaf in list(self._route_pool.values()):
            try:
                payloads.append(leaf.stats(detail=detail))
            except (ServerError, ConnectionError, OSError):
                continue
        return payloads

    def trace(self, *, limit: int = 32, slow: bool = True) -> dict:
        """The worker's recent-trace ring and slow-query log (OP_TRACE)."""
        _, payload = self._roundtrip(
            lambda request_id: protocol.encode_trace_request(
                request_id, limit=limit, slow=slow
            )
        )
        return payload

    def info(self) -> dict:
        """Member listing: ``{"members": {name: {spec, kind, n, open}}}``."""
        _, payload = self._roundtrip(protocol.encode_info)
        return payload

    def pipeline(
        self,
        pairs,
        *,
        name: str = "",
        raw: bool = False,
        window: int = 256,
        trace_every: int = 0,
    ) -> list:
        """Issue one QUERY per pair, keeping up to ``window`` in flight.

        This is the traffic shape the server's coalescer is built for: many
        independent single-pair requests on the wire at once.  Answers come
        back in ``pairs`` order regardless of the server's completion order.
        Requests shed with BUSY are re-issued (only those) in later rounds
        with jittered backoff.

        ``trace_every=N`` stamps every Nth request of the first pass with a
        fresh trace id (collected in ``traced_ids``); the per-stage spans
        can be fetched afterwards with :meth:`trace`.  Re-issued requests
        (BUSY/reconnect rounds) are never traced.
        """
        pairs = list(pairs)
        if self.route:
            # the whole window goes to one member's owner; on a stale-table
            # MOVED the full (read-only) window is re-asked at the corrected
            # endpoint — at most one redirect per member per staleness event
            return self._routed_call(
                name,
                lambda c: c.pipeline(
                    pairs, name=name, raw=raw, window=window, trace_every=trace_every
                ),
            )
        if window < 1:
            raise ValueError("window must be at least 1")
        outcomes: list = [None] * len(pairs)
        todo = list(range(len(pairs)))
        attempt = 0
        drops = 0
        while todo:
            sample, trace_every = trace_every, 0  # first pass only
            try:
                round_outcomes = self._pipeline_pass(
                    [pairs[i] for i in todo], name, window, trace_every=sample
                )
            except (ConnectionError, OSError):
                # dropped mid-pass (worker crash / rolling reload): reconnect
                # and re-issue the unanswered rest — queries are read-only,
                # so a request answered just before the drop is safe to lose
                if self._sock is None:
                    raise
                drops += 1
                if drops > self.reconnect_retries:
                    raise
                self._reconnect(drops)
                continue
            drops = 0
            busy: list[int] = []
            for slot, (op, payload) in zip(todo, round_outcomes):
                if op == protocol.OP_BUSY:
                    busy.append(slot)
                elif op == protocol.OP_ERROR:
                    raise ServerError(payload)
                elif op == protocol.OP_MOVED:
                    # stale routing table: the caller (a routed parent)
                    # re-runs the window against the corrected endpoint
                    raise ServerMoved(*payload)
                else:
                    outcomes[slot] = payload
            if busy:
                # the retry budget counts *no-progress* rounds: an
                # overloaded-but-live server answers a few requests per
                # round and the pipeline keeps converging, while a server
                # shedding everything exhausts the budget and raises
                attempt = attempt + 1 if len(busy) == len(todo) else 0
                if attempt > self.busy_retries:
                    raise ServerBusy()
                self.busy_retried += len(busy)
                time.sleep(_backoff_delay(attempt, 1, self.busy_base_delay))
            todo = busy
        return [_unwrap(payload, raw)[0] for payload in outcomes]

    def _pipeline_pass(
        self, pairs: list, name: str, window: int, trace_every: int = 0
    ) -> list[tuple]:
        """One windowed pass over ``pairs``; returns ``(op, payload)`` each."""
        ids = [next(self._ids) for _ in pairs]
        results: dict[int, tuple] = {}
        sent = 0
        backlog = bytearray()
        for index, (u, v) in enumerate(pairs):
            trace_id = (
                self.next_trace_id()
                if trace_every and index % trace_every == 0
                else None
            )
            backlog += protocol.encode_query(
                ids[index], u, v, name,
                trace_id=trace_id, route_version=self._route_stamp,
            )
            sent += 1
            if sent - len(results) >= window or len(backlog) >= 65536:
                self._sock.sendall(backlog)
                backlog = bytearray()
                while sent - len(results) >= window:
                    self._drain_into(results)
        if backlog:
            self._sock.sendall(backlog)
        while len(results) < len(pairs):
            self._drain_into(results)
        return [results[request_id] for request_id in ids]

    def _drain_into(self, results: dict[int, tuple]) -> None:
        chunk = self._sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection")
        self._decoder.feed(chunk)
        for body in self._decoder.frames():
            op, request_id, payload = protocol.decode_response(body)
            results[request_id] = (op, payload)


class AsyncLabelClient:
    """Asyncio client; responses are matched to requests by id."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        busy_retries: int = 8,
        busy_base_delay: float = 0.002,
        reconnect_retries: int = 8,
        route: bool = False,
        route_retries: int = 3,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = protocol.FrameDecoder()
        self._ids = itertools.count(1)
        self._waiting: dict[int, asyncio.Future] = {}
        self._broken: Exception | None = None
        #: remote address; set by :meth:`connect`.  Clients built from raw
        #: streams don't know it and keep the old fail-fast behaviour.
        self._remote: tuple[str, int] | None = None
        self._closed = False
        self.busy_retries = busy_retries
        self.busy_base_delay = busy_base_delay
        self.reconnect_retries = reconnect_retries
        #: member-aware routing (see :class:`LabelClient`): per-member
        #: direct connections, MOVED hint handling, shared-address fallback
        self.route = route
        self.route_retries = route_retries
        self.route_redirects = 0
        self._route_table: dict | None = None
        self._route_checked = False
        self._route_pool: dict[tuple[str, int], "AsyncLabelClient"] = {}
        self._route_overrides: dict[str, tuple[str, int]] = {}
        self._route_stamp: int | None = None
        self._route_fetch: asyncio.Future | None = None
        #: lifetime count of BUSY responses this client retried
        self.busy_retried = 0
        #: lifetime count of connections re-established after a drop
        self.reconnects = 0
        #: trace ids this client stamped on requests (see ``next_trace_id``)
        self._trace_ids = itertools.count(random.getrandbits(48))
        self.traced_ids: list[int] = []
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    def next_trace_id(self) -> int:
        """A fresh client-unique trace id (also remembered in ``traced_ids``)."""
        trace_id = next(self._trace_ids)
        self.traced_ids.append(trace_id)
        return trace_id

    @staticmethod
    async def _open(host: str, port: int):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.get_extra_info("socket").setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        except (OSError, AttributeError):  # pragma: no cover - platform quirk
            pass
        return reader, writer

    @classmethod
    async def connect(cls, host: str, port: int, **kwargs) -> "AsyncLabelClient":
        """Open a connection and start the response reader.

        Clients opened this way remember the address and transparently
        reconnect when the connection drops (worker crash, rolling reload).
        """
        reader, writer = await cls._open(host, port)
        client = cls(reader, writer, **kwargs)
        client._remote = (host, port)
        return client

    async def _reconnect(self, drops: int) -> None:
        """Replace the dropped connection (retrying refusals with backoff)."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - already dead
            pass
        attempt = drops
        while True:
            await asyncio.sleep(_backoff_delay(attempt, 1, self.busy_base_delay))
            try:
                self._reader, self._writer = await self._open(*self._remote)
            except OSError:
                attempt += 1
                if attempt - drops > self.reconnect_retries:
                    raise
                continue
            break
        # in-flight futures were already failed by the dying read loop;
        # anything still registered belongs to the dead connection
        for future in self._waiting.values():
            if not future.done():  # pragma: no cover - defensive
                future.set_exception(ConnectionError("connection was replaced"))
        self._waiting.clear()
        self._decoder = protocol.FrameDecoder()
        self._broken = None
        self.reconnects += 1
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    async def close(self) -> None:
        """Cancel the reader task and close the connection (pool included)."""
        self._closed = True
        pool, self._route_pool = self._route_pool, {}
        for leaf in pool.values():
            await leaf.close()
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass

    async def __aenter__(self) -> "AsyncLabelClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- plumbing ------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                chunk = await self._reader.read(65536)
                if not chunk:
                    raise ConnectionError("server closed the connection")
                self._decoder.feed(chunk)
                for body in self._decoder.frames():
                    op, request_id, payload = protocol.decode_response(body)
                    future = self._waiting.pop(request_id, None)
                    if future is not None and not future.done():
                        if op == protocol.OP_BUSY:
                            future.set_exception(ServerBusy(payload))
                        elif op == protocol.OP_ERROR:
                            future.set_exception(ServerError(payload))
                        elif op == protocol.OP_MOVED:
                            future.set_exception(ServerMoved(*payload))
                        else:
                            future.set_result((op, payload))
        except asyncio.CancelledError:
            raise
        except Exception as error:  # propagate to every waiter, then stop
            self._broken = error
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(error)
            self._waiting.clear()

    def _check_open(self) -> None:
        """Fail fast when the reader is gone: nothing would ever resolve a
        future registered after that point."""
        if self._reader_task.done():
            raise self._broken or ConnectionError("client connection is closed")

    def _send(self, frame_for_id) -> asyncio.Future:
        """Register a fresh request id, send its frame, return the future."""
        self._check_open()
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._waiting[request_id] = future
        self._writer.write(frame_for_id(request_id))
        return future

    async def _request(self, frame_for_id):
        """One request with BUSY retry: fresh id and frame per attempt.

        For address-aware clients (built via :meth:`connect`) a dropped
        connection is retried too — reconnect, fresh id, re-send.
        """
        attempt = 0
        drops = 0
        while True:
            try:
                return await self._send(frame_for_id)
            except ServerBusy as busy:
                attempt += 1
                if attempt > self.busy_retries:
                    raise
                self.busy_retried += 1
                await asyncio.sleep(
                    _backoff_delay(attempt, busy.retry_after_ms, self.busy_base_delay)
                )
            except (ConnectionError, OSError):
                if self._remote is None or self._closed:
                    raise
                drops += 1
                if drops > self.reconnect_retries:
                    raise
                await self._reconnect(drops)

    # -- member-aware routing --------------------------------------------------

    async def _ensure_routing(self) -> None:
        """Fetch the fleet's routing table once (no table ⇒ shared address).

        Concurrent callers (``asyncio.gather`` of routed requests) await the
        in-flight fetch instead of falling back unrouted — otherwise every
        gather but the first would miss the table and go unstamped through
        the shared address.
        """
        if self._route_checked:
            if self._route_fetch is not None:
                await asyncio.shield(self._route_fetch)
            return
        self._route_checked = True
        fetch = self._route_fetch = asyncio.get_running_loop().create_future()
        try:
            try:
                self._route_table = (await self.info()).get("routing")
            except ServerError:  # pragma: no cover - defensive
                self._route_table = None
            if self._route_table is not None:
                self._route_stamp = int(self._route_table.get("version", 0))
        finally:
            self._route_fetch = None
            fetch.set_result(None)

    async def routing_table(self) -> dict | None:
        """The routing table this client is working from (fetched lazily)."""
        await self._ensure_routing()
        return self._route_table

    async def _make_leaf(self, host: str, port: int) -> "AsyncLabelClient":
        return await AsyncLabelClient.connect(
            host,
            port,
            busy_retries=self.busy_retries,
            busy_base_delay=self.busy_base_delay,
            reconnect_retries=self.reconnect_retries,
        )

    async def _leaf_for(self, name: str) -> "AsyncLabelClient | None":
        """The pooled connection pinned to ``name``'s owning shard."""
        from repro.serve.routing import member_endpoint

        endpoint = self._route_overrides.get(name)
        if endpoint is None and self._route_table is not None:
            endpoint = member_endpoint(self._route_table, name)
        if endpoint is None:
            return None
        leaf = self._route_pool.get(endpoint)
        if leaf is None:
            leaf = self._route_pool[endpoint] = await self._make_leaf(*endpoint)
        leaf._route_stamp = self._route_stamp
        return leaf

    def _apply_moved(self, moved: ServerMoved) -> None:
        """Adopt a MOVED hint: pin the member, advance the table version."""
        self.route_redirects += 1
        self._route_overrides[moved.member] = (moved.host, moved.port)
        if self._route_stamp is None or moved.version > self._route_stamp:
            self._route_stamp = moved.version

    async def _routed_call(self, name: str, call):
        """Run ``await call(client)`` against ``name``'s owner (see
        :meth:`LabelClient._routed_call` for the redirect/fallback contract)."""
        await self._ensure_routing()
        redirects = 0
        while redirects <= self.route_retries:
            leaf = await self._leaf_for(name)
            if leaf is None:
                break
            try:
                return await call(leaf)
            except ServerMoved as moved:
                self._apply_moved(moved)
                redirects += 1
        if self._remote is None:
            raise ConnectionError(
                "routed requests need an address-aware client (use connect())"
            )
        fallback = self._route_pool.get(self._remote)
        if fallback is None:
            fallback = self._route_pool[self._remote] = await self._make_leaf(
                *self._remote
            )
        fallback._route_stamp = None
        return await call(fallback)

    # -- requests ------------------------------------------------------------

    async def query(
        self, u: int, v: int, *, name: str = "", raw: bool = False,
        trace_id: int | None = None,
    ):
        """One distance query; a :class:`QueryResult` unless ``raw``.

        ``trace_id`` stamps the request with the additive trace field (see
        :meth:`trace`); old servers ignore it.
        """
        if self.route:
            return await self._routed_call(
                name, lambda c: c.query(u, v, name=name, raw=raw, trace_id=trace_id)
            )
        _, payload = await self._request(
            lambda request_id: protocol.encode_query(
                request_id, u, v, name, trace_id=trace_id,
                route_version=self._route_stamp,
            )
        )
        return _unwrap(payload, raw)[0]

    async def batch(
        self, pairs, *, name: str = "", raw: bool = False,
        trace_id: int | None = None,
    ) -> list:
        """Answer many pairs with a single BATCH request."""
        pairs = list(pairs)
        if self.route:
            return await self._routed_call(
                name,
                lambda c: c.batch(pairs, name=name, raw=raw, trace_id=trace_id),
            )
        _, payload = await self._request(
            lambda request_id: protocol.encode_batch(
                request_id, pairs, name, trace_id=trace_id,
                route_version=self._route_stamp,
            )
        )
        return _unwrap(payload, raw)

    async def matrix(self, nodes=None, *, name: str = "", raw: bool = False) -> list[list]:
        """All pairwise answers over ``nodes`` (default: every node)."""
        if self.route:
            return await self._routed_call(
                name, lambda c: c.matrix(nodes, name=name, raw=raw)
            )
        if nodes is not None:
            nodes = list(nodes)
            size = len(nodes)
        else:
            size = (await self.info())["members"][name]["n"]
        _, payload = await self._request(
            lambda request_id: protocol.encode_matrix(request_id, nodes, name)
        )
        return _reshape(_unwrap(payload, raw), size)

    async def stats(
        self, name: str = "", *, detail: bool = False, reservoir: bool = False
    ) -> dict:
        """Server statistics (plus one member's cache stats when named).

        ``detail=True`` asks for the latency/per-stage histogram snapshots
        (and the raw reservoir) that fleet merging needs; ``reservoir=True``
        is the historical alias for the same detail flag.
        """
        _, payload = await self._request(
            lambda request_id: protocol.encode_stats(
                request_id, name, reservoir=detail or reservoir
            )
        )
        return payload

    async def stats_all(self, *, detail: bool = False) -> list[dict]:
        """STATS from this connection plus every pooled routed connection.

        Routed clients spread work over per-shard connections; a single
        :meth:`stats` only reflects whichever worker this socket landed on.
        """
        rows = [await self.stats(detail=detail)]
        for leaf in list(self._route_pool.values()):
            try:
                rows.append(await leaf.stats(detail=detail))
            except (ServerError, ConnectionError, OSError):
                continue
        return rows

    async def trace(self, *, limit: int = 32, slow: bool = True) -> dict:
        """The worker's recent-trace ring and slow-query log (OP_TRACE)."""
        _, payload = await self._request(
            lambda request_id: protocol.encode_trace_request(
                request_id, limit=limit, slow=slow
            )
        )
        return payload

    async def info(self) -> dict:
        """Member listing: ``{"members": {name: {spec, kind, n, open}}}``."""
        _, payload = await self._request(protocol.encode_info)
        return payload

    async def pipeline(
        self,
        pairs,
        *,
        name: str = "",
        raw: bool = False,
        window: int = 256,
        trace_every: int = 0,
    ) -> list:
        """Issue one QUERY per pair with up to ``window`` in flight.

        This is the client half of the server's micro-batching story, so it
        is deliberately allocation-light: one future per request (no task),
        request frames concatenated into few ``write`` calls, and the window
        enforced by awaiting the oldest outstanding response.  Answers come
        back in ``pairs`` order regardless of the server's completion order.
        Requests shed with BUSY are re-issued (only those) in later rounds
        with jittered backoff.

        ``trace_every=N`` stamps every Nth request of the first pass with a
        fresh trace id (collected in ``traced_ids``); re-issued requests
        are never traced.
        """
        pairs = list(pairs)
        if window < 1:
            raise ValueError("window must be at least 1")
        if self.route:
            # the whole (read-only) run re-executes on the corrected
            # connection after a MOVED, so each member costs at most one
            # redirect (see LabelClient.pipeline)
            return await self._routed_call(
                name,
                lambda c: c.pipeline(
                    pairs, name=name, raw=raw, window=window,
                    trace_every=trace_every,
                ),
            )
        outcomes: list = [None] * len(pairs)
        todo = list(range(len(pairs)))
        attempt = 0
        drops = 0
        reconnectable = self._remote is not None
        while todo:
            sample, trace_every = trace_every, 0  # first pass only
            try:
                futures = await self._pipeline_pass(
                    [pairs[i] for i in todo], name, window, trace_every=sample
                )
            except (ConnectionError, OSError) as error:
                if not reconnectable or self._closed:
                    raise
                drops += 1
                if drops > self.reconnect_retries:
                    raise error
                await self._reconnect(drops)
                continue
            busy: list[int] = []
            dropped: list[int] = []
            drop_error = None
            failure = None
            for slot, future in zip(todo, futures):
                # retrieve every outcome before raising, so no failed future
                # is left with a never-retrieved exception
                error = future.exception()
                if error is None:
                    _, payload = future.result()
                    outcomes[slot] = payload
                elif isinstance(error, ServerBusy):
                    busy.append(slot)
                elif isinstance(error, (ConnectionError, OSError)) and (
                    reconnectable and not self._closed
                ):
                    # the connection died under this request (worker crash,
                    # rolling reload) — unanswered, so safe to re-issue
                    dropped.append(slot)
                    drop_error = drop_error or error
                elif failure is None:
                    failure = error
            if failure is not None:
                raise failure
            if dropped:
                drops += 1
                if drops > self.reconnect_retries:
                    raise drop_error
                await self._reconnect(drops)
            else:
                drops = 0
            if busy:
                # no-progress rounds spend the retry budget; rounds that
                # answered anything reset it (see LabelClient.pipeline)
                attempt = attempt + 1 if len(busy) + len(dropped) == len(todo) else 0
                if attempt > self.busy_retries:
                    raise ServerBusy()
                self.busy_retried += len(busy)
                await asyncio.sleep(_backoff_delay(attempt, 1, self.busy_base_delay))
            todo = sorted(busy + dropped)
        return [_unwrap(payload, raw)[0] for payload in outcomes]

    async def _pipeline_pass(
        self, pairs: list, name: str, window: int, trace_every: int = 0
    ) -> list:
        """One windowed pass over ``pairs``; returns the settled futures."""
        self._check_open()
        loop = asyncio.get_running_loop()
        waiting = self._waiting
        ids = self._ids
        write = self._writer.write
        # inline the QUERY frame construction: the opcode and name bytes are
        # loop constants, so each frame is four uvarints and two joins
        from repro.encoding.varint import encode_uvarint as uvarint

        prefix = bytes([protocol.OP_QUERY])
        encoded_name = uvarint(len(name.encode("utf-8"))) + name.encode("utf-8")
        route_suffix = (
            b"\x02" + uvarint(self._route_stamp)
            if self._route_stamp is not None
            else b""
        )
        create_future = loop.create_future
        futures: list[asyncio.Future] = []
        backlog = bytearray()
        head = 0  # oldest future not yet awaited
        for index, (u, v) in enumerate(pairs):
            if self._reader_task.done():
                # the reader died mid-pass and already failed everything it
                # knew about; registering more futures would leave them
                # unresolved forever — fail them at birth instead
                future = create_future()
                future.set_exception(
                    self._broken or ConnectionError("client connection is closed")
                )
                futures.append(future)
                continue
            request_id = next(ids)
            future = create_future()
            waiting[request_id] = future
            futures.append(future)
            body = (
                prefix + uvarint(request_id) + encoded_name + uvarint(u) + uvarint(v)
            )
            if trace_every and index % trace_every == 0:
                # the additive trace suffix; sampled requests are rare, so
                # the two extra concatenations stay off the common path
                body += b"\x01" + uvarint(self.next_trace_id())
            body += route_suffix
            backlog += uvarint(len(body))
            backlog += body
            if len(backlog) >= 32768:
                write(bytes(backlog))
                backlog.clear()
            if index + 1 - head >= window:
                if backlog:
                    write(bytes(backlog))
                    backlog.clear()
                # drain half the window at once: awaiting one future at a
                # time would degrade to one tiny write per query in steady
                # state, defeating both ends' batching
                release = head + max(1, window // 2)
                while head < release:
                    await _settle(futures[head])
                    head += 1
        if backlog:
            write(bytes(backlog))
        for future in futures[head:]:
            await _settle(future)
        return futures
