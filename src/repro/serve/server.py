"""The per-process serving engine and its asyncio TCP wrapper.

Two layers, split so the shard-per-core supervisor can reuse the whole
request path in every worker process:

:class:`ServingCore`
    the socket-free serving engine — member resolution, the micro-batching
    coalescer, bounded-pending backpressure, MATRIX executor offload, the
    hot-pair response cache wiring and all statistics.  It needs a running
    event loop but owns no listening socket.

:class:`LabelServer`
    a ``ServingCore`` plus asyncio TCP lifecycle: bind (fresh address,
    ``SO_REUSEPORT`` shared address, or an inherited socket), serve, stop.
    Single-process callers use it exactly as before;
    :mod:`repro.serve.supervisor` runs one per forked worker.

The core's defining feature is the **micro-batching coalescer**: QUERY
requests are not answered one at a time.  Each one is appended to a
per-member pending list and the flush is scheduled with ``loop.call_soon``,
which runs *after* every ``data_received`` callback of the current event-loop
tick — so all queries that arrived in this tick, across every connection,
are answered by **one** :meth:`QueryEngine.batch_query` call per member.
That call parses each distinct endpoint once (warming the engine's parsed-
label LRU for every future tick) and the responses are written back with one
``transport.write`` per connection instead of one per request.  Under a
pipelined client the serving cost per query drops to an append, a shared
batch slot and a shared write.

Three overload/latency features ride on the same structure:

* **backpressure** — the pending-query queue is bounded (``max_pending``);
  beyond it, new QUERY requests are shed immediately with an ``OP_BUSY``
  response instead of growing the queue, and the clients retry with jitter;
* **MATRIX offload** — matrix requests run on a thread executor through
  :meth:`QueryEngine.matrix_into`, so an n²/2-query matrix no longer stalls
  the coalescer tick (concurrent offloads are capped; excess gets BUSY);
* **hot-pair response cache** — with ``pair_cache > 0`` every member's
  engine keeps an LRU of ``(min(u, v), max(u, v)) -> answer``, so repeated
  hot pairs skip the label layer entirely; hit rates surface in STATS.

``coalesce=False`` keeps the identical code path but flushes after every
request (a batch of one) — the naive serving baseline that
``benchmarks/bench_serve_throughput.py`` measures the coalescer against.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque

from repro import kernels
from repro.api.catalog import CatalogError, IndexCatalog
from repro.api.index import DistanceIndex
from repro.obs.hist import Histogram
from repro.obs.trace import STAGES, Span, Trace, TraceRecorder
from repro.scale.memory import current_rss_bytes
from repro.serve import faults, protocol
from repro.serve.routing import member_endpoint, table_owners
from repro.store.label_store import StoreError

#: latency samples kept in the raw reservoir embedded in detailed STATS
#: (kept for wire compatibility and spot debugging; percentiles and fleet
#: merges come from the fixed-boundary histograms, which never truncate)
_LATENCY_WINDOW = 4096


class _Member:
    """One servable index plus the constants its responses need."""

    __slots__ = ("name", "index", "kind_code", "ratio_bound", "pending")

    def __init__(self, name: str, index: DistanceIndex) -> None:
        self.name = name
        self.index = index
        self.kind_code = protocol.KIND_CODES[index.kind]
        self.ratio_bound = (
            1.0 + index.scheme.epsilon
            if index.kind == "approximate"
            else (1.0 if index.kind == "exact" else None)
        )
        #: coalescer queue: (connection, request_id, u, v, enqueued_at, trace)
        #: where ``trace`` is ``(trace_id, arrived, decoded)`` for requests
        #: carrying the additive trace-id field and ``None`` otherwise
        self.pending: list[tuple] = []


class ServingCore:
    """The per-process serving engine (socket-free).

    ``target`` is a :class:`DistanceIndex` (served under the empty member
    name) or an :class:`IndexCatalog` (members addressed by name; closed
    members open lazily on first query, exactly as in-process).
    """

    def __init__(
        self,
        target: DistanceIndex | IndexCatalog,
        *,
        coalesce: bool = True,
        max_batch: int = 8192,
        max_matrix: int = 1024,
        max_pending: int = 65536,
        max_matrix_inflight: int = 2,
        pair_cache: int = 0,
        slot: int = 0,
        restarts: int = 0,
        generation: dict | None = None,
        slow_ms: float | None = None,
        trace_ring: int = 256,
        assigned_members=None,
        routing_table: dict | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_matrix < 1:
            raise ValueError("max_matrix must be at least 1")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if max_matrix_inflight < 1:
            raise ValueError("max_matrix_inflight must be at least 1")
        if pair_cache < 0:
            raise ValueError("pair_cache must be non-negative")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError("slow_ms must be non-negative")
        if trace_ring < 1:
            raise ValueError("trace_ring must be at least 1")
        self._catalog: IndexCatalog | None = None
        self._members: dict[str, _Member] = {}
        self.pair_cache = pair_cache
        if isinstance(target, IndexCatalog):
            self._catalog = target
        elif isinstance(target, DistanceIndex):
            self._members[""] = _Member("", target)
            if pair_cache:
                target.engine.enable_pair_cache(pair_cache)
        else:
            raise TypeError(
                f"target must be a DistanceIndex or IndexCatalog, got {type(target).__name__}"
            )
        self.coalesce = coalesce
        self.max_batch = max_batch
        #: MATRIX responses are bounded in size even though they run off the
        #: event loop: an n-node matrix costs n^2/2 queries of executor time
        #: and one O(n^2) response frame
        self.max_matrix = max_matrix
        #: total QUERYs allowed in the coalescer across all members; beyond
        #: this the server sheds load with BUSY instead of queueing
        self.max_pending = max_pending
        self.max_matrix_inflight = max_matrix_inflight
        self._flush_scheduled = False
        self._dirty: list[_Member] = []
        self._matrix_inflight = 0
        #: supervision metadata: which fleet slot this worker occupies, how
        #: many times that slot has been restarted, and the generation
        #: (content hash + path) of the served store file — all reported in
        #: STATS/INFO so clients can observe restarts and rolling reloads
        self.slot = slot
        self.restarts = restarts
        self.generation = generation
        self._faults = faults.plan_for(slot)
        #: open _Connection objects, so a draining worker can close them
        self._connections: set = set()
        #: member placement (the ``routing`` feature): the member names this
        #: worker owns and the fleet's current routing table.  ``None`` for
        #: both means the worker is unsharded and serves everything.
        self._routing: dict | None = None
        self._assigned: set[str] | None = (
            set(assigned_members) if assigned_members is not None else None
        )
        self.misroutes = 0  #: non-owned requests served in place (legacy path)
        self.moved_redirects = 0  #: OP_MOVED hints sent to routed clients
        if routing_table is not None:
            if assigned_members is None:
                self.set_routing(routing_table)  # derive ownership from slot
            else:
                self._routing = routing_table

        # -- serving statistics ------------------------------------------
        self.started_at = time.monotonic()
        self.queries = 0  #: individual QUERY answers sent
        self.batch_requests = 0  #: OP_BATCH requests served
        self.batch_request_pairs = 0
        self.matrix_requests = 0
        self.matrix_offloaded = 0  #: MATRIX requests run on the executor
        self.flushes = 0  #: coalescer batch_query calls
        self.coalesced = 0  #: QUERY answers produced by those calls
        self.errors = 0
        self.busy_rejections = 0  #: requests shed with OP_BUSY
        self.pending_total = 0  #: QUERYs currently queued in the coalescer
        self.connections_total = 0
        self.connections_open = 0
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        #: fixed-boundary histograms: exact fleet merges are bucket-wise
        #: sums, so percentiles survive worker restarts and rolling reloads
        self.latency_hist = Histogram()  #: QUERY enqueue -> response written
        self.stage_hist = {stage: Histogram() for stage in STAGES}
        #: bounded ring of recent traces plus the slow-query log
        self.tracer = TraceRecorder(ring=trace_ring, slow_ms=slow_ms)

    # -- member resolution ---------------------------------------------------

    def member(self, name: str) -> _Member:
        """The member serving ``name`` (lazily opened for catalogs).

        A member whose bytes fail to parse (truncated file, corrupt blob)
        raises :class:`CatalogError` naming the member — a *request-scoped*
        failure answered with ``OP_ERROR``, never a connection-killing one,
        so the other members keep serving.
        """
        member = self._members.get(name)
        if member is None:
            if self._catalog is None:
                raise CatalogError(
                    f"this server fronts a single index; use the empty member "
                    f"name, not {name!r}"
                )
            try:
                index = self._catalog.index(name)
            except Exception as error:
                if isinstance(error, CatalogError) and name not in self._catalog:
                    raise  # unknown member: the message already names it
                raise CatalogError(
                    f"catalog member {name!r} failed to open: {error}"
                ) from error
            member = _Member(name, index)
            if self.pair_cache:
                member.index.engine.enable_pair_cache(self.pair_cache)
            self._members[name] = member
        return member

    # -- member placement (the ``routing`` feature) ---------------------------

    @property
    def routing_version(self) -> int:
        """The version of the routing table this worker serves under (0 = unsharded)."""
        return int(self._routing.get("version", 0)) if self._routing else 0

    def set_routing(self, table: dict | None) -> None:
        """Adopt a new routing table (pushed by the supervisor after a reload)."""
        self._routing = table
        if table is not None:
            owned = [
                name
                for name, owners in table.get("members", {}).items()
                if self.slot in owners
            ]
            self._assigned = set(owned)

    def owns(self, name: str) -> bool:
        """Whether this worker is an assigned owner of member ``name``."""
        return self._assigned is None or name in self._assigned

    def _redirect(self, connection, request_id: int, name: str) -> bool:
        """Answer a routed request for a non-owned member with ``OP_MOVED``.

        Returns ``True`` when the hint was sent (the caller stops).  When the
        table has no owner endpoint for ``name`` (unknown member, slot gone)
        the request is served in place instead so the normal error/answer
        path applies.
        """
        if not self._routing:
            return False
        owners = table_owners(self._routing, name)
        if self.slot in owners:
            return False
        endpoint = member_endpoint(self._routing, name)
        if endpoint is None:
            return False
        self.moved_redirects += 1
        connection.send(
            protocol.encode_moved(
                request_id, self.routing_version, name, endpoint[0], endpoint[1]
            )
        )
        return True

    def info(self) -> dict:
        """The INFO payload: one row per member name."""
        members: dict[str, dict] = {}
        if self._catalog is not None:
            for row in self._catalog.describe():
                members[row["name"]] = {
                    "spec": row["spec"],
                    "kind": row["kind"],
                    "n": row["n"],
                    "open": row["open"],
                }
        else:
            members[""] = dict(self._members[""].index.describe(), open=True)
        payload = {
            "protocol": protocol.PROTOCOL_VERSION,
            "features": list(protocol.PROTOCOL_FEATURES),
            "worker": os.getpid(),
            "slot": self.slot,
            "restarts": self.restarts,
            "members": members,
        }
        if self.generation is not None:
            payload["store"] = dict(self.generation)
        if self._routing is not None:
            payload["routing"] = self._routing
        return payload

    def stats(self, name: str = "", detail: bool = False) -> dict:
        """The STATS payload; ``name`` adds one member's index statistics.

        ``latency_ms`` covers QUERY requests only (enqueue to flush, the
        number a per-query client observes); BATCH/MATRIX requests are
        counted but would skew the per-query percentiles and stay out.
        Percentiles come from the fixed-boundary latency histogram, so they
        are quantised to its bucket bounds but never truncated by a window.
        ``detail`` embeds the histogram snapshots (latency + per-stage) and
        the raw reservoir (in ms) so fleet consumers — the supervisor's
        shutdown summary, the metrics endpoint, the loadgen report — can
        merge latency across workers bucket-wise and report true fleet
        percentiles; plain monitoring polls leave it off and stay a few
        hundred bytes.
        """
        elapsed = max(time.monotonic() - self.started_at, 1e-9)
        samples = list(self._latencies)
        answered = self.queries + self.batch_request_pairs
        payload = {
            "worker": os.getpid(),
            "slot": self.slot,
            "restarts": self.restarts,
            "uptime_seconds": round(elapsed, 3),
            "queries": self.queries,
            "batch_requests": self.batch_requests,
            "batch_request_pairs": self.batch_request_pairs,
            "matrix_requests": self.matrix_requests,
            "matrix_offloaded": self.matrix_offloaded,
            "matrix_inflight": self._matrix_inflight,
            "flushes": self.flushes,
            "coalesced_queries": self.coalesced,
            "mean_batch_size": round(self.coalesced / self.flushes, 2) if self.flushes else 0.0,
            "errors": self.errors,
            "busy_rejections": self.busy_rejections,
            "pending": self.pending_total,
            "max_pending": self.max_pending,
            "connections_open": self.connections_open,
            "connections_total": self.connections_total,
            "qps": round(answered / elapsed, 1),
            "rss_bytes": current_rss_bytes(),
            "kernel": kernels.backend_name(),
            "latency_ms": {
                "p50": round(self.latency_hist.percentile(0.50), 4),
                "p99": round(self.latency_hist.percentile(0.99), 4),
                "samples": self.latency_hist.total,
            },
            "coalescing": self.coalesce,
            "misroutes": self.misroutes,
            "moved_redirects": self.moved_redirects,
            "routing_version": self.routing_version,
            "members_open": sorted(self._members),
        }
        if self._assigned is not None:
            payload["members_assigned"] = sorted(self._assigned)
        if self.generation is not None:
            payload["store_generation"] = self.generation.get("generation")
        if detail:
            payload["latency_ms"]["histogram"] = self.latency_hist.to_dict()
            payload["latency_ms"]["reservoir"] = [
                round(sample * 1000, 4) for sample in samples
            ]
            payload["stages"] = {
                stage: hist.to_dict() for stage, hist in self.stage_hist.items()
            }
            payload["traces"] = {
                "recorded": self.tracer.recorded,
                "slow_ms": self.tracer.slow_ms,
            }
        if name or self._catalog is None:
            # a read-only stats probe must not force a lazy catalog member
            # open; closed members report ``open: false`` and nothing else
            member = self._members.get(name)
            if member is None:
                if self._catalog is None or name not in self._catalog:
                    raise CatalogError(
                        f"no index named {name!r} on this server"
                    )
                payload["index"] = {"name": name, "open": False}
            else:
                engine = member.index.engine
                cache = engine.cache_info()
                payload["index"] = dict(
                    member.index.describe(),
                    name=name,
                    open=True,
                    cache=cache,
                    cache_hit_rate=cache["hit_rate"],
                    pair_cache=engine.pair_cache_info(),
                )
        return payload

    # -- the micro-batching coalescer ----------------------------------------

    def enqueue_query(
        self,
        member: _Member,
        connection,
        request_id: int,
        u: int,
        v: int,
        trace: tuple | None = None,
    ) -> None:
        """Queue one QUERY for the next flush (or flush now when naive).

        When the pending queue is already at ``max_pending``, the request is
        shed immediately with BUSY — bounded memory and bounded latency for
        everything already queued, at the price of the client retrying.
        ``trace`` is ``(trace_id, arrived, decoded)`` for requests carrying
        the additive trace-id field.
        """
        if self.pending_total >= self.max_pending:
            self.busy_rejections += 1
            connection.send(protocol.encode_busy(request_id, self._retry_hint_ms()))
            return
        pending = member.pending
        if not pending:
            self._dirty.append(member)
        pending.append((connection, request_id, u, v, time.monotonic(), trace))
        self.pending_total += 1
        if not self.coalesce or len(pending) >= self.max_batch:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            # call_soon runs after every data_received callback already queued
            # in this event-loop tick: that is the coalescing window
            asyncio.get_running_loop().call_soon(self._flush)

    def _retry_hint_ms(self) -> int:
        """Backoff hint sent with BUSY: roughly one coalescer drain."""
        return 1 + self.pending_total // 10000

    def _flush(self) -> None:
        """Answer every pending query with one batch call per member."""
        self._flush_scheduled = False
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, []
        now = time.monotonic
        record = self._latencies.append
        latency_hist = self.latency_hist
        queue_hist = self.stage_hist["queue"]
        slow_ms = self.tracer.slow_ms
        for member in dirty:
            pending = member.pending
            if not pending:
                continue
            member.pending = []
            self.pending_total -= len(pending)
            pairs = [(item[2], item[3]) for item in pending]
            flush_start = now()
            try:
                answers = member.index.batch(pairs, raw=True)
            except (StoreError, ValueError):
                # one bad pair must not poison the whole coalesced batch:
                # fall back to answering each query alone so only the
                # offending requests receive OP_ERROR
                self._flush_individually(member, pending)
                continue
            self.flushes += 1
            self.coalesced += len(pending)
            self.queries += len(pending)
            finished = now()
            self.stage_hist["batch"].observe((finished - flush_start) * 1000.0)
            # group per connection, then build each connection's response
            # frames in one encode_result_block call and one write
            answered: dict[object, list] = {}
            traced: list[tuple] = []
            for item, answer in zip(pending, answers):
                connection, request_id, u, v, enqueued, trace = item
                total_ms = (finished - enqueued) * 1000.0
                record(finished - enqueued)
                latency_hist.observe(total_ms)
                queue_hist.observe((flush_start - enqueued) * 1000.0)
                if slow_ms is not None and total_ms >= slow_ms:
                    self.tracer.maybe_slow(
                        total_ms,
                        {
                            "op": "query",
                            "member": member.name,
                            "u": u,
                            "v": v,
                            "trace_id": trace[0] if trace else None,
                        },
                    )
                if trace is not None:
                    traced.append((trace, connection, u, v, enqueued))
                bucket = answered.get(connection)
                if bucket is None:
                    bucket = answered[connection] = []
                bucket.append((request_id, answer))
            kind = member.kind_code
            ratio = member.ratio_bound
            encode_hist = self.stage_hist["encode"]
            write_hist = self.stage_hist["write"]
            conn_times: dict[object, tuple] = {}
            for connection, items in answered.items():
                encode_start = now()
                block = protocol.encode_result_block(items, kind, ratio)
                encode_end = now()
                connection.send(block)
                write_end = now()
                encode_hist.observe((encode_end - encode_start) * 1000.0)
                write_hist.observe((write_end - encode_end) * 1000.0)
                if traced:
                    conn_times[connection] = (encode_start, encode_end, write_end)
            for trace, connection, u, v, enqueued in traced:
                encode_start, encode_end, write_end = conn_times[connection]
                self._record_query_trace(
                    trace,
                    member,
                    u,
                    v,
                    enqueued=enqueued,
                    flush_start=flush_start,
                    batch_end=finished,
                    encode_start=encode_start,
                    encode_end=encode_end,
                    write_end=write_end,
                )

    def _record_query_trace(
        self,
        trace: tuple,
        member: _Member,
        u: int,
        v: int,
        *,
        enqueued: float,
        flush_start: float,
        batch_end: float,
        encode_start: float,
        encode_end: float,
        write_end: float,
    ) -> None:
        """Assemble and record the spans for one traced, coalesced QUERY.

        The encode/write spans are per-connection (the batched response block
        is built and written once per connection), so a traced query inside a
        large coalesced flush reports the shared encode/write cost — exactly
        what that request actually waited for.
        """
        trace_id, arrived, decoded = trace
        record = Trace(
            trace_id,
            "query",
            member.name,
            total_ms=(write_end - arrived) * 1000.0,
            attrs=self._trace_attrs(u=u, v=v),
        )
        record.add(Span.completed("decode", (decoded - arrived) * 1000.0))
        record.add(Span.completed("queue", (flush_start - enqueued) * 1000.0))
        record.add(Span.completed("batch", (batch_end - flush_start) * 1000.0))
        record.add(Span.completed("encode", (encode_end - encode_start) * 1000.0))
        record.add(Span.completed("write", (write_end - encode_end) * 1000.0))
        self.tracer.record(record)

    def _trace_attrs(self, **extra) -> dict:
        attrs = {"worker": os.getpid(), "slot": self.slot}
        if self.generation is not None:
            attrs["store_generation"] = self.generation.get("generation")
        attrs.update(extra)
        return attrs

    def _flush_individually(self, member: _Member, pending: list) -> None:
        """Answer each pending query alone (the poisoned-batch slow path)."""
        kind = member.kind_code
        ratio = member.ratio_bound
        query = member.index.query
        record = self._latencies.append
        now = time.monotonic
        for connection, request_id, u, v, enqueued, trace in pending:
            start = now()
            try:
                answer = query(u, v, raw=True)
            except (StoreError, ValueError) as error:
                self.errors += 1
                connection.send(protocol.encode_error(request_id, str(error)))
            else:
                batch_end = now()
                self.flushes += 1
                self.coalesced += 1
                self.queries += 1
                total = batch_end - enqueued
                record(total)
                self.latency_hist.observe(total * 1000.0)
                self.stage_hist["queue"].observe((start - enqueued) * 1000.0)
                self.stage_hist["batch"].observe((batch_end - start) * 1000.0)
                encode_start = now()
                frame = protocol.encode_result(request_id, kind, (answer,), ratio)
                encode_end = now()
                connection.send(frame)
                write_end = now()
                self.stage_hist["encode"].observe((encode_end - encode_start) * 1000.0)
                self.stage_hist["write"].observe((write_end - encode_end) * 1000.0)
                if self.tracer.slow_ms is not None:
                    self.tracer.maybe_slow(
                        total * 1000.0,
                        {
                            "op": "query",
                            "member": member.name,
                            "u": u,
                            "v": v,
                            "trace_id": trace[0] if trace else None,
                        },
                    )
                if trace is not None:
                    self._record_query_trace(
                        trace,
                        member,
                        u,
                        v,
                        enqueued=enqueued,
                        flush_start=start,
                        batch_end=batch_end,
                        encode_start=encode_start,
                        encode_end=encode_end,
                        write_end=write_end,
                    )

    # -- MATRIX offload -------------------------------------------------------

    async def _run_matrix(self, member: _Member, connection, request_id: int, nodes) -> None:
        """One offloaded MATRIX request: executor compute, loop-side write."""
        try:
            flat = await asyncio.get_running_loop().run_in_executor(
                None, member.index.engine.matrix_into, nodes
            )
            self.matrix_requests += 1
            self.matrix_offloaded += 1
            connection.send(
                protocol.encode_result(
                    request_id, member.kind_code, flat, member.ratio_bound
                )
            )
        except (StoreError, ValueError) as error:
            self.errors += 1
            connection.send(protocol.encode_error(request_id, str(error)))
        finally:
            self._matrix_inflight -= 1

    # -- request dispatch ------------------------------------------------------

    def handle_request(self, connection, body: bytes) -> None:
        """Dispatch one decoded frame from ``connection``."""
        arrived = time.monotonic()
        if self._faults is not None:
            self._faults.fire("dispatch")
        op, request_id, name, payload, trace_id, route_version = (
            protocol.decode_request(body)
        )
        decoded = time.monotonic()
        self.stage_hist["decode"].observe((decoded - arrived) * 1000.0)
        try:
            if (
                self._assigned is not None
                and op in (protocol.OP_QUERY, protocol.OP_BATCH, protocol.OP_MATRIX)
                and not self.owns(name)
            ):
                # routed requests (route-version suffix present) get a MOVED
                # hint pointing at the owner; legacy requests are served in
                # place through the lazy fallback open, counted as misroutes
                if route_version is not None and self._redirect(
                    connection, request_id, name
                ):
                    return
                self.misroutes += 1
            if op == protocol.OP_QUERY:
                member = self.member(name)
                u, v = payload
                trace = (trace_id, arrived, decoded) if trace_id is not None else None
                self.enqueue_query(member, connection, request_id, u, v, trace)
                return
            if op == protocol.OP_BATCH:
                member = self.member(name)
                batch_start = time.monotonic()
                answers = member.index.batch(payload, raw=True)
                batch_end = time.monotonic()
                self.batch_requests += 1
                self.batch_request_pairs += len(payload)
                self.stage_hist["batch"].observe((batch_end - batch_start) * 1000.0)
                encode_start = time.monotonic()
                frame = protocol.encode_result(
                    request_id, member.kind_code, answers, member.ratio_bound
                )
                encode_end = time.monotonic()
                connection.send(frame)
                write_end = time.monotonic()
                self.stage_hist["encode"].observe((encode_end - encode_start) * 1000.0)
                self.stage_hist["write"].observe((write_end - encode_end) * 1000.0)
                total_ms = (write_end - arrived) * 1000.0
                if self.tracer.slow_ms is not None:
                    self.tracer.maybe_slow(
                        total_ms,
                        {
                            "op": "batch",
                            "member": name,
                            "pairs": len(payload),
                            "trace_id": trace_id,
                        },
                    )
                if trace_id is not None:
                    record = Trace(
                        trace_id,
                        "batch",
                        name,
                        total_ms=total_ms,
                        attrs=self._trace_attrs(pairs=len(payload)),
                    )
                    record.add(Span.completed("decode", (decoded - arrived) * 1000.0))
                    record.add(Span.completed("batch", (batch_end - batch_start) * 1000.0))
                    record.add(Span.completed("encode", (encode_end - encode_start) * 1000.0))
                    record.add(Span.completed("write", (write_end - encode_end) * 1000.0))
                    self.tracer.record(record)
                return
            if op == protocol.OP_MATRIX:
                member = self.member(name)
                size = member.index.n if payload is None else len(payload)
                if size > self.max_matrix:
                    raise ValueError(
                        f"matrix over {size} nodes exceeds the server's limit "
                        f"of {self.max_matrix}; request fewer nodes per message"
                    )
                if self._matrix_inflight >= self.max_matrix_inflight:
                    self.busy_rejections += 1
                    connection.send(
                        protocol.encode_busy(request_id, self._retry_hint_ms())
                    )
                    return
                self._matrix_inflight += 1
                asyncio.get_running_loop().create_task(
                    self._run_matrix(member, connection, request_id, payload)
                )
                return
            if op == protocol.OP_STATS:
                connection.send(
                    protocol.encode_json_response(
                        protocol.OP_STATS_RESULT,
                        request_id,
                        self.stats(name, detail=payload is True),
                    )
                )
                return
            if op == protocol.OP_TRACE:
                limit, include_slow = payload
                snapshot = self.tracer.snapshot(limit, include_slow)
                snapshot.update(self._trace_attrs())
                connection.send(
                    protocol.encode_json_response(
                        protocol.OP_TRACE_RESULT, request_id, snapshot
                    )
                )
                return
            assert op == protocol.OP_INFO
            connection.send(
                protocol.encode_json_response(
                    protocol.OP_INFO_RESULT, request_id, self.info()
                )
            )
        except (CatalogError, StoreError, KeyError, ValueError) as error:
            self.errors += 1
            message = error.args[0] if error.args else str(error)
            connection.send(protocol.encode_error(request_id, str(message)))

    # -- graceful drain (used by the supervisor's worker shutdown path) --------

    async def drain(self, timeout: float = 5.0) -> bool:
        """Wait for queued queries and in-flight matrices to finish.

        Called after the listener is closed: nothing new can arrive, so once
        the coalescer queue and the matrix executor are empty every accepted
        request has been answered.  Returns ``False`` on timeout.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self.pending_total or self._matrix_inflight:
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    def close_connections(self) -> None:
        """Close every open client connection (pending writes are flushed).

        Clients see a clean EOF and reconnect — to a sibling worker or to
        this worker's replacement (reconnect-on-EOF is a retryable event in
        both clients).
        """
        for connection in list(self._connections):
            connection.close_gracefully()


class _Connection(asyncio.Protocol):
    """One client connection: frame splitting and response writing."""

    __slots__ = ("_core", "_decoder", "_transport", "closed")

    def __init__(self, core: ServingCore) -> None:
        self._core = core
        self._decoder = protocol.FrameDecoder()
        self._transport: asyncio.Transport | None = None
        self.closed = False

    # -- asyncio.Protocol hooks ----------------------------------------------

    def connection_made(self, transport) -> None:
        if self._core._faults is not None:
            self._core._faults.fire("accept")
        self._transport = transport
        self._core.connections_total += 1
        self._core.connections_open += 1
        self._core._connections.add(self)

    def connection_lost(self, exc) -> None:
        self.closed = True
        self._core.connections_open -= 1
        self._core._connections.discard(self)

    def data_received(self, data: bytes) -> None:
        try:
            self._decoder.feed(data)
            for body in self._decoder.frames():
                self._core.handle_request(self, body)
        except protocol.ProtocolError:
            # unparseable bytes: the stream cannot be resynchronised
            self.abort()

    # -- used by the server --------------------------------------------------

    def send(self, data: bytes) -> None:
        """Write a response unless the peer already went away."""
        if not self.closed and self._transport is not None:
            self._transport.write(data)

    def abort(self) -> None:
        if self._transport is not None:
            self._transport.close()
        self.closed = True

    def close_gracefully(self) -> None:
        """Close after flushing buffered responses (drain path)."""
        if self._transport is not None:
            self._transport.close()


class LabelServer(ServingCore):
    """A :class:`ServingCore` behind an asyncio TCP listener.

    Three ways to bind, one per deployment shape:

    * ``start(host, port)`` — a fresh private socket (the single-process
      default);
    * ``start(host, port, reuse_port=True)`` — a ``SO_REUSEPORT`` socket;
      every worker process binding the same address gets a kernel-balanced
      share of incoming connections;
    * ``start(sock=...)`` — serve an already-bound listening socket
      inherited from a supervisor (the pre-fork fallback where
      ``SO_REUSEPORT`` is unavailable).
    """

    def __init__(self, target: DistanceIndex | IndexCatalog, **kwargs) -> None:
        super().__init__(target, **kwargs)
        self._server: asyncio.AbstractServer | None = None
        self._direct_server: asyncio.AbstractServer | None = None

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        reuse_port: bool = False,
        sock=None,
    ) -> tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        loop = asyncio.get_running_loop()
        if sock is not None:
            self._server = await loop.create_server(
                lambda: _Connection(self), sock=sock
            )
        elif reuse_port:
            self._server = await loop.create_server(
                lambda: _Connection(self), host=host, port=port, reuse_port=True
            )
        else:
            self._server = await loop.create_server(
                lambda: _Connection(self), host=host, port=port
            )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def start_direct(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        reuse_port: bool = False,
        sock=None,
    ) -> tuple[str, int]:
        """Bind this worker's *direct* (per-slot) listener.

        A sharded worker serves two addresses: the fleet-shared
        ``SO_REUSEPORT`` address (kernel-balanced, the fallback path) and its
        own direct port that routed clients pin per-member connections to.
        Both feed the same :class:`ServingCore`.
        """
        loop = asyncio.get_running_loop()
        if sock is not None:
            self._direct_server = await loop.create_server(
                lambda: _Connection(self), sock=sock
            )
        elif reuse_port:
            self._direct_server = await loop.create_server(
                lambda: _Connection(self), host=host, port=port, reuse_port=True
            )
        else:
            self._direct_server = await loop.create_server(
                lambda: _Connection(self), host=host, port=port
            )
        sockname = self._direct_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or task cancellation)."""
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Stop accepting and close the listening socket(s)."""
        if self._direct_server is not None:
            self._direct_server.close()
            await self._direct_server.wait_closed()
            self._direct_server = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


async def serve(
    target: DistanceIndex | IndexCatalog,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready: "asyncio.Event | None" = None,
    bound: "list | None" = None,
    **server_kwargs,
) -> LabelServer:
    """Start a :class:`LabelServer` and run it until cancelled.

    ``bound`` (a list) receives the actual ``(host, port)`` and ``ready`` is
    set once the socket is listening — the hooks the in-process tests and
    the thread-hosted test harness use to rendezvous with the server.
    Remaining keyword arguments go to the :class:`ServingCore` constructor.
    """
    server = LabelServer(target, **server_kwargs)
    address = await server.start(host, port)
    if bound is not None:
        bound.append(address)
    if ready is not None:
        ready.set()
    await server.serve_forever()
    return server
