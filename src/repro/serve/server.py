"""Asyncio TCP server fronting a :class:`DistanceIndex` or :class:`IndexCatalog`.

The server's defining feature is the **micro-batching coalescer**: QUERY
requests are not answered one at a time.  Each one is appended to a
per-member pending list and the flush is scheduled with ``loop.call_soon``,
which runs *after* every ``data_received`` callback of the current event-loop
tick — so all queries that arrived in this tick, across every connection,
are answered by **one** :meth:`QueryEngine.batch_query` call per member.
That call parses each distinct endpoint once (warming the engine's parsed-
label LRU for every future tick) and the responses are written back with one
``transport.write`` per connection instead of one per request.  Under a
pipelined client the serving cost per query drops to an append, a shared
batch slot and a shared write.

``coalesce=False`` keeps the identical code path but flushes after every
request (a batch of one) — the naive serving baseline that
``benchmarks/bench_serve_throughput.py`` measures the coalescer against.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque

from repro.api.catalog import CatalogError, IndexCatalog
from repro.api.index import DistanceIndex
from repro.serve import protocol
from repro.store.label_store import StoreError

#: latency samples kept for the percentile estimates in STATS responses
_LATENCY_WINDOW = 4096


def _percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


class _Member:
    """One servable index plus the constants its responses need."""

    __slots__ = ("name", "index", "kind_code", "ratio_bound", "pending")

    def __init__(self, name: str, index: DistanceIndex) -> None:
        self.name = name
        self.index = index
        self.kind_code = protocol.KIND_CODES[index.kind]
        self.ratio_bound = (
            1.0 + index.scheme.epsilon
            if index.kind == "approximate"
            else (1.0 if index.kind == "exact" else None)
        )
        #: coalescer queue: (connection, request_id, u, v, enqueued_at)
        self.pending: list[tuple] = []


class LabelServer:
    """Serve distance queries from packed labels over TCP.

    ``target`` is a :class:`DistanceIndex` (served under the empty member
    name) or an :class:`IndexCatalog` (members addressed by name; closed
    members open lazily on first query, exactly as in-process).
    """

    def __init__(
        self,
        target: DistanceIndex | IndexCatalog,
        *,
        coalesce: bool = True,
        max_batch: int = 8192,
        max_matrix: int = 1024,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_matrix < 1:
            raise ValueError("max_matrix must be at least 1")
        self._catalog: IndexCatalog | None = None
        self._members: dict[str, _Member] = {}
        if isinstance(target, IndexCatalog):
            self._catalog = target
        elif isinstance(target, DistanceIndex):
            self._members[""] = _Member("", target)
        else:
            raise TypeError(
                f"target must be a DistanceIndex or IndexCatalog, got {type(target).__name__}"
            )
        self.coalesce = coalesce
        self.max_batch = max_batch
        #: MATRIX requests are answered on the event loop, so their size is
        #: capped: an n-node matrix costs n^2/2 queries and would stall every
        #: other connection for its duration
        self.max_matrix = max_matrix
        self._server: asyncio.AbstractServer | None = None
        self._flush_scheduled = False
        self._dirty: list[_Member] = []

        # -- serving statistics ------------------------------------------
        self.started_at = time.monotonic()
        self.queries = 0  #: individual QUERY answers sent
        self.batch_requests = 0  #: OP_BATCH requests served
        self.batch_request_pairs = 0
        self.matrix_requests = 0
        self.flushes = 0  #: coalescer batch_query calls
        self.coalesced = 0  #: QUERY answers produced by those calls
        self.errors = 0
        self.connections_total = 0
        self.connections_open = 0
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)

    # -- member resolution ---------------------------------------------------

    def member(self, name: str) -> _Member:
        """The member serving ``name`` (lazily opened for catalogs)."""
        member = self._members.get(name)
        if member is None:
            if self._catalog is None:
                raise CatalogError(
                    f"this server fronts a single index; use the empty member "
                    f"name, not {name!r}"
                )
            member = _Member(name, self._catalog.index(name))
            self._members[name] = member
        return member

    def info(self) -> dict:
        """The INFO payload: one row per member name."""
        members: dict[str, dict] = {}
        if self._catalog is not None:
            for row in self._catalog.describe():
                members[row["name"]] = {
                    "spec": row["spec"],
                    "kind": row["kind"],
                    "n": row["n"],
                    "open": row["open"],
                }
        else:
            members[""] = dict(self._members[""].index.describe(), open=True)
        return {"protocol": protocol.PROTOCOL_VERSION, "members": members}

    def stats(self, name: str = "") -> dict:
        """The STATS payload; ``name`` adds one member's index statistics.

        ``latency_ms`` covers QUERY requests only (enqueue to flush, the
        number a per-query client observes); BATCH/MATRIX requests are
        counted but would skew the per-query percentiles and stay out.
        """
        elapsed = max(time.monotonic() - self.started_at, 1e-9)
        samples = list(self._latencies)
        answered = self.queries + self.batch_request_pairs
        payload = {
            "uptime_seconds": round(elapsed, 3),
            "queries": self.queries,
            "batch_requests": self.batch_requests,
            "batch_request_pairs": self.batch_request_pairs,
            "matrix_requests": self.matrix_requests,
            "flushes": self.flushes,
            "coalesced_queries": self.coalesced,
            "mean_batch_size": round(self.coalesced / self.flushes, 2) if self.flushes else 0.0,
            "errors": self.errors,
            "connections_open": self.connections_open,
            "connections_total": self.connections_total,
            "qps": round(answered / elapsed, 1),
            "latency_ms": {
                "p50": round(_percentile(samples, 0.50) * 1000, 4),
                "p99": round(_percentile(samples, 0.99) * 1000, 4),
                "samples": len(samples),
            },
            "coalescing": self.coalesce,
        }
        if name or self._catalog is None:
            # a read-only stats probe must not force a lazy catalog member
            # open; closed members report ``open: false`` and nothing else
            member = self._members.get(name)
            if member is None:
                if self._catalog is None or name not in self._catalog:
                    raise CatalogError(
                        f"no index named {name!r} on this server"
                    )
                payload["index"] = {"name": name, "open": False}
            else:
                cache = member.index.engine.cache_info()
                payload["index"] = dict(
                    member.index.describe(),
                    name=name,
                    open=True,
                    cache=cache,
                    cache_hit_rate=cache["hit_rate"],
                )
        return payload

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        loop = asyncio.get_running_loop()
        self._server = await loop.create_server(
            lambda: _Connection(self), host=host, port=port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or task cancellation)."""
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- the micro-batching coalescer ----------------------------------------

    def enqueue_query(self, member: _Member, connection, request_id: int, u: int, v: int) -> None:
        """Queue one QUERY for the next flush (or flush now when naive)."""
        pending = member.pending
        if not pending:
            self._dirty.append(member)
        pending.append((connection, request_id, u, v, time.monotonic()))
        if not self.coalesce or len(pending) >= self.max_batch:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            # call_soon runs after every data_received callback already queued
            # in this event-loop tick: that is the coalescing window
            asyncio.get_running_loop().call_soon(self._flush)

    def _flush(self) -> None:
        """Answer every pending query with one batch call per member."""
        self._flush_scheduled = False
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, []
        now = time.monotonic
        record = self._latencies.append
        for member in dirty:
            pending = member.pending
            if not pending:
                continue
            member.pending = []
            pairs = [(item[2], item[3]) for item in pending]
            try:
                answers = member.index.batch(pairs, raw=True)
            except (StoreError, ValueError):
                # one bad pair must not poison the whole coalesced batch:
                # fall back to answering each query alone so only the
                # offending requests receive OP_ERROR
                self._flush_individually(member, pending)
                continue
            self.flushes += 1
            self.coalesced += len(pending)
            self.queries += len(pending)
            finished = now()
            # group per connection, then build each connection's response
            # frames in one encode_result_block call and one write
            answered: dict[object, list] = {}
            for (connection, request_id, _, _, enqueued), answer in zip(pending, answers):
                record(finished - enqueued)
                bucket = answered.get(connection)
                if bucket is None:
                    bucket = answered[connection] = []
                bucket.append((request_id, answer))
            kind = member.kind_code
            ratio = member.ratio_bound
            for connection, items in answered.items():
                connection.send(protocol.encode_result_block(items, kind, ratio))

    def _flush_individually(self, member: _Member, pending: list) -> None:
        """Answer each pending query alone (the poisoned-batch slow path)."""
        kind = member.kind_code
        ratio = member.ratio_bound
        query = member.index.query
        record = self._latencies.append
        for connection, request_id, u, v, enqueued in pending:
            try:
                answer = query(u, v, raw=True)
            except (StoreError, ValueError) as error:
                self.errors += 1
                connection.send(protocol.encode_error(request_id, str(error)))
            else:
                self.flushes += 1
                self.coalesced += 1
                self.queries += 1
                record(time.monotonic() - enqueued)
                connection.send(
                    protocol.encode_result(request_id, kind, (answer,), ratio)
                )

    # -- non-coalesced request handling --------------------------------------

    def handle_request(self, connection, body: bytes) -> None:
        """Dispatch one decoded frame from ``connection``."""
        op, request_id, name, payload = protocol.decode_request(body)
        try:
            if op == protocol.OP_QUERY:
                member = self.member(name)
                u, v = payload
                self.enqueue_query(member, connection, request_id, u, v)
                return
            if op == protocol.OP_BATCH:
                member = self.member(name)
                answers = member.index.batch(payload, raw=True)
                self.batch_requests += 1
                self.batch_request_pairs += len(payload)
                connection.send(
                    protocol.encode_result(
                        request_id, member.kind_code, answers, member.ratio_bound
                    )
                )
                return
            if op == protocol.OP_MATRIX:
                member = self.member(name)
                size = member.index.n if payload is None else len(payload)
                if size > self.max_matrix:
                    raise ValueError(
                        f"matrix over {size} nodes exceeds the server's limit "
                        f"of {self.max_matrix}; request fewer nodes per message"
                    )
                rows = member.index.matrix(payload, raw=True)
                self.matrix_requests += 1
                flat = [value for row in rows for value in row]
                connection.send(
                    protocol.encode_result(
                        request_id, member.kind_code, flat, member.ratio_bound
                    )
                )
                return
            if op == protocol.OP_STATS:
                connection.send(
                    protocol.encode_json_response(
                        protocol.OP_STATS_RESULT, request_id, self.stats(name)
                    )
                )
                return
            assert op == protocol.OP_INFO
            connection.send(
                protocol.encode_json_response(
                    protocol.OP_INFO_RESULT, request_id, self.info()
                )
            )
        except (CatalogError, StoreError, KeyError, ValueError) as error:
            self.errors += 1
            message = error.args[0] if error.args else str(error)
            connection.send(protocol.encode_error(request_id, str(message)))


class _Connection(asyncio.Protocol):
    """One client connection: frame splitting and response writing."""

    __slots__ = ("_server", "_decoder", "_transport", "closed")

    def __init__(self, server: LabelServer) -> None:
        self._server = server
        self._decoder = protocol.FrameDecoder()
        self._transport: asyncio.Transport | None = None
        self.closed = False

    # -- asyncio.Protocol hooks ----------------------------------------------

    def connection_made(self, transport) -> None:
        self._transport = transport
        self._server.connections_total += 1
        self._server.connections_open += 1

    def connection_lost(self, exc) -> None:
        self.closed = True
        self._server.connections_open -= 1

    def data_received(self, data: bytes) -> None:
        try:
            self._decoder.feed(data)
            for body in self._decoder.frames():
                self._server.handle_request(self, body)
        except protocol.ProtocolError:
            # unparseable bytes: the stream cannot be resynchronised
            self.abort()

    # -- used by the server --------------------------------------------------

    def send(self, data: bytes) -> None:
        """Write a response unless the peer already went away."""
        if not self.closed and self._transport is not None:
            self._transport.write(data)

    def abort(self) -> None:
        if self._transport is not None:
            self._transport.close()
        self.closed = True


async def serve(
    target: DistanceIndex | IndexCatalog,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    coalesce: bool = True,
    max_batch: int = 8192,
    ready: "asyncio.Event | None" = None,
    bound: "list | None" = None,
) -> LabelServer:
    """Start a :class:`LabelServer` and run it until cancelled.

    ``bound`` (a list) receives the actual ``(host, port)`` and ``ready`` is
    set once the socket is listening — the hooks the in-process tests and
    the thread-hosted test harness use to rendezvous with the server.
    """
    server = LabelServer(target, coalesce=coalesce, max_batch=max_batch)
    address = await server.start(host, port)
    if bound is not None:
        bound.append(address)
    if ready is not None:
        ready.set()
    await server.serve_forever()
    return server
