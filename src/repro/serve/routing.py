"""Consistent-hash member placement for the serving fleet.

The fleet supervisor partitions catalog members across worker slots with a
consistent-hash ring so that each worker opens (and caches) only the members
it owns.  Placement properties the rest of the stack relies on:

* **Stability** — member → slot assignment depends only on the member name,
  the slot ids and the ring geometry, never on dict ordering or process
  state, so a re-forked slot reclaims exactly the members it served before
  and adding a slot moves only ~1/slots of the members.
* **Bounded load** — the ring walk skips slots that already carry their
  fair share (capacity = ceil(expected * load_factor)), so a pathological
  hash clustering cannot starve a slot.
* **Replication** — hot members may be owned by several slots
  (``replication > 1``); routed clients pick the first owner, while any
  owner answers without a redirect.

A *routing table* is the serialisable snapshot of one placement decision,
versioned so clients can detect staleness and workers can answer
``MOVED``-style redirect hints carrying the authoritative version.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from math import ceil

#: virtual nodes per slot on the ring; enough for <2% assignment imbalance
#: at single-digit slot counts without making ring construction noticeable
DEFAULT_VNODES = 64

#: headroom multiplier for the bounded-load capacity check
DEFAULT_LOAD_FACTOR = 1.25


def _hash64(key: str) -> int:
    """Stable 64-bit hash of ``key`` (process-seed independent)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring mapping member names to worker slots.

    ``slots`` is a sequence of slot identifiers (ints for the fleet, but any
    hashable stringifiable id works).  Each slot projects ``vnodes`` points
    onto the ring; a member lands at its own hash and walks clockwise
    collecting the first ``replication`` distinct slots that still have
    capacity.
    """

    def __init__(self, slots, *, vnodes: int = DEFAULT_VNODES) -> None:
        slots = list(slots)
        if not slots:
            raise ValueError("HashRing needs at least one slot")
        if len(set(slots)) != len(slots):
            raise ValueError(f"duplicate slot ids: {slots!r}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.slots = slots
        self.vnodes = vnodes
        points = []
        for slot in slots:
            for vnode in range(vnodes):
                points.append((_hash64(f"{slot}#{vnode}"), slot))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def _walk(self, name: str):
        """Slots in ring order starting at ``name``'s position (dups kept)."""
        start = bisect_right(self._hashes, _hash64(name))
        count = len(self._points)
        for step in range(count):
            yield self._points[(start + step) % count][1]

    def owners(self, name: str, *, replication: int = 1) -> list[int]:
        """The first ``replication`` distinct slots clockwise of ``name``."""
        owners: list[int] = []
        for slot in self._walk(name):
            if slot not in owners:
                owners.append(slot)
                if len(owners) >= min(replication, len(self.slots)):
                    break
        return owners

    def assign(
        self,
        members,
        *,
        replication: int = 1,
        load_factor: float = DEFAULT_LOAD_FACTOR,
    ) -> dict[str, list[int]]:
        """Bounded-load assignment of every member to its owner slots.

        Returns ``{member_name: [slot, ...]}`` with owners in preference
        order (the first owner is the routed client's target).  Assignment
        is order-independent: members are placed in sorted-name order so the
        result is a pure function of (members, slots, geometry), not of the
        caller's iteration order.
        """
        members = sorted(set(members))
        replication = max(1, min(replication, len(self.slots)))
        if not members:
            return {}
        expected = replication * len(members) / len(self.slots)
        capacity = max(1, ceil(expected * load_factor))
        load = {slot: 0 for slot in self.slots}
        assignment: dict[str, list[int]] = {}
        for name in members:
            owners: list[int] = []
            # first pass honours the capacity bound; if every slot is full
            # (rounding at tiny member counts) fall back to the unbounded walk
            for slot in self._walk(name):
                if slot in owners:
                    continue
                if load[slot] < capacity:
                    owners.append(slot)
                    load[slot] += 1
                    if len(owners) >= replication:
                        break
            if len(owners) < replication:
                for slot in self._walk(name):
                    if slot not in owners:
                        owners.append(slot)
                        load[slot] += 1
                        if len(owners) >= replication:
                            break
            assignment[name] = owners
        return assignment


def build_routing_table(
    member_names,
    slot_endpoints: dict[int, tuple[str, int]],
    *,
    version: int,
    replication: int = 1,
    vnodes: int = DEFAULT_VNODES,
    load_factor: float = DEFAULT_LOAD_FACTOR,
    generation: str | None = None,
) -> dict:
    """One versioned, JSON-serialisable routing table.

    ``slot_endpoints`` maps slot id → ``(host, port)`` of that worker's
    direct listener.  The table shape (stable across the stack: INFO
    payloads, client caches, metrics)::

        {
          "version": 3,
          "replication": 1,
          "generation": "freedman@1a2b..." | None,
          "members": {"acl": [1], "backbone": [0, 1], ...},
          "slots": {"0": ["127.0.0.1", 40001], "1": ["127.0.0.1", 40002]},
        }

    Slot keys are strings so the table survives JSON round-trips unchanged.
    """
    ring = HashRing(sorted(slot_endpoints), vnodes=vnodes)
    assignment = ring.assign(
        member_names, replication=replication, load_factor=load_factor
    )
    return {
        "version": int(version),
        "replication": max(1, min(int(replication), len(slot_endpoints))),
        "generation": generation,
        "members": {name: list(owners) for name, owners in assignment.items()},
        "slots": {
            str(slot): [host, int(port)]
            for slot, (host, port) in sorted(slot_endpoints.items())
        },
    }


def table_owners(table: dict, name: str) -> list[int]:
    """Owner slots for ``name`` in ``table`` (empty when unknown)."""
    return list(table.get("members", {}).get(name, ()))


def table_endpoint(table: dict, slot: int) -> tuple[str, int] | None:
    """The ``(host, port)`` direct endpoint of ``slot``, if published."""
    entry = table.get("slots", {}).get(str(slot))
    if not entry:
        return None
    host, port = entry
    return str(host), int(port)


def member_endpoint(table: dict, name: str) -> tuple[str, int] | None:
    """The preferred direct endpoint for ``name`` (first owner), if any."""
    for slot in table_owners(table, name):
        endpoint = table_endpoint(table, slot)
        if endpoint is not None:
            return endpoint
    return None
