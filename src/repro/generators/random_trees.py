"""Random tree generators.

All generators take an explicit :class:`random.Random` instance or a seed so
experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.trees.tree import RootedTree


def _rng(seed_or_rng: int | random.Random | None) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def random_prufer_tree(n: int, seed: int | random.Random | None = 0) -> RootedTree:
    """A uniformly random labelled tree on ``n`` nodes (via Prüfer sequences)."""
    rng = _rng(seed)
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return RootedTree([None])
    if n == 2:
        return RootedTree([None, 0])
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for value in sequence:
        degree[value] += 1

    edges: list[tuple[int, int]] = []
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for value in sequence:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, value))
        degree[value] -= 1
        if degree[value] == 1:
            heapq.heappush(leaves, value)
    # exactly the two unused degree-1 vertices remain in the heap
    remaining = sorted(leaves)
    edges.append((remaining[0], remaining[1]))

    from repro.trees.builder import tree_from_edges

    return tree_from_edges(n, edges, root=0)


def random_binary_tree(n: int, seed: int | random.Random | None = 0) -> RootedTree:
    """A random binary tree grown by attaching nodes to random free slots."""
    rng = _rng(seed)
    if n <= 0:
        raise ValueError("n must be positive")
    parents: list[int | None] = [None]
    slots = [0, 0]  # node 0 has two free child slots
    for node in range(1, n):
        index = rng.randrange(len(slots))
        parent = slots.pop(index)
        parents.append(parent)
        slots.extend([node, node])
    return RootedTree(parents)


def random_recursive_tree(n: int, seed: int | random.Random | None = 0) -> RootedTree:
    """A random recursive tree: node i attaches to a uniform earlier node."""
    rng = _rng(seed)
    if n <= 0:
        raise ValueError("n must be positive")
    parents: list[int | None] = [None]
    for node in range(1, n):
        parents.append(rng.randrange(node))
    return RootedTree(parents)


def random_caterpillar(n: int, seed: int | random.Random | None = 0) -> RootedTree:
    """A caterpillar with a random spine length and random leg placement."""
    rng = _rng(seed)
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return RootedTree([None])
    spine_length = max(1, rng.randrange(1, n))
    parents: list[int | None] = [None]
    for node in range(1, spine_length):
        parents.append(node - 1)
    for node in range(spine_length, n):
        parents.append(rng.randrange(spine_length))
    return RootedTree(parents)


def random_weighted_tree(
    n: int,
    max_weight: int,
    seed: int | random.Random | None = 0,
) -> RootedTree:
    """A random recursive tree with uniform edge weights in ``[0, max_weight]``."""
    rng = _rng(seed)
    tree = random_recursive_tree(n, rng)
    weights = [0] + [rng.randint(0, max_weight) for _ in range(n - 1)]
    ordered = [0] * n
    for node in tree.nodes():
        ordered[node] = weights[node] if node != tree.root else 0
    return tree.reweighted(ordered)


def random_tree_family(
    sizes: Sequence[int], seed: int | random.Random | None = 0
) -> list[RootedTree]:
    """One uniformly random tree per requested size."""
    rng = _rng(seed)
    return [random_prufer_tree(size, rng) for size in sizes]
