"""Query workloads and the named tree-family registry used by benchmarks."""

from __future__ import annotations

import random
from itertools import accumulate
from typing import Callable

from repro.generators.random_trees import (
    random_binary_tree,
    random_caterpillar,
    random_prufer_tree,
    random_recursive_tree,
)
from repro.generators.structured import (
    balanced_binary_tree,
    broom_tree,
    caterpillar_tree,
    path_tree,
    spider_tree,
    star_tree,
)
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.trees.tree import RootedTree

# Registry of named tree families: name -> generator(n, seed)
FAMILIES: dict[str, Callable[[int, int], RootedTree]] = {
    "random": lambda n, seed: random_prufer_tree(n, seed),
    "random_binary": lambda n, seed: random_binary_tree(n, seed),
    "random_recursive": lambda n, seed: random_recursive_tree(n, seed),
    "random_caterpillar": lambda n, seed: random_caterpillar(n, seed),
    "path": lambda n, seed: path_tree(n),
    "star": lambda n, seed: star_tree(n),
    "caterpillar": lambda n, seed: caterpillar_tree(n),
    "balanced_binary": lambda n, seed: balanced_binary_tree(n),
    "broom": lambda n, seed: broom_tree(n),
    "spider": lambda n, seed: spider_tree(n, legs=5),
}


def make_tree(family: str, n: int, seed: int = 0) -> RootedTree:
    """Build a named tree family member."""
    if family not in FAMILIES:
        raise KeyError(f"unknown tree family {family!r}; known: {sorted(FAMILIES)}")
    return FAMILIES[family](n, seed)


def random_pairs(
    tree: RootedTree, count: int, seed: int | random.Random | None = 0
) -> list[tuple[int, int]]:
    """Uniformly random query pairs (may include equal endpoints)."""
    return uniform_pairs(tree, count, seed)


def uniform_pairs(
    n: int | RootedTree, count: int, seed: int | random.Random | None = 0
) -> list[tuple[int, int]]:
    """Uniform pairs over ``0..n-1``; ``n`` may be a node count or a tree.

    The serving workloads (``repro-labels loadgen``, the serve benchmarks)
    know only the index's node count, not the tree, so this is the
    tree-free twin of :func:`random_pairs`.
    """
    n = n.n if isinstance(n, RootedTree) else int(n)
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    randrange = rng.randrange
    return [(randrange(n), randrange(n)) for _ in range(count)]


def zipf_pairs(
    n: int | RootedTree,
    count: int,
    skew: float = 1.0,
    seed: int | random.Random | None = 0,
) -> list[tuple[int, int]]:
    """Zipf-skewed query pairs: endpoint popularity ~ ``rank^-skew``.

    Real query traffic concentrates on a few hot entities; this workload
    reproduces that shape so caches (the engine's parsed-label LRU, a
    server's warm members) are exercised under realistic reuse.  Node ids
    are assigned to popularity ranks through a seeded shuffle, so the hot
    set is scattered across the id space rather than clustered at 0.
    ``skew=0`` degenerates to the uniform workload; ``skew`` around 1 is
    the classic web-traffic shape, larger is hotter.
    """
    n = n.n if isinstance(n, RootedTree) else int(n)
    if n < 1:
        raise ValueError("zipf_pairs needs at least one node")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    nodes = list(range(n))
    rng.shuffle(nodes)
    cumulative = list(accumulate((rank + 1) ** -skew for rank in range(n)))
    endpoints = rng.choices(nodes, cum_weights=cumulative, k=2 * count)
    return list(zip(endpoints[:count], endpoints[count:]))


def _require_tree(n_or_tree: int | RootedTree, workload: str) -> RootedTree:
    """The structural workloads need the tree, not just its node count."""
    if isinstance(n_or_tree, RootedTree):
        return n_or_tree
    raise ValueError(
        f"the {workload!r} workload needs the tree itself, not just its node "
        f"count; rebuild it first (loadgen: pass --family/--tree-seed)"
    )


def sibling_pairs(
    tree: int | RootedTree, count: int, seed: int | random.Random | None = 0
) -> list[tuple[int, int]]:
    """Adversarial same-parent pairs: both endpoints share their parent.

    Sibling pairs are the worst case for ancestry-shortcut decoders — the
    nearest common ancestor is one edge away from *both* endpoints, so every
    scheme must walk to the very bottom of its label before the distance
    resolves, and no hub/border entry is shared early.  Parents are drawn
    uniformly among nodes with at least two children; degenerate trees
    without any siblings (paths) top up with parent-child pairs, the closest
    structural analogue.
    """
    tree = _require_tree(tree, "sibling")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    broods = [
        children
        for node in tree.nodes()
        if len(children := list(tree.children(node))) >= 2
    ]
    pairs: list[tuple[int, int]] = []
    if broods:
        for _ in range(count):
            brood = rng.choice(broods)
            u, v = rng.sample(brood, 2)
            pairs.append((u, v))
        return pairs
    while len(pairs) < count:
        v = rng.randrange(tree.n)
        parent = tree.parent(v)
        pairs.append((v, v) if parent is None else (parent, v))
    return pairs


def khop_local_pairs(
    tree: int | RootedTree,
    count: int,
    hops: int = 4,
    seed: int | random.Random | None = 0,
) -> list[tuple[int, int]]:
    """Locality workload: the second endpoint is a ``<= hops`` random walk away.

    Models neighbourhood-heavy traffic (social ego-nets, filesystem
    subtrees): nearly every query resolves within a small radius, which
    exercises the short-distance fast paths and keeps k-distance schemes
    inside their bound.  Unlike :func:`near_pairs` no distance oracle is
    built, so it scales to the beyond-RAM trees ``bench_scale`` queries.
    """
    tree = _require_tree(tree, "khop")
    if hops < 1:
        raise ValueError("hops must be at least 1")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    pairs: list[tuple[int, int]] = []
    for _ in range(count):
        u = rng.randrange(tree.n)
        v = u
        for _ in range(rng.randint(1, hops)):
            neighbours = list(tree.children(v))
            parent = tree.parent(v)
            if parent is not None:
                neighbours.append(parent)
            if not neighbours:  # pragma: no cover - single-node tree
                break
            v = rng.choice(neighbours)
        pairs.append((u, v))
    return pairs


#: serving workload registry: name -> generator(n_or_tree, count, seed, **params)
#: ``sibling`` and ``khop`` are structural and require the tree, not a count
WORKLOADS: dict[str, Callable[..., list[tuple[int, int]]]] = {
    "uniform": uniform_pairs,
    "zipf": zipf_pairs,
    "sibling": sibling_pairs,
    "khop": khop_local_pairs,
}


def pair_workload(
    kind: str, n: int | RootedTree, count: int, seed: int = 0, **params
) -> list[tuple[int, int]]:
    """Generate a named pair workload (see :data:`WORKLOADS` for the names)."""
    if kind not in WORKLOADS:
        raise KeyError(f"unknown workload {kind!r}; known: {sorted(WORKLOADS)}")
    return WORKLOADS[kind](n, count, seed=seed, **params)


def all_pairs(tree: RootedTree) -> list[tuple[int, int]]:
    """Every ordered pair (small trees only)."""
    return [(u, v) for u in tree.nodes() for v in tree.nodes()]


def near_pairs(
    tree: RootedTree,
    count: int,
    max_distance: int,
    seed: int | random.Random | None = 0,
) -> list[tuple[int, int]]:
    """Query pairs biased towards distance at most ``max_distance``.

    Used by the k-distance benchmarks, where uniformly random pairs are
    almost always further apart than k.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    oracle = TreeDistanceOracle(tree)
    pairs: list[tuple[int, int]] = []
    nodes = list(tree.nodes())
    attempts = 0
    while len(pairs) < count and attempts < 50 * count:
        attempts += 1
        u = rng.choice(nodes)
        # walk a bounded random walk from u to find a nearby partner
        v = u
        for _ in range(rng.randint(0, max_distance)):
            neighbours = list(tree.children(v))
            parent = tree.parent(v)
            if parent is not None:
                neighbours.append(parent)
            if not neighbours:
                break
            v = rng.choice(neighbours)
        pairs.append((u, v))
    # top up with uniform pairs if the walk-based sampling fell short
    while len(pairs) < count:
        pairs.append((rng.randrange(tree.n), rng.randrange(tree.n)))
    # keep the oracle warm so callers can reuse it for expected answers
    _ = oracle
    return pairs
