"""Query workloads and the named tree-family registry used by benchmarks."""

from __future__ import annotations

import random
from typing import Callable

from repro.generators.random_trees import (
    random_binary_tree,
    random_caterpillar,
    random_prufer_tree,
    random_recursive_tree,
)
from repro.generators.structured import (
    balanced_binary_tree,
    broom_tree,
    caterpillar_tree,
    path_tree,
    spider_tree,
    star_tree,
)
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.trees.tree import RootedTree

# Registry of named tree families: name -> generator(n, seed)
FAMILIES: dict[str, Callable[[int, int], RootedTree]] = {
    "random": lambda n, seed: random_prufer_tree(n, seed),
    "random_binary": lambda n, seed: random_binary_tree(n, seed),
    "random_recursive": lambda n, seed: random_recursive_tree(n, seed),
    "random_caterpillar": lambda n, seed: random_caterpillar(n, seed),
    "path": lambda n, seed: path_tree(n),
    "star": lambda n, seed: star_tree(n),
    "caterpillar": lambda n, seed: caterpillar_tree(n),
    "balanced_binary": lambda n, seed: balanced_binary_tree(n),
    "broom": lambda n, seed: broom_tree(n),
    "spider": lambda n, seed: spider_tree(n, legs=5),
}


def make_tree(family: str, n: int, seed: int = 0) -> RootedTree:
    """Build a named tree family member."""
    if family not in FAMILIES:
        raise KeyError(f"unknown tree family {family!r}; known: {sorted(FAMILIES)}")
    return FAMILIES[family](n, seed)


def random_pairs(
    tree: RootedTree, count: int, seed: int | random.Random | None = 0
) -> list[tuple[int, int]]:
    """Uniformly random query pairs (may include equal endpoints)."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = tree.n
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


def all_pairs(tree: RootedTree) -> list[tuple[int, int]]:
    """Every ordered pair (small trees only)."""
    return [(u, v) for u in tree.nodes() for v in tree.nodes()]


def near_pairs(
    tree: RootedTree,
    count: int,
    max_distance: int,
    seed: int | random.Random | None = 0,
) -> list[tuple[int, int]]:
    """Query pairs biased towards distance at most ``max_distance``.

    Used by the k-distance benchmarks, where uniformly random pairs are
    almost always further apart than k.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    oracle = TreeDistanceOracle(tree)
    pairs: list[tuple[int, int]] = []
    nodes = list(tree.nodes())
    attempts = 0
    while len(pairs) < count and attempts < 50 * count:
        attempts += 1
        u = rng.choice(nodes)
        # walk a bounded random walk from u to find a nearby partner
        v = u
        for _ in range(rng.randint(0, max_distance)):
            neighbours = list(tree.children(v))
            parent = tree.parent(v)
            if parent is not None:
                neighbours.append(parent)
            if not neighbours:
                break
            v = rng.choice(neighbours)
        pairs.append((u, v))
    # top up with uniform pairs if the walk-based sampling fell short
    while len(pairs) < count:
        pairs.append((rng.randrange(tree.n), rng.randrange(tree.n)))
    # keep the oracle warm so callers can reuse it for expected answers
    _ = oracle
    return pairs
