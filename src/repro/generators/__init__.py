"""Workload generators: tree families and query workloads.

The benchmark harness sweeps the labeling schemes over the same kinds of
trees the paper's analysis cares about: uniformly random trees, random
binary trees, paths and caterpillars (deep heavy paths), stars and brooms
(huge fan-out), spiders, balanced binary trees, plus the adversarial
lower-bound families from :mod:`repro.lowerbounds`.
"""

from repro.generators.random_trees import (
    random_binary_tree,
    random_caterpillar,
    random_prufer_tree,
    random_recursive_tree,
)
from repro.generators.structured import (
    balanced_binary_tree,
    broom_tree,
    caterpillar_tree,
    comb_tree,
    path_tree,
    spider_tree,
    star_tree,
)
from repro.generators.workloads import (
    all_pairs,
    random_pairs,
    near_pairs,
    uniform_pairs,
    zipf_pairs,
    pair_workload,
    FAMILIES,
    WORKLOADS,
    make_tree,
)

__all__ = [
    "random_prufer_tree",
    "random_binary_tree",
    "random_recursive_tree",
    "random_caterpillar",
    "path_tree",
    "star_tree",
    "caterpillar_tree",
    "balanced_binary_tree",
    "broom_tree",
    "spider_tree",
    "comb_tree",
    "random_pairs",
    "all_pairs",
    "near_pairs",
    "uniform_pairs",
    "zipf_pairs",
    "pair_workload",
    "FAMILIES",
    "WORKLOADS",
    "make_tree",
]
