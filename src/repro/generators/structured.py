"""Deterministic structured tree families.

These exercise the extremes of the heavy-path machinery: paths (one long
heavy path), stars (one node with huge fan-out), caterpillars and combs
(long spine plus pendant nodes), balanced binary trees (logarithmic depth),
brooms and spiders (mixtures).
"""

from __future__ import annotations

from repro.trees.tree import RootedTree


def path_tree(n: int) -> RootedTree:
    """A path on ``n`` nodes rooted at one end."""
    if n <= 0:
        raise ValueError("n must be positive")
    parents: list[int | None] = [None] + [i for i in range(n - 1)]
    return RootedTree(parents)


def star_tree(n: int) -> RootedTree:
    """A star on ``n`` nodes rooted at the centre."""
    if n <= 0:
        raise ValueError("n must be positive")
    parents: list[int | None] = [None] + [0] * (n - 1)
    return RootedTree(parents)


def caterpillar_tree(n: int, legs_per_node: int = 1) -> RootedTree:
    """A caterpillar: a spine where every spine node has pendant legs."""
    if n <= 0:
        raise ValueError("n must be positive")
    parents: list[int | None] = [None]
    spine = [0]
    node = 1
    while node < n:
        # extend the spine, then attach legs to the new spine node
        parents.append(spine[-1])
        spine.append(node)
        node += 1
        for _ in range(legs_per_node):
            if node >= n:
                break
            parents.append(spine[-1])
            node += 1
    return RootedTree(parents)


def comb_tree(n: int) -> RootedTree:
    """A comb: spine of length ~n/2, one pendant tooth per spine node."""
    return caterpillar_tree(n, legs_per_node=1)


def balanced_binary_tree(n: int) -> RootedTree:
    """A complete binary tree on ``n`` nodes (heap-shaped)."""
    if n <= 0:
        raise ValueError("n must be positive")
    parents: list[int | None] = [None] + [(i - 1) // 2 for i in range(1, n)]
    return RootedTree(parents)


def broom_tree(n: int, handle_fraction: float = 0.5) -> RootedTree:
    """A broom: a path (handle) ending in a star (brush)."""
    if n <= 0:
        raise ValueError("n must be positive")
    handle = max(1, int(n * handle_fraction))
    parents: list[int | None] = [None]
    for node in range(1, handle):
        parents.append(node - 1)
    for _ in range(handle, n):
        parents.append(handle - 1)
    return RootedTree(parents)


def spider_tree(n: int, legs: int = 3) -> RootedTree:
    """A spider: ``legs`` paths of (almost) equal length joined at the root."""
    if n <= 0:
        raise ValueError("n must be positive")
    parents: list[int | None] = [None]
    if n == 1:
        return RootedTree(parents)
    legs = max(1, min(legs, n - 1))
    last_on_leg = [0] * legs
    leg = 0
    for node in range(1, n):
        parents.append(last_on_leg[leg])
        last_on_leg[leg] = node
        leg = (leg + 1) % legs
    return RootedTree(parents)


def binary_caterpillar(n: int) -> RootedTree:
    """A binary caterpillar: spine with a single pendant leaf per spine node.

    This is a worst case for schemes that store one entry per light edge on
    a long heavy path.
    """
    return caterpillar_tree(n, legs_per_node=1)
