"""Ground-truth distance oracles.

These are *not* labeling schemes: they answer queries with full access to the
tree and exist to verify the labeling schemes and to generate workloads.
"""

from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.oracles.distance_matrix import DistanceMatrix

__all__ = ["TreeDistanceOracle", "DistanceMatrix"]
