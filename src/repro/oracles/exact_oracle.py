"""Exact tree-distance oracle based on an LCA sparse table.

``distance(u, v) = root_distance(u) + root_distance(v) - 2 * root_distance(lca(u, v))``
— the identity the paper recalls at the start of Section 2.
"""

from __future__ import annotations

from repro.nca.lca_oracle import LCAOracle
from repro.trees.tree import RootedTree


class TreeDistanceOracle:
    """Answers exact weighted distance queries with full access to the tree."""

    def __init__(self, tree: RootedTree) -> None:
        self._tree = tree
        self._lca = LCAOracle(tree)

    @property
    def tree(self) -> RootedTree:
        """The underlying tree."""
        return self._tree

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v``."""
        return self._lca.query(u, v)

    def distance(self, u: int, v: int) -> int:
        """Weighted distance between ``u`` and ``v``."""
        ancestor = self._lca.query(u, v)
        return (
            self._tree.root_distance(u)
            + self._tree.root_distance(v)
            - 2 * self._tree.root_distance(ancestor)
        )

    def batch_distance(self, pairs) -> list[int]:
        """Distances for many pairs; mirrors ``QueryEngine.batch_distance``."""
        return [self.distance(u, v) for u, v in pairs]

    def distance_matrix(self, nodes=None) -> list[list[int]]:
        """All pairwise distances over ``nodes`` (default: every node)."""
        targets = list(self._tree.nodes()) if nodes is None else list(nodes)
        return [[self.distance(u, v) for v in targets] for u in targets]

    def hop_distance(self, u: int, v: int) -> int:
        """Unweighted (edge count) distance between ``u`` and ``v``."""
        ancestor = self._lca.query(u, v)
        return (
            self._tree.depth(u) + self._tree.depth(v) - 2 * self._tree.depth(ancestor)
        )

    def level_ancestor(self, node: int, steps: int) -> int | None:
        """Ancestor of ``node`` exactly ``steps`` edges above it."""
        current: int | None = node
        for _ in range(steps):
            if current is None:
                return None
            current = self._tree.parent(current)
        return current

    def eccentricity(self, node: int) -> int:
        """Maximum distance from ``node`` to any other node."""
        return max(self.distance(node, other) for other in self._tree.nodes())
