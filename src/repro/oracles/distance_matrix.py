"""Dense all-pairs distance matrix for small trees.

Used by tests and by the counting experiments on lower-bound families, where
we need every pairwise distance of a small instance at once.
"""

from __future__ import annotations

from collections import deque

from repro.trees.tree import RootedTree


class DistanceMatrix:
    """All-pairs weighted distances of a (small) tree."""

    def __init__(self, tree: RootedTree) -> None:
        self._tree = tree
        self._matrix = [self._bfs_from(source) for source in tree.nodes()]

    def _bfs_from(self, source: int) -> list[int]:
        tree = self._tree
        distances = [-1] * tree.n
        distances[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            neighbours = list(tree.children(node))
            parent = tree.parent(node)
            if parent is not None:
                neighbours.append(parent)
            for neighbour in neighbours:
                if distances[neighbour] >= 0:
                    continue
                if neighbour == parent:
                    weight = tree.edge_weight(node)
                else:
                    weight = tree.edge_weight(neighbour)
                distances[neighbour] = distances[node] + weight
                queue.append(neighbour)
        return distances

    def distance(self, u: int, v: int) -> int:
        """Weighted distance between ``u`` and ``v``."""
        return self._matrix[u][v]

    def row(self, node: int) -> list[int]:
        """All distances from ``node``."""
        return list(self._matrix[node])

    def leaf_profile(self, leaves: list[int]) -> tuple[tuple[int, ...], ...]:
        """Pairwise distance profile restricted to ``leaves``.

        Used by the counting experiments on (h, M)-trees: two instances with
        different profiles cannot share all their leaf labels.
        """
        return tuple(
            tuple(self._matrix[a][b] for b in leaves) for a in leaves
        )

    def diameter(self) -> int:
        """Maximum pairwise distance."""
        return max(max(row) for row in self._matrix)
