"""Elias gamma and delta codes (Elias 1975).

The paper uses Elias delta codes to make individual label fields
self-delimiting ("Encoding integers", Section 2): a non-negative integer
``x`` is stored using ``log x + O(log log x)`` bits, and the end of the code
is detectable without knowing its length in advance.

Both codes here encode *non-negative* integers by internally shifting by one
(classic Elias codes are defined for positive integers only).
"""

from __future__ import annotations

from repro.encoding.bitio import BitReader, BitWriter, Bits


def encode_gamma(writer: BitWriter, value: int) -> None:
    """Append the Elias gamma code of ``value`` (``value >= 0``)."""
    if value < 0:
        raise ValueError("Elias gamma encodes non-negative integers only")
    shifted = value + 1
    width = shifted.bit_length()
    # `shifted` has exactly `width` significant bits, so writing it with
    # width `2*width - 1` emits the `width - 1` leading zeros of the unary
    # prefix and the binary part in a single shift.
    writer.write_int(shifted, 2 * width - 1)


def decode_gamma(reader: BitReader) -> int:
    """Read one Elias gamma code and return the encoded value."""
    zeros = reader.read_unary()
    rest = reader.read_int(zeros) if zeros else 0
    return ((1 << zeros) | rest) - 1


def gamma_length(value: int) -> int:
    """Number of bits :func:`encode_gamma` uses for ``value``."""
    if value < 0:
        raise ValueError("Elias gamma encodes non-negative integers only")
    return 2 * (value + 1).bit_length() - 1


def encode_delta(writer: BitWriter, value: int) -> None:
    """Append the Elias delta code of ``value`` (``value >= 0``)."""
    if value < 0:
        raise ValueError("Elias delta encodes non-negative integers only")
    shifted = value + 1
    width = shifted.bit_length()
    encode_gamma(writer, width - 1)
    if width > 1:
        writer.write_int(shifted - (1 << (width - 1)), width - 1)


def decode_delta(reader: BitReader) -> int:
    """Read one Elias delta code and return the encoded value."""
    width = decode_gamma(reader) + 1
    if width == 1:
        return 0
    rest = reader.read_int(width - 1)
    return ((1 << (width - 1)) | rest) - 1


def delta_length(value: int) -> int:
    """Number of bits :func:`encode_delta` uses for ``value``."""
    if value < 0:
        raise ValueError("Elias delta encodes non-negative integers only")
    width = (value + 1).bit_length()
    return gamma_length(width - 1) + (width - 1)


def encode_gamma_bits(value: int) -> Bits:
    """Return the Elias gamma code of ``value`` as a :class:`Bits`."""
    writer = BitWriter()
    encode_gamma(writer, value)
    return writer.getvalue()


def encode_delta_bits(value: int) -> Bits:
    """Return the Elias delta code of ``value`` as a :class:`Bits`."""
    writer = BitWriter()
    encode_delta(writer, value)
    return writer.getvalue()
