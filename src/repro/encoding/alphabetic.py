"""Size-weighted prefix-free codes ("light codes").

Distance labels need an identifier of the root-to-node path in the collapsed
tree whose *total* length is O(log n) bits even though the path may take
Θ(log n) light edges.  The classical trick (used by the O(log n)-bit NCA
labels of Alstrup, Halvorsen and Larsen that the paper invokes as Lemma 2.1)
is to give the ``i``-th light child of a collapsed node a prefix-free
codeword of length about ``log(parent size / child size) + O(1)``.  Summed
along a root-to-node path the sizes telescope, so the concatenation of
codewords is O(log n) bits.

:class:`SizeWeightedCode` assigns such codewords for one node's children;
:func:`path_identifier` concatenates them along a path.
"""

from __future__ import annotations

from repro.encoding.bitio import Bits, BitWriter


class SizeWeightedCode:
    """Prefix-free codewords for children weighted by subtree size.

    Child ``i`` with weight ``w_i`` out of total ``W`` receives a codeword of
    length ``ceil(log2(W / w_i)) + 1`` bits.  The Kraft sum is at most 1/2,
    so a canonical assignment always exists.
    """

    def __init__(self, weights: list[int]) -> None:
        if not weights:
            self._codewords: list[Bits] = []
            return
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        total = sum(weights)
        lengths = [max(1, (total + w - 1) // w - 1).bit_length() + 1 for w in weights]
        # canonical code assignment: process in order of increasing length
        order = sorted(range(len(weights)), key=lambda i: (lengths[i], i))
        codewords: list[Bits | None] = [None] * len(weights)
        code = 0
        previous_length = lengths[order[0]]
        for position, index in enumerate(order):
            length = lengths[index]
            if position > 0:
                code = (code + 1) << (length - previous_length)
            if code >= (1 << length):
                raise ValueError("Kraft inequality violated; weights inconsistent")
            codewords[index] = Bits.from_int(code, length)
            previous_length = length
        self._codewords = [cw for cw in codewords if cw is not None]

    def __len__(self) -> int:
        return len(self._codewords)

    def codeword(self, index: int) -> Bits:
        """Codeword of the ``index``-th child."""
        return self._codewords[index]

    @property
    def codewords(self) -> list[Bits]:
        """All codewords, in child order."""
        return list(self._codewords)

    def total_length(self, index: int) -> int:
        """Length in bits of the ``index``-th codeword."""
        return len(self._codewords[index])


def codeword_length_bound(total: int, weight: int) -> int:
    """Upper bound on the codeword length used for a child of ``weight``."""
    return max(1, (total + weight - 1) // weight - 1).bit_length() + 1


def path_identifier(codewords: list[Bits]) -> Bits:
    """Concatenate per-level codewords into a single path identifier."""
    writer = BitWriter()
    for word in codewords:
        writer.write_bits(word)
    return writer.getvalue()


def common_codeword_prefix(path_a: list[Bits], path_b: list[Bits]) -> int:
    """Number of leading codewords shared by two per-level codeword lists.

    Because the code used at a given collapsed node is deterministic, two
    nodes share the first ``t`` codewords exactly when their root paths in
    the collapsed tree share the first ``t`` light edges.
    """
    count = 0
    for word_a, word_b in zip(path_a, path_b):
        if word_a != word_b:
            break
        count += 1
    return count
