"""Bit-level encoding substrate used by every labeling scheme.

The paper stores labels as short bit strings built from a handful of
primitives (Section 2, "Encoding integers"):

* self-delimiting integer codes (Elias gamma / delta),
* the monotone-sequence encoder of Lemma 2.2 with constant-time access,
  successor and longest-common-suffix operations,
* size-weighted prefix-free codes for identifying light children along a
  root-to-node path in the collapsed tree ("light codes").

This package provides those primitives on top of an explicit
:class:`~repro.encoding.bitio.BitWriter` / :class:`~repro.encoding.bitio.BitReader`
pair so that every label in the library is an honest, measurable bit string.
"""

from repro.encoding.bitio import BitReader, BitWriter, Bits
from repro.encoding.elias import (
    decode_delta,
    decode_gamma,
    encode_delta,
    encode_gamma,
    gamma_length,
    delta_length,
)
from repro.encoding.varint import decode_unary, encode_unary
from repro.encoding.monotone import MonotoneSequence
from repro.encoding.alphabetic import SizeWeightedCode

__all__ = [
    "BitReader",
    "BitWriter",
    "Bits",
    "encode_gamma",
    "decode_gamma",
    "encode_delta",
    "decode_delta",
    "gamma_length",
    "delta_length",
    "encode_unary",
    "decode_unary",
    "MonotoneSequence",
    "SizeWeightedCode",
]
