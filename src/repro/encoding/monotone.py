"""Monotone sequence encoding (Lemma 2.2).

A non-decreasing sequence of ``s`` integers from ``[0, M]`` is stored in
``O(s * max(1, log(M/s)))`` bits by splitting every value into a low part
(fixed width) and a high part (encoded as unary differences, one ``1`` per
element).  The encoding supports

1. random access to the ``k``-th element,
2. successor queries (position of the first element ``>= x``),
3. longest common suffix of two specified prefixes,

exactly the three operations the paper's labels need (distance arrays,
significant-ancestor height sequences, 2-approximation tables).

The encoding is self-delimiting so that it can be embedded inside a larger
label and parsed back without knowing its length in advance.
"""

from __future__ import annotations

from repro.encoding.bitio import BitReader, BitWriter, Bits
from repro.encoding.elias import decode_gamma, encode_gamma
from repro.succinct.bitvector import BitVector
from repro.succinct.predecessor import PredecessorStructure


class MonotoneSequence:
    """A static, bit-packed, non-decreasing integer sequence."""

    def __init__(self, values: list[int]) -> None:
        if any(b < a for a, b in zip(values, values[1:])):
            raise ValueError("MonotoneSequence requires a non-decreasing sequence")
        if any(v < 0 for v in values):
            raise ValueError("MonotoneSequence requires non-negative values")
        self._values = list(values)
        self._bits = self._encode(self._values)
        self._predecessor = PredecessorStructure(self._values)

    # -- encoding ------------------------------------------------------

    @staticmethod
    def _low_width(values: list[int]) -> int:
        if not values:
            return 0
        maximum = values[-1]
        count = len(values)
        return max(0, maximum.bit_length() - count.bit_length())

    @classmethod
    def _encode(cls, values: list[int]) -> Bits:
        writer = BitWriter()
        encode_gamma(writer, len(values))
        if not values:
            return writer.getvalue()
        low_width = cls._low_width(values)
        encode_gamma(writer, low_width)
        mask = (1 << low_width) - 1
        for value in values:
            if low_width:
                writer.write_int(value & mask, low_width)
        previous_high = 0
        for value in values:
            high = value >> low_width
            writer.write_unary(high - previous_high)
            previous_high = high
        return writer.getvalue()

    @property
    def bits(self) -> Bits:
        """The self-delimiting encoding of the sequence."""
        return self._bits

    def bit_length(self) -> int:
        """Size of the encoding in bits."""
        return len(self._bits)

    def write(self, writer: BitWriter) -> None:
        """Append the encoding to an existing writer."""
        writer.write_bits(self._bits)

    @classmethod
    def read(cls, reader: BitReader) -> "MonotoneSequence":
        """Parse an encoding produced by :meth:`write` / :attr:`bits`."""
        count = decode_gamma(reader)
        if count == 0:
            return cls([])
        low_width = decode_gamma(reader)
        lows = [reader.read_int(low_width) if low_width else 0 for _ in range(count)]
        values: list[int] = []
        high = 0
        for index in range(count):
            high += reader.read_unary()
            values.append((high << low_width) | lows[index])
        return cls(values)

    @classmethod
    def from_bits(cls, bits: Bits) -> "MonotoneSequence":
        """Parse a standalone encoding."""
        return cls.read(BitReader(bits))

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __getitem__(self, index: int) -> int:
        """Operation (1) of Lemma 2.2: random access."""
        return self._values[index]

    def to_list(self) -> list[int]:
        """The decoded sequence as a plain list."""
        return list(self._values)

    def successor_position(self, query: int) -> int | None:
        """Operation (2) of Lemma 2.2.

        Return the index of the first element ``>= query`` or ``None`` when
        every element is smaller.
        """
        value = self._predecessor.successor(query)
        if value is None:
            return None
        # first occurrence of the successor value
        lo, hi = 0, len(self._values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._values[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def common_suffix_of_prefixes(
        self, other: "MonotoneSequence", self_prefix: int, other_prefix: int
    ) -> int:
        """Operation (3) of Lemma 2.2.

        Length of the longest common suffix of ``self[:self_prefix]`` and
        ``other[:other_prefix]``.
        """
        if not 0 <= self_prefix <= len(self._values):
            raise IndexError("self_prefix out of range")
        if not 0 <= other_prefix <= len(other._values):
            raise IndexError("other_prefix out of range")
        length = 0
        i = self_prefix - 1
        j = other_prefix - 1
        while i >= 0 and j >= 0 and self._values[i] == other._values[j]:
            length += 1
            i -= 1
            j -= 1
        return length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MonotoneSequence):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MonotoneSequence({self._values!r})"


class UnaryBitVectorView:
    """Rank/select view over the high-part bit vector of a sequence.

    This mirrors how Lemma 2.2's proof recovers the quotients ``y_i`` with a
    select structure: the position of the ``i``-th one, minus ``i``, equals
    ``y_i``.  It is exposed separately so tests can exercise the structure
    the proof describes.
    """

    def __init__(self, values: list[int], low_width: int | None = None) -> None:
        if low_width is None:
            low_width = MonotoneSequence._low_width(sorted(values))
        self._low_width = low_width
        writer = BitWriter()
        previous_high = 0
        for value in values:
            high = value >> low_width
            writer.write_unary(high - previous_high)
            previous_high = high
        self._vector = BitVector(writer.getvalue())

    @property
    def vector(self) -> BitVector:
        """The underlying bit vector."""
        return self._vector

    def high_value(self, index: int) -> int:
        """Recover ``values[index] >> low_width`` via select."""
        position = self._vector.select1(index + 1)
        return position - index
