"""Bit-oriented readers and writers (word-packed).

Labels in this library are bit strings wrapped in the small :class:`Bits`
value type.  ``Bits`` is backed by a single arbitrary-precision integer plus
an explicit bit length: the first (leftmost) bit of the string is the most
significant bit of the integer.  Every hot operation — concatenation,
slicing, fixed-width reads and writes, unary runs, byte packing — is a
shift/mask on machine words, the way the word-RAM model the paper works in
counts operations.  All size accounting (``len(bits)``) remains exact in
bits, and the printable ``'0'``/``'1'`` view is still available through
:attr:`Bits.data` for diagnostics and tests.

The previous character-per-bit implementation is preserved verbatim in
:mod:`repro.encoding.bitio_reference`; the differential test suite
(``tests/test_bitio_packed.py``) checks the two against each other, and the
benchmark runners use it as the recorded pre-packing baseline.
"""

from __future__ import annotations


class BitError(ValueError):
    """Raised when a bit stream is malformed or exhausted."""


class Bits:
    """An immutable bit string backed by ``(int value, int length)``.

    ``Bits`` behaves like a very small value object: it supports length,
    equality, hashing, concatenation, slicing and conversion to and from
    integers and packed bytes.  The constructor accepts the printable
    ``'0'``/``'1'`` form for compatibility (and readability in tests); the
    fast paths never materialise that string.
    """

    __slots__ = ("_value", "_length")

    def __init__(self, data: str = "") -> None:
        if isinstance(data, Bits):
            value, length = data._value, data._length
        else:
            length = len(data)
            if length and (set(data) - {"0", "1"}):
                raise BitError(f"invalid characters in bit string: {data!r}")
            value = int(data, 2) if length else 0
        object.__setattr__(self, "_value", value)
        object.__setattr__(self, "_length", length)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Bits is immutable")

    def __reduce__(self):
        # the immutability guard blocks default pickle/deepcopy state
        # restoration; rebuild through the packed constructor instead
        return (Bits._pack, (self._value, self._length))

    @classmethod
    def _pack(cls, value: int, length: int) -> "Bits":
        """Internal fast constructor: ``value`` must fit in ``length`` bits."""
        self = object.__new__(cls)
        object.__setattr__(self, "_value", value)
        object.__setattr__(self, "_length", length)
        return self

    @property
    def data(self) -> str:
        """The printable ``'0'``/``'1'`` form (materialised on demand)."""
        length = self._length
        return format(self._value, f"0{length}b") if length else ""

    def __len__(self) -> int:
        return self._length

    def __iter__(self):
        return iter(self.data)

    def __getitem__(self, item) -> "Bits":
        length = self._length
        if isinstance(item, slice):
            start, stop, step = item.indices(length)
            if step == 1:
                if stop <= start:
                    return _EMPTY
                width = stop - start
                return Bits._pack(
                    (self._value >> (length - stop)) & ((1 << width) - 1), width
                )
            return Bits(self.data[item])
        if item < 0:
            item += length
        if not 0 <= item < length:
            raise IndexError("Bits index out of range")
        return _ONE if (self._value >> (length - 1 - item)) & 1 else _ZERO

    def __add__(self, other: "Bits") -> "Bits":
        return Bits._pack(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def __bool__(self) -> bool:
        return self._length > 0

    def __eq__(self, other) -> bool:
        if isinstance(other, Bits):
            return self._length == other._length and self._value == other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._length, self._value))

    def to_int(self) -> int:
        """Interpret the bits as a big-endian binary number (empty -> 0)."""
        return self._value

    @staticmethod
    def from_int(value: int, width: int | None = None) -> "Bits":
        """Encode ``value`` in binary, optionally zero-padded to ``width`` bits."""
        if value < 0:
            raise BitError("Bits.from_int expects a non-negative integer")
        if width is None:
            return Bits._pack(value, value.bit_length())
        if width < 0:
            raise BitError("width must be non-negative")
        if value >> width:
            raise BitError(f"value {value} does not fit in {width} bits")
        return Bits._pack(value, width)

    def to_bytes(self) -> bytes:
        """Pack the bits into bytes, MSB-first, zero-padded at the end.

        The first bit of the string becomes the highest bit of the first
        byte; a trailing partial byte is padded with zeros on the right.
        ``len(self)`` must be remembered separately to invert exactly —
        see :meth:`from_bytes`.
        """
        length = self._length
        if not length:
            return b""
        count = (length + 7) // 8
        return (self._value << (count * 8 - length)).to_bytes(count, "big")

    @staticmethod
    def from_bytes(data, bit_length: int) -> "Bits":
        """Unpack ``bit_length`` MSB-first bits from ``data``.

        ``data`` may be ``bytes`` or a ``memoryview`` (zero-copy slices of a
        :class:`repro.store.LabelStore` buffer); only the first
        ``ceil(bit_length / 8)`` bytes are examined.  No intermediate
        character string is built: the bytes become the packed integer
        directly.
        """
        if bit_length < 0:
            raise BitError("bit_length must be non-negative")
        if bit_length == 0:
            return _EMPTY
        count = (bit_length + 7) // 8
        if len(data) < count:
            raise BitError(
                f"need {count} bytes for {bit_length} bits, got {len(data)}"
            )
        value = int.from_bytes(data[:count], "big") >> (count * 8 - bit_length)
        return Bits._pack(value, bit_length)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Bits(data={self.data!r})"


_EMPTY = Bits._pack(0, 0)
_ZERO = Bits._pack(0, 1)
_ONE = Bits._pack(1, 1)


class BitWriter:
    """Accumulates bits into a single integer and produces a :class:`Bits`."""

    __slots__ = ("_value", "_length")

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise BitError(f"bit must be 0 or 1, got {bit!r}")
        self._value = (self._value << 1) | (1 if bit else 0)
        self._length += 1

    def write_bits(self, bits: "Bits | str") -> None:
        """Append an existing bit string."""
        if isinstance(bits, Bits):
            self._value = (self._value << bits._length) | bits._value
            self._length += bits._length
            return
        length = len(bits)
        if length and (set(bits) - {"0", "1"}):
            raise BitError(f"invalid characters in bit string: {bits!r}")
        self._value = (self._value << length) | (int(bits, 2) if length else 0)
        self._length += length

    def write_int(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed-width big-endian binary number."""
        if value < 0:
            raise BitError("Bits.from_int expects a non-negative integer")
        if width < 0:
            raise BitError("width must be non-negative")
        if value >> width:
            raise BitError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._length += width

    def write_zeros(self, count: int) -> None:
        """Append a run of ``count`` zero bits (one shift, no loop)."""
        if count < 0:
            raise BitError("count must be non-negative")
        self._value <<= count
        self._length += count

    def write_unary(self, value: int) -> None:
        """Append the unary code ``0^value 1`` (one shift, no loop)."""
        if value < 0:
            raise BitError("unary code encodes non-negative integers only")
        self._value = (self._value << (value + 1)) | 1
        self._length += value + 1

    def getvalue(self) -> Bits:
        """Return everything written so far as a single :class:`Bits`."""
        return Bits._pack(self._value, self._length)


class BitReader:
    """Sequential reader over a :class:`Bits` value (word-at-a-time)."""

    __slots__ = ("_value", "_length", "_pos")

    def __init__(self, bits: "Bits | str") -> None:
        if not isinstance(bits, Bits):
            bits = Bits(bits)
        self._value = bits._value
        self._length = bits._length
        self._pos = 0

    @classmethod
    def from_bytes(cls, data, bit_length: int) -> "BitReader":
        """Build a reader straight from packed bytes (or a ``memoryview``).

        This is the zero-copy entry point of the store serving pipeline: the
        stored label bytes become the reader's integer directly, with no
        intermediate :class:`Bits` (let alone a character string).
        """
        if bit_length < 0:
            raise BitError("bit_length must be non-negative")
        count = (bit_length + 7) // 8
        if len(data) < count:
            raise BitError(
                f"need {count} bytes for {bit_length} bits, got {len(data)}"
            )
        self = object.__new__(cls)
        self._value = (
            int.from_bytes(data[:count], "big") >> (count * 8 - bit_length)
            if bit_length
            else 0
        )
        self._length = bit_length
        self._pos = 0
        return self

    @property
    def position(self) -> int:
        """Current read offset in bits."""
        return self._pos

    def seek(self, position: int) -> None:
        """Move the read cursor to an absolute bit offset."""
        if not 0 <= position <= self._length:
            raise BitError(f"seek position {position} out of range")
        self._pos = position

    def remaining(self) -> int:
        """Number of unread bits."""
        return self._length - self._pos

    def read_bit(self) -> int:
        """Read a single bit."""
        pos = self._pos
        if pos >= self._length:
            raise BitError("bit stream exhausted")
        self._pos = pos + 1
        return (self._value >> (self._length - pos - 1)) & 1

    def read_bits(self, count: int) -> Bits:
        """Read ``count`` bits as a :class:`Bits` value."""
        if count < 0:
            raise BitError("count must be non-negative")
        pos = self._pos
        if pos + count > self._length:
            raise BitError("bit stream exhausted")
        self._pos = pos + count
        return Bits._pack(
            (self._value >> (self._length - pos - count)) & ((1 << count) - 1),
            count,
        )

    def read_int(self, width: int) -> int:
        """Read a fixed-width big-endian binary number."""
        if width < 0:
            raise BitError("count must be non-negative")
        pos = self._pos
        if pos + width > self._length:
            raise BitError("bit stream exhausted")
        self._pos = pos + width
        return (self._value >> (self._length - pos - width)) & ((1 << width) - 1)

    def read_unary(self) -> int:
        """Read a unary code ``0^k 1`` and return ``k`` (the zero count).

        The run length is found with a single ``bit_length`` call on the
        unread suffix instead of a bit-by-bit loop.
        """
        rem = self._length - self._pos
        if rem <= 0:
            raise BitError("bit stream exhausted")
        suffix = self._value & ((1 << rem) - 1)
        if not suffix:
            raise BitError("bit stream exhausted")
        zeros = rem - suffix.bit_length()
        self._pos += zeros + 1
        return zeros

    def peek_bit(self) -> int:
        """Look at the next bit without consuming it."""
        if self._pos >= self._length:
            raise BitError("bit stream exhausted")
        return (self._value >> (self._length - self._pos - 1)) & 1
