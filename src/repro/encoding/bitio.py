"""Bit-oriented readers and writers.

Labels in this library are plain Python strings of ``'0'``/``'1'`` characters
wrapped in the small :class:`Bits` value type.  A character-per-bit
representation is deliberately simple: the library's goal is to *measure*
label sizes and to make the decoding logic transparent, not to squeeze the
last nanosecond out of CPython.  All size accounting (``len(bits)``) is exact
in bits.
"""

from __future__ import annotations

from dataclasses import dataclass


class BitError(ValueError):
    """Raised when a bit stream is malformed or exhausted."""


@dataclass(frozen=True)
class Bits:
    """An immutable bit string.

    ``Bits`` behaves like a very small value object: it supports length,
    equality, concatenation, slicing and conversion to and from integers.
    """

    data: str = ""

    def __post_init__(self) -> None:
        if self.data and set(self.data) - {"0", "1"}:
            raise BitError(f"invalid characters in bit string: {self.data!r}")

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self):
        return iter(self.data)

    def __getitem__(self, item) -> "Bits":
        if isinstance(item, slice):
            return Bits(self.data[item])
        return Bits(self.data[item])

    def __add__(self, other: "Bits") -> "Bits":
        return Bits(self.data + other.data)

    def __bool__(self) -> bool:
        return bool(self.data)

    def to_int(self) -> int:
        """Interpret the bits as a big-endian binary number (empty -> 0)."""
        return int(self.data, 2) if self.data else 0

    @staticmethod
    def from_int(value: int, width: int | None = None) -> "Bits":
        """Encode ``value`` in binary, optionally zero-padded to ``width`` bits."""
        if value < 0:
            raise BitError("Bits.from_int expects a non-negative integer")
        if width is None:
            return Bits(bin(value)[2:] if value else "")
        if width < 0:
            raise BitError("width must be non-negative")
        if value >= (1 << width) and width > 0:
            raise BitError(f"value {value} does not fit in {width} bits")
        if width == 0:
            if value:
                raise BitError(f"value {value} does not fit in 0 bits")
            return Bits("")
        return Bits(format(value, f"0{width}b"))

    def to_bytes(self) -> bytes:
        """Pack the bits into bytes, MSB-first, zero-padded at the end.

        The first bit of the string becomes the highest bit of the first
        byte; a trailing partial byte is padded with zeros on the right.
        ``len(self)`` must be remembered separately to invert exactly —
        see :meth:`from_bytes`.
        """
        if not self.data:
            return b""
        count = (len(self.data) + 7) // 8
        padded = self.data.ljust(count * 8, "0")
        return int(padded, 2).to_bytes(count, "big")

    @staticmethod
    def from_bytes(data, bit_length: int) -> "Bits":
        """Unpack ``bit_length`` MSB-first bits from ``data``.

        ``data`` may be ``bytes`` or a ``memoryview`` (zero-copy slices of a
        :class:`repro.store.LabelStore` buffer); only the first
        ``ceil(bit_length / 8)`` bytes are examined.
        """
        if bit_length < 0:
            raise BitError("bit_length must be non-negative")
        if bit_length == 0:
            return Bits("")
        count = (bit_length + 7) // 8
        if len(data) < count:
            raise BitError(
                f"need {count} bytes for {bit_length} bits, got {len(data)}"
            )
        value = int.from_bytes(bytes(data[:count]), "big")
        return Bits(format(value, f"0{count * 8}b")[:bit_length])

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return self.data


class BitWriter:
    """Accumulates bits and produces a :class:`Bits` value."""

    def __init__(self) -> None:
        self._chunks: list[str] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise BitError(f"bit must be 0 or 1, got {bit!r}")
        self._chunks.append("1" if bit else "0")
        self._length += 1

    def write_bits(self, bits: Bits | str) -> None:
        """Append an existing bit string."""
        data = bits.data if isinstance(bits, Bits) else bits
        if data and set(data) - {"0", "1"}:
            raise BitError(f"invalid characters in bit string: {data!r}")
        self._chunks.append(data)
        self._length += len(data)

    def write_int(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed-width big-endian binary number."""
        self.write_bits(Bits.from_int(value, width))

    def getvalue(self) -> Bits:
        """Return everything written so far as a single :class:`Bits`."""
        return Bits("".join(self._chunks))


class BitReader:
    """Sequential reader over a :class:`Bits` value."""

    def __init__(self, bits: Bits | str) -> None:
        self._data = bits.data if isinstance(bits, Bits) else bits
        self._pos = 0

    @property
    def position(self) -> int:
        """Current read offset in bits."""
        return self._pos

    def seek(self, position: int) -> None:
        """Move the read cursor to an absolute bit offset."""
        if not 0 <= position <= len(self._data):
            raise BitError(f"seek position {position} out of range")
        self._pos = position

    def remaining(self) -> int:
        """Number of unread bits."""
        return len(self._data) - self._pos

    def read_bit(self) -> int:
        """Read a single bit."""
        if self._pos >= len(self._data):
            raise BitError("bit stream exhausted")
        bit = 1 if self._data[self._pos] == "1" else 0
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> Bits:
        """Read ``count`` bits as a :class:`Bits` value."""
        if count < 0:
            raise BitError("count must be non-negative")
        if self._pos + count > len(self._data):
            raise BitError("bit stream exhausted")
        out = self._data[self._pos : self._pos + count]
        self._pos += count
        return Bits(out)

    def read_int(self, width: int) -> int:
        """Read a fixed-width big-endian binary number."""
        return self.read_bits(width).to_int()

    def peek_bit(self) -> int:
        """Look at the next bit without consuming it."""
        if self._pos >= len(self._data):
            raise BitError("bit stream exhausted")
        return 1 if self._data[self._pos] == "1" else 0
