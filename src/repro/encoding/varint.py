"""Small auxiliary integer codes: unary and bounded binary.

The unary code ``0^x 1`` is used by Lemma 2.2 to encode the quotient
sequence, and bounded binary codes ("write x using exactly ceil(log2 M)
bits") are used whenever a field has a known universe.
"""

from __future__ import annotations

from repro.encoding.bitio import BitReader, BitWriter


def encode_unary(writer: BitWriter, value: int) -> None:
    """Append ``value`` zeros followed by a terminating one."""
    if value < 0:
        raise ValueError("unary code encodes non-negative integers only")
    writer.write_bits("0" * value + "1")


def decode_unary(reader: BitReader) -> int:
    """Read a unary code and return the number of leading zeros."""
    count = 0
    while reader.read_bit() == 0:
        count += 1
    return count


def bounded_width(universe: int) -> int:
    """Width in bits needed to store any value in ``[0, universe]``."""
    if universe < 0:
        raise ValueError("universe must be non-negative")
    return max(1, universe.bit_length())


def encode_bounded(writer: BitWriter, value: int, universe: int) -> None:
    """Append ``value`` using ``bounded_width(universe)`` bits."""
    if not 0 <= value <= universe:
        raise ValueError(f"value {value} outside universe [0, {universe}]")
    writer.write_int(value, bounded_width(universe))


def decode_bounded(reader: BitReader, universe: int) -> int:
    """Read a value written by :func:`encode_bounded`."""
    return reader.read_int(bounded_width(universe))
