"""Small auxiliary integer codes: unary, bounded binary and byte varints.

The unary code ``0^x 1`` is used by Lemma 2.2 to encode the quotient
sequence, and bounded binary codes ("write x using exactly ceil(log2 M)
bits") are used whenever a field has a known universe.

The byte-level LEB128 varint (``encode_uvarint``/``decode_uvarint``) is the
framing code of the :mod:`repro.store` binary format: unlike the bit codes
above it keeps every field byte-aligned so stored labels can be sliced
zero-copy with :class:`memoryview`.
"""

from __future__ import annotations

from repro.encoding.bitio import BitReader, BitWriter


def encode_unary(writer: BitWriter, value: int) -> None:
    """Append ``value`` zeros followed by a terminating one."""
    if value < 0:
        raise ValueError("unary code encodes non-negative integers only")
    writer.write_unary(value)


def decode_unary(reader: BitReader) -> int:
    """Read a unary code and return the number of leading zeros."""
    return reader.read_unary()


def bounded_width(universe: int) -> int:
    """Width in bits needed to store any value in ``[0, universe]``."""
    if universe < 0:
        raise ValueError("universe must be non-negative")
    return max(1, universe.bit_length())


def encode_bounded(writer: BitWriter, value: int, universe: int) -> None:
    """Append ``value`` using ``bounded_width(universe)`` bits."""
    if not 0 <= value <= universe:
        raise ValueError(f"value {value} outside universe [0, {universe}]")
    writer.write_int(value, bounded_width(universe))


def decode_bounded(reader: BitReader, universe: int) -> int:
    """Read a value written by :func:`encode_bounded`."""
    return reader.read_int(bounded_width(universe))


#: all 128 one-byte codes, precomputed: the wire protocol encodes several
#: small fields (opcount, name length, frame length) per message
_ONE_BYTE = [bytes((value,)) for value in range(128)]


def encode_uvarint(value: int) -> bytes:
    """LEB128: 7 value bits per byte, high bit set on all but the last."""
    if 0 <= value < 128:
        return _ONE_BYTE[value]
    if value < 0:
        raise ValueError("uvarint encodes non-negative integers only")
    if value < 16384:
        return bytes((0x80 | (value & 0x7F), value >> 7))
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data, offset: int = 0) -> tuple[int, int]:
    """Read one LEB128 varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.  ``data`` may be ``bytes``,
    ``bytearray`` or a ``memoryview``.
    """
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated uvarint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise ValueError("uvarint too long (corrupt stream?)")
