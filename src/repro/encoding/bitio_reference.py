"""The pre-packing, character-per-bit bit layer (frozen reference).

This is the original ``repro.encoding.bitio`` implementation, kept verbatim
(plus the few newer entry points — ``write_zeros``, ``write_unary``,
``read_unary``, ``BitReader.from_bytes`` — implemented here in the same
string style so the shared codec functions in :mod:`repro.encoding.elias`,
:mod:`repro.encoding.varint` and :mod:`repro.encoding.monotone` run
unchanged against either backend).

It exists for two reasons:

* the differential test suite (``tests/test_bitio_packed.py``) checks every
  operation of the packed :mod:`repro.encoding.bitio` against this
  implementation, and
* the benchmark runners (``benchmarks/bench_query_time.py``,
  ``benchmarks/bench_encode_time.py``) measure it as the recorded pre-PR
  baseline, so the speedup of the word-packed layer stays an empirical
  number rather than a claim.

Nothing in the library imports this module on a hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding.bitio import BitError


@dataclass(frozen=True)
class Bits:
    """An immutable bit string stored as a ``'0'``/``'1'`` character string."""

    data: str = ""

    def __post_init__(self) -> None:
        if self.data and set(self.data) - {"0", "1"}:
            raise BitError(f"invalid characters in bit string: {self.data!r}")

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self):
        return iter(self.data)

    def __getitem__(self, item) -> "Bits":
        if isinstance(item, slice):
            return Bits(self.data[item])
        return Bits(self.data[item])

    def __add__(self, other: "Bits") -> "Bits":
        return Bits(self.data + other.data)

    def __bool__(self) -> bool:
        return bool(self.data)

    def to_int(self) -> int:
        """Interpret the bits as a big-endian binary number (empty -> 0)."""
        return int(self.data, 2) if self.data else 0

    @staticmethod
    def from_int(value: int, width: int | None = None) -> "Bits":
        """Encode ``value`` in binary, optionally zero-padded to ``width`` bits."""
        if value < 0:
            raise BitError("Bits.from_int expects a non-negative integer")
        if width is None:
            return Bits(bin(value)[2:] if value else "")
        if width < 0:
            raise BitError("width must be non-negative")
        if value >= (1 << width) and width > 0:
            raise BitError(f"value {value} does not fit in {width} bits")
        if width == 0:
            if value:
                raise BitError(f"value {value} does not fit in 0 bits")
            return Bits("")
        return Bits(format(value, f"0{width}b"))

    def to_bytes(self) -> bytes:
        """Pack the bits into bytes, MSB-first, zero-padded at the end."""
        if not self.data:
            return b""
        count = (len(self.data) + 7) // 8
        padded = self.data.ljust(count * 8, "0")
        return int(padded, 2).to_bytes(count, "big")

    @staticmethod
    def from_bytes(data, bit_length: int) -> "Bits":
        """Unpack ``bit_length`` MSB-first bits from ``data``."""
        if bit_length < 0:
            raise BitError("bit_length must be non-negative")
        if bit_length == 0:
            return Bits("")
        count = (bit_length + 7) // 8
        if len(data) < count:
            raise BitError(
                f"need {count} bytes for {bit_length} bits, got {len(data)}"
            )
        value = int.from_bytes(bytes(data[:count]), "big")
        return Bits(format(value, f"0{count * 8}b")[:bit_length])

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return self.data


class BitWriter:
    """Accumulates bits (as string chunks) and produces a :class:`Bits`."""

    def __init__(self) -> None:
        self._chunks: list[str] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise BitError(f"bit must be 0 or 1, got {bit!r}")
        self._chunks.append("1" if bit else "0")
        self._length += 1

    def write_bits(self, bits: "Bits | str") -> None:
        """Append an existing bit string."""
        data = bits.data if isinstance(bits, Bits) else bits
        if data and set(data) - {"0", "1"}:
            raise BitError(f"invalid characters in bit string: {data!r}")
        self._chunks.append(data)
        self._length += len(data)

    def write_int(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed-width big-endian binary number."""
        self.write_bits(Bits.from_int(value, width))

    def write_zeros(self, count: int) -> None:
        """Append a run of ``count`` zero bits."""
        if count < 0:
            raise BitError("count must be non-negative")
        self._chunks.append("0" * count)
        self._length += count

    def write_unary(self, value: int) -> None:
        """Append the unary code ``0^value 1``."""
        if value < 0:
            raise BitError("unary code encodes non-negative integers only")
        self._chunks.append("0" * value + "1")
        self._length += value + 1

    def getvalue(self) -> Bits:
        """Return everything written so far as a single :class:`Bits`."""
        return Bits("".join(self._chunks))


class BitReader:
    """Sequential reader over a :class:`Bits` value (character cursor)."""

    def __init__(self, bits: "Bits | str") -> None:
        self._data = bits.data if isinstance(bits, Bits) else bits
        self._pos = 0

    @classmethod
    def from_bytes(cls, data, bit_length: int) -> "BitReader":
        """Build a reader from packed bytes via the string round-trip."""
        return cls(Bits.from_bytes(data, bit_length))

    @property
    def position(self) -> int:
        """Current read offset in bits."""
        return self._pos

    def seek(self, position: int) -> None:
        """Move the read cursor to an absolute bit offset."""
        if not 0 <= position <= len(self._data):
            raise BitError(f"seek position {position} out of range")
        self._pos = position

    def remaining(self) -> int:
        """Number of unread bits."""
        return len(self._data) - self._pos

    def read_bit(self) -> int:
        """Read a single bit."""
        if self._pos >= len(self._data):
            raise BitError("bit stream exhausted")
        bit = 1 if self._data[self._pos] == "1" else 0
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> Bits:
        """Read ``count`` bits as a :class:`Bits` value."""
        if count < 0:
            raise BitError("count must be non-negative")
        if self._pos + count > len(self._data):
            raise BitError("bit stream exhausted")
        out = self._data[self._pos : self._pos + count]
        self._pos += count
        return Bits(out)

    def read_int(self, width: int) -> int:
        """Read a fixed-width big-endian binary number."""
        return self.read_bits(width).to_int()

    def read_unary(self) -> int:
        """Read a unary code ``0^k 1`` and return ``k``, bit by bit."""
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count

    def peek_bit(self) -> int:
        """Look at the next bit without consuming it."""
        if self._pos >= len(self._data):
            raise BitError("bit stream exhausted")
        return 1 if self._data[self._pos] == "1" else 0
