"""Nearest-common-ancestor machinery.

The paper's schemes consume an NCA labeling scheme (Lemma 2.1) only through
two capabilities: given two labels, report ``lightdepth(NCA(u, v))`` and
decide which endpoint *dominates* the other.  This package provides

* :class:`~repro.nca.lca_oracle.LCAOracle` — a classical Euler-tour +
  sparse-table oracle (full tree access; used at encode time and as ground
  truth),
* :class:`~repro.nca.labels.LightDepthLabeling` — O(log n)-bit labels that
  provide exactly the two capabilities above,
* :class:`~repro.nca.nca_labeling.NCALabeling` — a labeling scheme that
  returns the (canonical) label of the NCA itself, mirroring how Section 3.6
  reconstructs ancestors from label prefixes.
"""

from repro.nca.lca_oracle import LCAOracle
from repro.nca.labels import LightDepthLabel, LightDepthLabeling
from repro.nca.nca_labeling import NCALabeling

__all__ = ["LCAOracle", "LightDepthLabel", "LightDepthLabeling", "NCALabeling"]
