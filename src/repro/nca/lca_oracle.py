"""Euler-tour + sparse-table LCA oracle.

O(n log n) preprocessing, O(1) queries.  This is a substrate (full tree
access), not a labeling scheme; the labeling schemes use it while *encoding*
and the tests use it as ground truth.
"""

from __future__ import annotations

from repro.trees.traversal import euler_tour
from repro.trees.tree import RootedTree


class LCAOracle:
    """Constant-time lowest-common-ancestor queries after preprocessing."""

    def __init__(self, tree: RootedTree) -> None:
        self._tree = tree
        tour, depths, first = euler_tour(tree)
        self._tour = tour
        self._first = first
        self._build_sparse_table(depths)

    def _build_sparse_table(self, depths: list[int]) -> None:
        m = len(depths)
        # table[j][i] = index (into the tour) of the minimum-depth entry in
        # the window [i, i + 2^j)
        table: list[list[int]] = [list(range(m))]
        j = 1
        while (1 << j) <= m:
            previous = table[j - 1]
            width = 1 << (j - 1)
            current = []
            for i in range(m - (1 << j) + 1):
                left = previous[i]
                right = previous[i + width]
                current.append(left if depths[left] <= depths[right] else right)
            table.append(current)
            j += 1
        self._table = table
        self._depths = depths
        self._log = [0] * (m + 1)
        for i in range(2, m + 1):
            self._log[i] = self._log[i // 2] + 1

    def query(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v``."""
        left = self._first[u]
        right = self._first[v]
        if left > right:
            left, right = right, left
        length = right - left + 1
        k = self._log[length]
        a = self._table[k][left]
        b = self._table[k][right - (1 << k) + 1]
        best = a if self._depths[a] <= self._depths[b] else b
        return self._tour[best]

    def distance(self, u: int, v: int) -> int:
        """Weighted distance computed through the LCA."""
        ancestor = self.query(u, v)
        return (
            self._tree.root_distance(u)
            + self._tree.root_distance(v)
            - 2 * self._tree.root_distance(ancestor)
        )
