"""An NCA labeling scheme in the style the paper relies on (Lemma 2.1).

Given the labels of ``u`` and ``v`` the scheme returns the *canonical label*
of ``NCA(u, v)`` together with ``lightdepth(u, v)`` and the root distance of
the NCA.  Labels are the hierarchical ``h0.l1.h1 ... lk.hk`` descriptions
used by Section 3.6: per collapsed-tree level, the codeword of the light
child taken and the (weighted) offset along the heavy path of the point
where the path leaves it.

Label size is O(log n) codeword bits plus O(log n) offsets; each offset is
Elias-coded, so the total is O(log² n) bits in the worst case.  (The
O(log n)-bit NCA labels of Alstrup, Halvorsen and Larsen compress the offset
sequence further; the distance schemes in :mod:`repro.core` never need the
full NCA label — they consume only :class:`~repro.nca.labels.LightDepthLabeling` —
so we keep this module simple and honest about its size.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding.bitio import BitReader, BitWriter, Bits
from repro.encoding.elias import decode_delta, decode_gamma, encode_delta, encode_gamma
from repro.nca.labels import LightDepthLabeling
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree


@dataclass
class NCALabel:
    """Hierarchical description of a node's position.

    ``codewords[i]`` identifies the light child taken at level ``i``;
    ``exit_distances[i]`` is the weighted root distance of the node where the
    path leaves the ``i``-th heavy path (for the last level it is the root
    distance of the node itself).
    """

    codewords: list[Bits]
    exit_distances: list[int]

    @property
    def light_depth(self) -> int:
        """Number of light edges on the root path."""
        return len(self.codewords)

    @property
    def root_distance(self) -> int:
        """Weighted distance from the root."""
        return self.exit_distances[-1]

    def to_bits(self) -> Bits:
        """Serialise the label."""
        writer = BitWriter()
        encode_gamma(writer, len(self.codewords))
        for word in self.codewords:
            encode_gamma(writer, len(word))
            writer.write_bits(word)
        for value in self.exit_distances:
            encode_delta(writer, value)
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "NCALabel":
        """Parse a serialised label."""
        reader = BitReader(bits)
        count = decode_gamma(reader)
        codewords = []
        for _ in range(count):
            length = decode_gamma(reader)
            codewords.append(reader.read_bits(length))
        exits = [decode_delta(reader) for _ in range(count + 1)]
        return cls(codewords, exits)

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())

    def key(self) -> tuple:
        """Hashable identity of the label (labels are unique per node)."""
        return (
            tuple(self.codewords),
            tuple(self.exit_distances),
        )


class NCALabeling:
    """Encode NCA labels and answer NCA queries from pairs of labels."""

    def __init__(self, tree: RootedTree) -> None:
        self._tree = tree
        self._collapsed = CollapsedTree(HeavyPathDecomposition(tree))
        self._light = LightDepthLabeling(tree, self._collapsed)

    def label(self, node: int) -> NCALabel:
        """Build the label of one node."""
        collapsed = self._collapsed
        tree = self._tree
        sequence = collapsed.root_path_sequence(node)
        codewords = self._light.codewords_for(node)
        exits: list[int] = []
        for index, path in enumerate(sequence):
            if index + 1 < len(sequence):
                branch = collapsed.branch_node(sequence[index + 1])
                exits.append(tree.root_distance(branch))
            else:
                exits.append(tree.root_distance(node))
        return NCALabel(codewords, exits)

    def encode(self) -> dict[int, NCALabel]:
        """Labels for every node."""
        return {node: self.label(node) for node in self._tree.nodes()}

    @staticmethod
    def nca(label_a: NCALabel, label_b: NCALabel) -> tuple[NCALabel, int, int]:
        """NCA query from two labels.

        Returns ``(label of NCA, lightdepth(a, b), root distance of NCA)``.
        """
        common = 0
        for word_a, word_b in zip(label_a.codewords, label_b.codewords):
            if word_a != word_b:
                break
            common += 1
        exit_a = label_a.exit_distances[common]
        exit_b = label_b.exit_distances[common]
        root_distance = min(exit_a, exit_b)
        nca_label = NCALabel(
            codewords=label_a.codewords[:common],
            exit_distances=label_a.exit_distances[:common] + [root_distance],
        )
        return nca_label, common, root_distance

    @staticmethod
    def distance(label_a: NCALabel, label_b: NCALabel) -> int:
        """Exact distance derived from the NCA query (sanity helper)."""
        _, _, root_distance = NCALabeling.nca(label_a, label_b)
        return label_a.root_distance + label_b.root_distance - 2 * root_distance
