"""Light-depth labels (the role Lemma 2.1 plays in the distance schemes).

The distance labeling schemes of Section 3 consume an NCA labeling scheme
only through two operations on a *pair* of labels:

* ``lightdepth(u, v)`` — the number of light edges on the path from the root
  to ``NCA(u, v)``, equivalently the depth in the collapsed tree of the
  deepest heavy path shared by the two root paths, and
* the *domination* order of Lemma 3.1 (which endpoint leaves the NCA through
  the shallower / non-exceptional light edge).

:class:`LightDepthLabeling` provides exactly those two operations from
O(log n)-bit labels: each label stores the sequence of size-weighted
prefix-free codewords identifying its path in the collapsed tree (total
length O(log n) because subtree sizes telescope) plus the postorder
(domination) number of its heavy path.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.encoding.alphabetic import SizeWeightedCode, common_codeword_prefix
from repro.encoding.bitio import BitReader, BitWriter, Bits
from repro.encoding.elias import decode_delta, decode_gamma, encode_delta, encode_gamma
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree


@dataclass
class LightDepthLabel:
    """Per-node label supporting light-depth-of-NCA and domination queries."""

    light_depth: int
    codewords: list[Bits]
    domination: int

    def to_bits(self) -> Bits:
        """Serialise the label as a self-delimiting bit string."""
        writer = BitWriter()
        self.write(writer)
        return writer.getvalue()

    def write(self, writer: BitWriter) -> None:
        """Append the label to an existing writer."""
        encode_gamma(writer, self.light_depth)
        for word in self.codewords:
            encode_gamma(writer, len(word))
            writer.write_bits(word)
        encode_delta(writer, self.domination)

    @classmethod
    def read(cls, reader: BitReader) -> "LightDepthLabel":
        """Parse a label previously produced by :meth:`write`."""
        light_depth = decode_gamma(reader)
        codewords = []
        for _ in range(light_depth):
            length = decode_gamma(reader)
            codewords.append(reader.read_bits(length))
        domination = decode_delta(reader)
        return cls(light_depth, codewords, domination)

    @classmethod
    def from_bits(cls, bits: Bits) -> "LightDepthLabel":
        """Parse a standalone label."""
        return cls.read(BitReader(bits))

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())


class LightDepthLabeling:
    """Assigns :class:`LightDepthLabel` to every node of a tree."""

    def __init__(
        self,
        tree: RootedTree,
        collapsed: CollapsedTree | None = None,
    ) -> None:
        if collapsed is None:
            collapsed = CollapsedTree(HeavyPathDecomposition(tree))
        self._tree = tree
        self._collapsed = collapsed
        # codewords packed as (value, bit length) array rows indexed by
        # collapsed path id — 10 bytes per path instead of a dict entry and
        # a Bits object each (codewords are O(log n) bits, far under the 63
        # the value word holds; anything longer falls back to a side dict)
        self._codeword_value = array("q", bytes(8 * len(collapsed)))
        self._codeword_length = array("h", bytes(2 * len(collapsed)))
        self._codeword_wide: dict[int, Bits] = {}
        self._build_codes()

    def _build_codes(self) -> None:
        collapsed = self._collapsed
        tree = self._tree
        for node in range(len(collapsed)):
            children = collapsed.children(node)
            if not children:
                continue
            weights = [tree.subtree_size(collapsed.head(child)) for child in children]
            code = SizeWeightedCode(weights)
            for index, child in enumerate(children):
                word = code.codeword(index)
                if len(word) < 64:
                    self._codeword_value[child] = word.to_int()
                    self._codeword_length[child] = len(word)
                else:
                    self._codeword_length[child] = -1
                    self._codeword_wide[child] = word

    def _codeword_of(self, path: int) -> Bits:
        length = self._codeword_length[path]
        if length < 0:
            return self._codeword_wide[path]
        return Bits.from_int(self._codeword_value[path], length)

    @property
    def collapsed(self) -> CollapsedTree:
        """The collapsed tree the codes were built over."""
        return self._collapsed

    def codewords_for(self, tree_node: int) -> list[Bits]:
        """Per-level codewords identifying ``tree_node``'s collapsed path."""
        sequence = self._collapsed.root_path_sequence(tree_node)
        return [self._codeword_of(path) for path in sequence[1:]]

    def label(self, tree_node: int) -> LightDepthLabel:
        """Build the label of one node."""
        path = self._collapsed.collapsed_node_of(tree_node)
        return LightDepthLabel(
            light_depth=self._collapsed.depth(path),
            codewords=self.codewords_for(tree_node),
            domination=self._collapsed.domination_number(path),
        )

    def encode(self) -> dict[int, LightDepthLabel]:
        """Labels for every node of the tree."""
        return {node: self.label(node) for node in self._tree.nodes()}

    # -- pair queries (labels only) ----------------------------------------

    @staticmethod
    def lightdepth_of_nca(label_a: LightDepthLabel, label_b: LightDepthLabel) -> int:
        """``lightdepth(NCA(a, b))`` computed from two labels."""
        return common_codeword_prefix(label_a.codewords, label_b.codewords)

    @staticmethod
    def dominates(label_a: LightDepthLabel, label_b: LightDepthLabel) -> bool:
        """Whether the node of ``label_a`` dominates the node of ``label_b``."""
        return label_a.domination < label_b.domination
