"""Size formulas for universal rooted trees (Lemma 3.7 and Theorem 1.2).

Goldberg and Livshits construct a universal rooted tree of size
``n^{(log n - 2 log log n + O(1)) / 2}``; Chung, Graham and Coppersmith show
this is optimal up to the O(1) term.  Combined with Lemma 3.6, any parent
(hence level-ancestor) labeling scheme needs labels of at least
``1/2 log² n - log n log log n`` bits.
"""

from __future__ import annotations

import math


def goldberg_livshits_log2_size(n: int, constant: float = 0.0) -> float:
    """``log2`` of the minimal universal rooted tree size for trees on n nodes.

    Equals ``log n * (log n - 2 log log n + constant) / 2``; the unknown
    additive constant of Lemma 3.7 is exposed as a parameter.
    """
    if n < 2:
        return 0.0
    log_n = math.log2(n)
    log_log_n = math.log2(max(log_n, 1.0))
    return log_n * (log_n - 2 * log_log_n + constant) / 2


def lemma_3_6_size_bound(label_bits: int) -> int:
    """Upper bound on universal tree size implied by an S-bit parent scheme."""
    return 2 * (1 << label_bits) + 1


def level_ancestor_lower_bound_bits(n: int) -> float:
    """Theorem 1.2: lower bound on parent / level-ancestor label length."""
    if n < 2:
        return 0.0
    log_n = math.log2(n)
    log_log_n = math.log2(max(log_n, 1.0))
    return 0.5 * log_n * log_n - log_n * log_log_n


def minimal_universal_tree_size_brute_force(n: int, max_size: int) -> int | None:
    """Size of the smallest universal rooted tree for trees on <= n nodes.

    Exhaustively searches candidate host trees by increasing size (candidates
    are generated as increasing parent arrays).  Exponential; intended for
    tiny ``n`` (<= 4) in tests and demonstrations.
    """
    from repro.universal.embedding import embeds_as_rooted_subtree
    from repro.universal.universal_tree import all_rooted_trees, all_rooted_trees_up_to

    targets = list(all_rooted_trees_up_to(n))
    for size in range(n, max_size + 1):
        for candidate in all_rooted_trees(size):
            if all(embeds_as_rooted_subtree(target, candidate) for target in targets):
                return size
    return None
