"""Lemma 3.6: from parent labels to a universal rooted tree.

Given a parent labeling scheme, consider the directed graph ``G`` whose
vertices are all labels the scheme can produce (over every rooted tree on up
to ``n`` nodes) and whose edges point from each label to the label of its
parent.  Every out-degree is at most one, so each weakly connected component
is either a tree (rooted at a label whose parent query answers "root") or
contains exactly one directed cycle.  The lemma turns ``G`` into a rooted
tree ``G'`` of at most ``2|V| + 1`` nodes that contains every rooted tree on
up to ``n`` nodes as a subtree:

* in a component with a cycle, delete one cycle edge ``(u, v)``, duplicate
  the whole component and add the edge ``(u, v')`` to the copy,
* finally add a single global root above all component roots.

The construction here follows the proof verbatim; :mod:`repro.universal.embedding`
verifies universality on small ``n`` by embedding every rooted tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.core.level_ancestor import LevelAncestorScheme
from repro.trees.tree import RootedTree


def all_rooted_trees(n: int) -> Iterator[RootedTree]:
    """Every rooted tree on exactly ``n`` nodes (as increasing parent arrays).

    Every rooted tree can be relabelled so that each node's parent has a
    smaller identifier, so enumerating all parent arrays with
    ``parent[i] < i`` covers every isomorphism class (with repetitions).
    """
    if n <= 0:
        return
    if n == 1:
        yield RootedTree([None])
        return

    parents: list[int | None] = [None] * n

    def fill(position: int) -> Iterator[RootedTree]:
        if position == n:
            yield RootedTree(list(parents))
            return
        for parent in range(position):
            parents[position] = parent
            yield from fill(position + 1)

    yield from fill(1)


def all_rooted_trees_up_to(n: int) -> Iterator[RootedTree]:
    """Every rooted tree on 1..n nodes."""
    for size in range(1, n + 1):
        yield from all_rooted_trees(size)


@dataclass
class UniversalTreeResult:
    """Outcome of the Lemma 3.6 construction."""

    tree: RootedTree
    #: map from label key to the node representing it (first copy)
    node_of_label: dict[Hashable, int]
    #: number of labels observed (|V| in the lemma)
    label_count: int
    #: number of weakly connected components that contained a cycle
    cycles_cut: int


def universal_tree_from_parent_labels(
    labels_and_parents: Iterable[tuple[Hashable, Hashable | None]],
) -> UniversalTreeResult:
    """Lemma 3.6 construction from (label, parent-label-or-None) pairs."""
    parent_of: dict[Hashable, Hashable | None] = {}
    assigned: set[Hashable] = set()
    for label, parent in labels_and_parents:
        if label in assigned and parent_of[label] != parent:
            raise ValueError(f"label {label!r} maps to two different parents")
        parent_of[label] = parent
        assigned.add(label)
        if parent is not None and parent not in parent_of:
            # seen only as a parent so far; treated as a root unless a later
            # pair assigns it a parent of its own
            parent_of[parent] = None

    # assign an integer to every label (first copy)
    index_of: dict[Hashable, int] = {}
    for label in parent_of:
        index_of[label] = len(index_of)

    size = len(index_of)
    parent_index: list[int | None] = [None] * size
    for label, parent in parent_of.items():
        if parent is not None:
            parent_index[index_of[label]] = index_of[parent]

    # find components and cycles (functional graph: out-degree <= 1)
    component = [-1] * size
    components: list[list[int]] = []
    for start in range(size):
        if component[start] != -1:
            continue
        # walk up until a visited node or a root; collect the walked chain
        chain = []
        node: int | None = start
        while node is not None and component[node] == -1:
            component[node] = -2  # in progress
            chain.append(node)
            node = parent_index[node]
        if node is None or component[node] == -2:
            component_id = len(components)
            components.append([])
        else:
            component_id = component[node]
        for walked in chain:
            component[walked] = component_id
    # re-collect membership
    components = [[] for _ in range(max(component) + 1)] if size else []
    for node in range(size):
        components[component[node]].append(node)

    # detect the unique cycle of each component (if any) and cut one edge
    next_free = size
    extra_parents: dict[int, int | None] = {}
    duplicate_of: dict[int, int] = {}
    cycles_cut = 0
    cut_edges: list[tuple[int, int]] = []

    for members in components:
        cycle = _find_cycle(members, parent_index)
        if not cycle:
            continue
        cycles_cut += 1
        # cut the edge from the last cycle node back into the cycle
        cut_from = cycle[-1]
        cut_to = parent_index[cut_from]
        assert cut_to is not None
        cut_edges.append((cut_from, cut_to))
        # duplicate the whole component
        for node in members:
            duplicate_of[node] = next_free
            next_free += 1
        for node in members:
            original_parent = parent_index[node]
            if node == cut_from:
                original_parent = None  # the cut is re-established below
            if original_parent is None or original_parent not in duplicate_of:
                extra_parents[duplicate_of[node]] = None
            else:
                extra_parents[duplicate_of[node]] = duplicate_of[original_parent]

    # apply the cuts to the originals and wire them into the duplicates
    for cut_from, cut_to in cut_edges:
        parent_index[cut_from] = duplicate_of[cut_to]

    total = next_free + 1  # plus the global root
    global_root = next_free
    parents: list[int | None] = [None] * total
    for node in range(size):
        parents[node] = parent_index[node] if parent_index[node] is not None else global_root
    for node, parent in extra_parents.items():
        parents[node] = parent if parent is not None else global_root
    parents[global_root] = None

    return UniversalTreeResult(
        tree=RootedTree(parents),
        node_of_label={label: index for label, index in index_of.items()},
        label_count=size,
        cycles_cut=cycles_cut,
    )


def _find_cycle(members: list[int], parent_index: list[int | None]) -> list[int]:
    """Return the nodes of the unique directed cycle in a component (or [])."""
    member_set = set(members)
    visited: set[int] = set()
    for start in members:
        if start in visited:
            continue
        path: list[int] = []
        position: dict[int, int] = {}
        node: int | None = start
        while node is not None and node in member_set:
            if node in position:
                return path[position[node]:]
            if node in visited:
                break
            position[node] = len(path)
            path.append(node)
            visited.add(node)
            node = parent_index[node]
    return []


def universal_tree_for_small_n(
    n: int, scheme: LevelAncestorScheme | None = None
) -> UniversalTreeResult:
    """Run Lemma 3.6 over every rooted tree on up to ``n`` nodes.

    The parent labeling scheme defaults to the Section 3.6
    :class:`~repro.core.level_ancestor.LevelAncestorScheme`.  The number of
    trees grows as (n-1)!, so this is intended for small ``n`` (≤ 8).
    """
    if scheme is None:
        scheme = LevelAncestorScheme()

    def pairs() -> Iterator[tuple[Hashable, Hashable | None]]:
        for tree in all_rooted_trees_up_to(n):
            labels = scheme.encode(tree)
            for node, label in labels.items():
                parent_label = scheme.parent(label)
                yield label.key(), None if parent_label is None else parent_label.key()

    return universal_tree_from_parent_labels(pairs())
