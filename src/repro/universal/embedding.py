"""Rooted subtree embedding checks.

A rooted tree ``S`` embeds in a rooted tree ``T`` as a subtree when there is
an injective map from the nodes of ``S`` to the nodes of ``T`` that sends
the parent of a node to the parent of its image.  (This is the containment
notion of the universal-tree results the paper builds on: the universal tree
must contain every tree as a subtree, not merely as a minor.)

The check runs a classical recursive bipartite matching: node ``s`` can map
onto node ``t`` when the children of ``s`` can be matched to *distinct*
children of ``t`` such that every matched pair embeds recursively.
"""

from __future__ import annotations

from functools import lru_cache

from repro.trees.tree import RootedTree


def embeds_as_rooted_subtree(small: RootedTree, big: RootedTree) -> bool:
    """Whether ``small`` embeds somewhere inside ``big`` (parent-preserving)."""
    if small.n > big.n:
        return False

    small_children = {node: small.children(node) for node in small.nodes()}
    big_children = {node: big.children(node) for node in big.nodes()}

    @lru_cache(maxsize=None)
    def can_map(s_node: int, t_node: int) -> bool:
        s_kids = small_children[s_node]
        if not s_kids:
            return True
        t_kids = big_children[t_node]
        if len(t_kids) < len(s_kids):
            return False
        # bipartite matching: s_kids -> distinct t_kids
        match: dict[int, int] = {}

        def augment(s_index: int, seen: set[int]) -> bool:
            for t_index, t_kid in enumerate(t_kids):
                if t_index in seen:
                    continue
                if not can_map(s_kids[s_index], t_kid):
                    continue
                seen.add(t_index)
                if t_index not in match or augment(match[t_index], seen):
                    match[t_index] = s_index
                    return True
            return False

        for s_index in range(len(s_kids)):
            if not augment(s_index, set()):
                return False
        return True

    return any(can_map(small.root, t_node) for t_node in big.nodes())


def embedding_map(small: RootedTree, big: RootedTree) -> dict[int, int] | None:
    """An explicit embedding (small node -> big node), or ``None``.

    Used by tests that want to double-check an embedding rather than just a
    boolean answer.  Exponential in the worst case; intended for small trees.
    """
    small_children = {node: small.children(node) for node in small.nodes()}
    big_children = {node: big.children(node) for node in big.nodes()}

    def try_map(s_node: int, t_node: int) -> dict[int, int] | None:
        s_kids = small_children[s_node]
        if not s_kids:
            return {s_node: t_node}
        t_kids = big_children[t_node]
        if len(t_kids) < len(s_kids):
            return None

        def backtrack(index: int, used: set[int], acc: dict[int, int]) -> dict[int, int] | None:
            if index == len(s_kids):
                return dict(acc)
            for t_kid in t_kids:
                if t_kid in used:
                    continue
                sub = try_map(s_kids[index], t_kid)
                if sub is None:
                    continue
                used.add(t_kid)
                acc.update(sub)
                result = backtrack(index + 1, used, acc)
                if result is not None:
                    return result
                used.remove(t_kid)
                for key in sub:
                    acc.pop(key, None)
            return None

        result = backtrack(0, set(), {s_node: t_node})
        return result

    for t_node in big.nodes():
        mapping = try_map(small.root, t_node)
        if mapping is not None:
            return mapping
    return None
