"""Universal trees and their connection to labeling schemes (Section 3.5).

The paper separates distance labeling from level-ancestor labeling by
showing (Lemma 3.6) that any *parent* labeling scheme with ``S(n)``-bit
labels yields a universal rooted tree with ``O(2^{S(n)})`` nodes, and then
invoking the Goldberg-Livshits / Chung et al. lower bound on universal tree
size (Lemma 3.7).  This package implements that machinery:

* :func:`~repro.universal.universal_tree.universal_tree_from_parent_labels`
  — the Lemma 3.6 construction (functional graph on labels, cycle cutting,
  component duplication, global root),
* :func:`~repro.universal.universal_tree.universal_tree_for_small_n` —
  drives the construction over every rooted tree on up to ``n`` nodes,
* :mod:`repro.universal.embedding` — subtree-embedding checks used to verify
  universality,
* :mod:`repro.universal.goldberg` — the Lemma 3.7 size formulas.
"""

from repro.universal.embedding import embeds_as_rooted_subtree
from repro.universal.goldberg import (
    goldberg_livshits_log2_size,
    lemma_3_6_size_bound,
    level_ancestor_lower_bound_bits,
)
from repro.universal.universal_tree import (
    all_rooted_trees,
    universal_tree_for_small_n,
    universal_tree_from_parent_labels,
)

__all__ = [
    "universal_tree_from_parent_labels",
    "universal_tree_for_small_n",
    "all_rooted_trees",
    "embeds_as_rooted_subtree",
    "goldberg_livshits_log2_size",
    "lemma_3_6_size_bound",
    "level_ancestor_lower_bound_bits",
]
