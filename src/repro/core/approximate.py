"""(1+eps)-approximate distance labeling (Section 5.2, Theorem 1.4 upper bound).

The label of ``v`` stores, per significant ancestor ``v_i`` on its root
path, the (1+eps/2)-rounded-up distance ``ceil_{1+eps/2}(d(v, v_i))`` as an
exponent of ``(1 + eps/2)``.  The exponent sequence is non-decreasing, so by
Lemma 2.2 it occupies ``O(log(1/eps) * log n)`` bits — this replaces the
unary encoding of Alstrup et al. whose size is ``Theta(1/eps * log n)``.

Query: if one endpoint is an ancestor of the other the answer is exact
(difference of root distances).  Otherwise the dominating endpoint ``a``
(the one leaving ``NCA(u, v)`` through a light edge, decided by the
collapsed-tree postorder numbers) has the NCA as its significant ancestor at
index ``lightdepth(a) - lightdepth(NCA)``, and

    answer = rd(other) - rd(a) + 2 * ceil_{1+eps/2}(d(a, NCA))

which lies in ``[d(u, v), (1 + eps) d(u, v)]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.base import ApproximateDistanceLabelingScheme
from repro.encoding.alphabetic import common_codeword_prefix
from repro.encoding.bitio import BitReader, BitWriter, Bits
from repro.encoding.elias import decode_delta, decode_gamma, encode_delta, encode_gamma
from repro.encoding.monotone import MonotoneSequence
from repro.nca.labels import LightDepthLabeling
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree


def rounded_exponent(distance: int, base: float) -> int:
    """Smallest ``e`` with ``base ** e >= distance`` (robust against float error)."""
    if distance <= 1:
        return 0
    exponent = max(0, math.ceil(math.log(distance, base)))
    while base ** exponent < distance:
        exponent += 1
    while exponent > 0 and base ** (exponent - 1) >= distance:
        exponent -= 1
    return exponent


@dataclass
class ApproximateLabel:
    """Label of one node for (1+eps)-approximate queries."""

    preorder: int
    subtree_size: int
    root_distance: int
    domination: int
    codewords: list[Bits]
    exponents: list[int]

    @property
    def light_depth(self) -> int:
        """Number of light edges on the root path."""
        return len(self.codewords)

    def is_ancestor_of(self, other: "ApproximateLabel") -> bool:
        """DFS-interval ancestor test."""
        return (
            self.preorder
            <= other.preorder
            < self.preorder + self.subtree_size
        )

    def to_bits(self) -> Bits:
        """Serialise the label."""
        writer = BitWriter()
        encode_delta(writer, self.preorder)
        encode_delta(writer, self.subtree_size)
        encode_delta(writer, self.root_distance)
        encode_delta(writer, self.domination)
        encode_gamma(writer, len(self.codewords))
        for word in self.codewords:
            encode_gamma(writer, len(word))
            writer.write_bits(word)
        MonotoneSequence(self.exponents).write(writer)
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "ApproximateLabel":
        """Parse a serialised label."""
        reader = BitReader(bits)
        preorder = decode_delta(reader)
        subtree_size = decode_delta(reader)
        root_distance = decode_delta(reader)
        domination = decode_delta(reader)
        count = decode_gamma(reader)
        codewords = []
        for _ in range(count):
            length = decode_gamma(reader)
            codewords.append(reader.read_bits(length))
        exponents = MonotoneSequence.read(reader).to_list()
        return cls(
            preorder=preorder,
            subtree_size=subtree_size,
            root_distance=root_distance,
            domination=domination,
            codewords=codewords,
            exponents=exponents,
        )

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())


class ApproximateScheme(ApproximateDistanceLabelingScheme):
    """(1+eps)-approximate distance labels of size O(log(1/eps) log n)."""

    name = "approximate"

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        #: internal rounding base: (1 + eps/2) so the final answer is (1+eps)
        self.base = 1.0 + epsilon / 2.0

    def encode(self, tree: RootedTree) -> dict[int, ApproximateLabel]:
        decomposition = HeavyPathDecomposition(tree, variant="paper")
        collapsed = CollapsedTree(decomposition)
        light = LightDepthLabeling(tree, collapsed)

        labels: dict[int, ApproximateLabel] = {}
        for node in tree.nodes():
            sequence = collapsed.root_path_sequence(node)
            # significant ancestors above `node`: the branch nodes of the
            # heavy paths on the root path, from the deepest one upwards
            exponents: list[int] = []
            for path in reversed(sequence[1:]):
                branch = collapsed.branch_node(path)
                distance = tree.root_distance(node) - tree.root_distance(branch)
                exponents.append(rounded_exponent(distance, self.base))
            labels[node] = ApproximateLabel(
                preorder=tree.preorder_index(node),
                subtree_size=tree.subtree_size(node),
                root_distance=tree.root_distance(node),
                domination=collapsed.domination_number(sequence[-1]),
                codewords=light.codewords_for(node),
                exponents=exponents,
            )
        return labels

    def approximate_distance(
        self, label_u: ApproximateLabel, label_v: ApproximateLabel
    ) -> float:
        if label_u.preorder == label_v.preorder:
            return 0.0
        if label_u.is_ancestor_of(label_v):
            return float(label_v.root_distance - label_u.root_distance)
        if label_v.is_ancestor_of(label_u):
            return float(label_u.root_distance - label_v.root_distance)

        nca_lightdepth = common_codeword_prefix(label_u.codewords, label_v.codewords)
        if label_u.domination < label_v.domination:
            dominating, other = label_u, label_v
        else:
            dominating, other = label_v, label_u
        # the dominating endpoint leaves the NCA through a light edge, so the
        # NCA is its significant ancestor at this index (deepest first)
        index = dominating.light_depth - nca_lightdepth - 1
        if index < 0 or index >= len(dominating.exponents):
            raise ValueError("labels are inconsistent (different encodings?)")
        approximation = self.base ** dominating.exponents[index]
        return (
            other.root_distance - dominating.root_distance + 2.0 * approximation
        )

    def parse(self, bits: Bits) -> ApproximateLabel:
        return ApproximateLabel.from_bits(bits)
