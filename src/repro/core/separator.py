"""Separator (centroid-decomposition) distance labels.

This is the classical O(log² n)-bit construction in the spirit of Peleg's
proximity-preserving labels [26]: recursively split the tree at a centroid,
and let every node remember, for each centroid on its centroid-tree root
path, the centroid's identity and its distance to it.  For any two nodes the
highest centroid separating them lies on their path, so

    d(u, v) = min over common centroids c of d(u, c) + d(c, v).

The scheme is independent of the heavy-path framework, which makes it a
useful second baseline: it shares no code path with the Section 3 schemes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.base import DistanceLabelingScheme
from repro.encoding.bitio import BitReader, BitWriter, Bits
from repro.encoding.elias import decode_delta, decode_gamma, encode_delta, encode_gamma
from repro.trees.tree import RootedTree


@dataclass
class SeparatorLabel:
    """(centroid, distance-to-centroid) pairs from the top level down."""

    centroids: list[int]
    distances: list[int]

    def to_bits(self) -> Bits:
        """Serialise the label."""
        writer = BitWriter()
        encode_gamma(writer, len(self.centroids))
        for centroid, distance in zip(self.centroids, self.distances):
            encode_delta(writer, centroid)
            encode_delta(writer, distance)
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "SeparatorLabel":
        """Parse a serialised label."""
        reader = BitReader(bits)
        count = decode_gamma(reader)
        centroids, distances = [], []
        for _ in range(count):
            centroids.append(decode_delta(reader))
            distances.append(decode_delta(reader))
        return cls(centroids, distances)

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())


class SeparatorScheme(DistanceLabelingScheme):
    """Centroid-decomposition labels with O(log n) levels."""

    name = "separator"

    def encode(self, tree: RootedTree) -> dict[int, SeparatorLabel]:
        adjacency = self._adjacency(tree)
        removed = [False] * tree.n
        entries: dict[int, list[tuple[int, int]]] = {v: [] for v in tree.nodes()}

        pending = deque([tree.root])
        while pending:
            component_root = pending.popleft()
            if removed[component_root]:
                continue
            centroid = self._find_centroid(component_root, adjacency, removed)
            self._record_distances(centroid, adjacency, removed, entries)
            removed[centroid] = True
            for neighbour, _ in adjacency[centroid]:
                if not removed[neighbour]:
                    pending.append(neighbour)

        return {
            node: SeparatorLabel(
                centroids=[c for c, _ in entries[node]],
                distances=[d for _, d in entries[node]],
            )
            for node in tree.nodes()
        }

    @staticmethod
    def _adjacency(tree: RootedTree) -> list[list[tuple[int, int]]]:
        adjacency: list[list[tuple[int, int]]] = [[] for _ in range(tree.n)]
        for parent, child, weight in tree.edges():
            adjacency[parent].append((child, weight))
            adjacency[child].append((parent, weight))
        return adjacency

    @staticmethod
    def _component(
        root: int,
        adjacency: list[list[tuple[int, int]]],
        removed: list[bool],
    ) -> tuple[list[int], dict[int, int | None]]:
        """Nodes of the current component in DFS order plus a parent map."""
        parent: dict[int, int | None] = {root: None}
        order: list[int] = []
        stack = [root]
        while stack:
            node = stack.pop()
            order.append(node)
            for neighbour, _ in adjacency[node]:
                if removed[neighbour] or neighbour in parent:
                    continue
                parent[neighbour] = node
                stack.append(neighbour)
        return order, parent

    @classmethod
    def _find_centroid(
        cls,
        root: int,
        adjacency: list[list[tuple[int, int]]],
        removed: list[bool],
    ) -> int:
        order, parent = cls._component(root, adjacency, removed)
        size = {node: 1 for node in order}
        for node in reversed(order):
            above = parent[node]
            if above is not None:
                size[above] += size[node]
        total = len(order)

        centroid = root
        while True:
            heavy_child = None
            for neighbour, _ in adjacency[centroid]:
                if removed[neighbour] or parent.get(neighbour) != centroid:
                    continue
                if size[neighbour] * 2 > total:
                    heavy_child = neighbour
                    break
            if heavy_child is None:
                return centroid
            centroid = heavy_child

    @staticmethod
    def _record_distances(
        centroid: int,
        adjacency: list[list[tuple[int, int]]],
        removed: list[bool],
        entries: dict[int, list[tuple[int, int]]],
    ) -> None:
        distances = {centroid: 0}
        queue = deque([centroid])
        while queue:
            node = queue.popleft()
            entries[node].append((centroid, distances[node]))
            for neighbour, weight in adjacency[node]:
                if removed[neighbour] or neighbour in distances:
                    continue
                distances[neighbour] = distances[node] + weight
                queue.append(neighbour)

    def distance(self, label_u: SeparatorLabel, label_v: SeparatorLabel) -> int:
        distances_v = {c: d for c, d in zip(label_v.centroids, label_v.distances)}
        best = None
        for centroid, distance in zip(label_u.centroids, label_u.distances):
            other = distances_v.get(centroid)
            if other is None:
                continue
            candidate = distance + other
            if best is None or candidate < best:
                best = candidate
        if best is None:
            raise ValueError("labels do not come from the same tree")
        return best

    def parse(self, bits: Bits) -> SeparatorLabel:
        return SeparatorLabel.from_bits(bits)
