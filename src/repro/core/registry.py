"""Registry of labeling schemes, used by the CLI and the benchmarks."""

from __future__ import annotations

from typing import Callable

from repro.core.alstrup import AlstrupScheme
from repro.core.base import DistanceLabelingScheme
from repro.core.freedman import FreedmanScheme
from repro.core.hld import HLDScheme
from repro.core.naive import NaiveListScheme
from repro.core.separator import SeparatorScheme

#: exact distance labeling schemes, keyed by name
SCHEMES: dict[str, Callable[[], DistanceLabelingScheme]] = {
    NaiveListScheme.name: NaiveListScheme,
    SeparatorScheme.name: SeparatorScheme,
    HLDScheme.name: HLDScheme,
    AlstrupScheme.name: AlstrupScheme,
    FreedmanScheme.name: FreedmanScheme,
    "freedman-no-fragments": lambda: FreedmanScheme(use_fragments=False),
    "freedman-no-accumulators": lambda: FreedmanScheme(use_accumulators=False),
    "freedman-no-binarize": lambda: FreedmanScheme(binarize=False),
}


def make_scheme(name: str) -> DistanceLabelingScheme:
    """Instantiate an exact scheme by registry name."""
    if name not in SCHEMES:
        raise KeyError(f"unknown scheme {name!r}; known: {sorted(SCHEMES)}")
    return SCHEMES[name]()
