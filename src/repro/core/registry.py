"""Registry of labeling schemes, used by the CLI, the store and the benchmarks.

Exact schemes are zero-argument factories (ablation variants of the Freedman
scheme included); bounded and approximate schemes take their defining
parameter (``k`` / ``epsilon``).  :func:`make_any_scheme` is the single
entry point that resolves a ``(name, params)`` spec — the form persisted in
:class:`repro.store.LabelStore` files — back to a live scheme of any family.

Scheme specs also have a canonical **string form** — the one accepted by
:meth:`repro.api.DistanceIndex.build` and the CLI and printed by
``stats()``/``--list``::

    freedman
    k-distance:k=4
    approximate:epsilon=0.1
    freedman:use_accumulators=false

:func:`parse_spec` turns such a string into the ``(name, params)`` pair and
:func:`format_spec` renders the pair back, omitting parameters that match the
scheme's constructor defaults so the output is canonical
(``format_spec(*parse_spec(s))`` is a fixed point).  Friendly aliases are
accepted on input (``kdistance`` for ``k-distance``, ``approx`` for
``approximate``, ``eps`` for ``epsilon``) and normalised away on output.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.core.alstrup import AlstrupScheme
from repro.core.approximate import ApproximateScheme
from repro.core.base import (
    ApproximateDistanceLabelingScheme,
    BoundedDistanceLabelingScheme,
    DistanceLabelingScheme,
    LabelingScheme,
)
from repro.core.freedman import FreedmanScheme
from repro.core.hld import HLDScheme
from repro.core.kdistance import KDistanceScheme
from repro.core.naive import NaiveListScheme
from repro.core.separator import SeparatorScheme

#: exact distance labeling schemes, keyed by name
SCHEMES: dict[str, Callable[[], DistanceLabelingScheme]] = {
    NaiveListScheme.name: NaiveListScheme,
    SeparatorScheme.name: SeparatorScheme,
    HLDScheme.name: HLDScheme,
    AlstrupScheme.name: AlstrupScheme,
    FreedmanScheme.name: FreedmanScheme,
    "freedman-no-fragments": lambda: FreedmanScheme(use_fragments=False),
    "freedman-no-accumulators": lambda: FreedmanScheme(use_accumulators=False),
    "freedman-no-binarize": lambda: FreedmanScheme(binarize=False),
}

#: bounded (k-distance) scheme factories, keyed by name
BOUNDED_SCHEMES: dict[str, Callable[..., BoundedDistanceLabelingScheme]] = {
    KDistanceScheme.name: KDistanceScheme,
}

#: approximate scheme factories, keyed by name
APPROXIMATE_SCHEMES: dict[str, Callable[..., ApproximateDistanceLabelingScheme]] = {
    ApproximateScheme.name: ApproximateScheme,
}

#: canonical scheme classes keyed by their ``name`` attribute; used to
#: resolve the ``(name, params)`` spec a :class:`repro.store.LabelStore`
#: persists (ablation aliases above map to the same class names)
SCHEME_CLASSES: dict[str, type[LabelingScheme]] = {
    cls.name: cls
    for cls in (
        NaiveListScheme,
        SeparatorScheme,
        HLDScheme,
        AlstrupScheme,
        FreedmanScheme,
        KDistanceScheme,
        ApproximateScheme,
    )
}

#: every registered name, for CLI help and error messages
ALL_SCHEME_NAMES: tuple[str, ...] = tuple(
    sorted({*SCHEMES, *BOUNDED_SCHEMES, *APPROXIMATE_SCHEMES})
)


def make_scheme(name: str) -> DistanceLabelingScheme:
    """Instantiate an exact scheme by registry name."""
    if name not in SCHEMES:
        raise KeyError(f"unknown scheme {name!r}; known: {sorted(SCHEMES)}")
    return SCHEMES[name]()


def make_any_scheme(name: str, **params) -> LabelingScheme:
    """Instantiate a scheme of any family from a ``(name, params)`` spec.

    Canonical names (``freedman``, ``k-distance``, ``approximate``, ...)
    accept constructor parameters; registry aliases such as
    ``freedman-no-fragments`` are parameterless shortcuts.
    """
    if name in SCHEME_CLASSES:
        try:
            return SCHEME_CLASSES[name](**params)
        except TypeError as error:
            raise ValueError(f"scheme {name!r}: {error}") from error
    if name in SCHEMES:
        if params:
            raise ValueError(
                f"scheme alias {name!r} does not accept parameters (got {params})"
            )
        return SCHEMES[name]()
    raise KeyError(f"unknown scheme {name!r}; known: {list(ALL_SCHEME_NAMES)}")


# -- string scheme specs ------------------------------------------------------

class SpecError(ValueError):
    """Raised when a scheme spec string is malformed or unresolvable."""


#: accepted input aliases for scheme names, normalised by :func:`parse_spec`
SPEC_NAME_ALIASES: dict[str, str] = {
    "kdistance": KDistanceScheme.name,
    "approx": ApproximateScheme.name,
}

#: accepted input aliases for parameter names, normalised by :func:`parse_spec`
SPEC_PARAM_ALIASES: dict[str, str] = {
    "eps": "epsilon",
}


def _parse_value(token: str):
    """A spec parameter value: bool, int, float or bare string."""
    lowered = token.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value) if isinstance(value, float) else str(value)


def parse_spec(spec: str) -> tuple[str, dict]:
    """Parse ``"name"`` or ``"name:key=value,..."`` into ``(name, params)``.

    Aliases (``kdistance``, ``approx``, ``eps``) are normalised; values are
    decoded as bool/int/float when they look like one, bare strings
    otherwise.  The resulting pair feeds :func:`make_any_scheme`.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise SpecError(f"empty scheme spec {spec!r}")
    name, _, tail = spec.strip().partition(":")
    name = SPEC_NAME_ALIASES.get(name.strip(), name.strip())
    if not name:
        raise SpecError(f"spec {spec!r} has no scheme name")
    params: dict = {}
    if tail or ":" in spec:
        if not tail.strip():
            raise SpecError(
                f"spec {spec!r}: expected key=value parameters after ':'"
            )
        for item in tail.split(","):
            key, eq, value = item.partition("=")
            key = SPEC_PARAM_ALIASES.get(key.strip(), key.strip())
            if not key or not eq or not value.strip():
                raise SpecError(
                    f"spec {spec!r}: malformed parameter {item.strip()!r} "
                    "(expected key=value)"
                )
            if key in params:
                raise SpecError(f"spec {spec!r}: duplicate parameter {key!r}")
            params[key] = _parse_value(value.strip())
    return name, params


def _default_params(name: str) -> dict:
    """Constructor defaults of the canonical class behind ``name`` (if any)."""
    cls = SCHEME_CLASSES.get(name)
    if cls is None:
        return {}
    defaults = {}
    for parameter in inspect.signature(cls.__init__).parameters.values():
        if parameter.default is not inspect.Parameter.empty:
            defaults[parameter.name] = parameter.default
    return defaults


def format_spec(name: str, params: dict | None = None) -> str:
    """Render a ``(name, params)`` pair as the canonical spec string.

    Parameters equal to the scheme's constructor defaults are omitted, so
    ``format_spec(*parse_spec(s))`` yields the same string for every
    equivalent input spelling.  ``params()`` of a live scheme round-trips:
    ``make_scheme_from_spec(format_spec(s.name, s.params()))`` rebuilds an
    equivalent scheme.
    """
    name = SPEC_NAME_ALIASES.get(name, name)
    defaults = _default_params(name)
    kept = {
        key: value
        for key, value in (params or {}).items()
        if not (key in defaults and defaults[key] == value)
    }
    if not kept:
        return name
    rendered = ",".join(
        f"{key}={_format_value(value)}" for key, value in sorted(kept.items())
    )
    return f"{name}:{rendered}"


def scheme_spec(scheme: LabelingScheme) -> str:
    """The canonical spec string of a live scheme (``name`` + ``params()``)."""
    return format_spec(scheme.name, scheme.params())


def make_scheme_from_spec(spec: str) -> LabelingScheme:
    """Resolve a spec string to a live scheme of any family.

    Wraps the registry/constructor errors so the caller always sees a
    :class:`SpecError` naming the offending spec.
    """
    name, params = parse_spec(spec)
    try:
        return make_any_scheme(name, **params)
    except KeyError:
        raise SpecError(
            f"spec {spec!r}: unknown scheme {name!r}; "
            f"known: {list(ALL_SCHEME_NAMES)}"
        ) from None
    except ValueError as error:
        raise SpecError(f"spec {spec!r}: {error}") from error
