"""Registry of labeling schemes, used by the CLI, the store and the benchmarks.

Exact schemes are zero-argument factories (ablation variants of the Freedman
scheme included); bounded and approximate schemes take their defining
parameter (``k`` / ``epsilon``).  :func:`make_any_scheme` is the single
entry point that resolves a ``(name, params)`` spec — the form persisted in
:class:`repro.store.LabelStore` files — back to a live scheme of any family.
"""

from __future__ import annotations

from typing import Callable

from repro.core.alstrup import AlstrupScheme
from repro.core.approximate import ApproximateScheme
from repro.core.base import (
    ApproximateDistanceLabelingScheme,
    BoundedDistanceLabelingScheme,
    DistanceLabelingScheme,
    LabelingScheme,
)
from repro.core.freedman import FreedmanScheme
from repro.core.hld import HLDScheme
from repro.core.kdistance import KDistanceScheme
from repro.core.naive import NaiveListScheme
from repro.core.separator import SeparatorScheme

#: exact distance labeling schemes, keyed by name
SCHEMES: dict[str, Callable[[], DistanceLabelingScheme]] = {
    NaiveListScheme.name: NaiveListScheme,
    SeparatorScheme.name: SeparatorScheme,
    HLDScheme.name: HLDScheme,
    AlstrupScheme.name: AlstrupScheme,
    FreedmanScheme.name: FreedmanScheme,
    "freedman-no-fragments": lambda: FreedmanScheme(use_fragments=False),
    "freedman-no-accumulators": lambda: FreedmanScheme(use_accumulators=False),
    "freedman-no-binarize": lambda: FreedmanScheme(binarize=False),
}

#: bounded (k-distance) scheme factories, keyed by name
BOUNDED_SCHEMES: dict[str, Callable[..., BoundedDistanceLabelingScheme]] = {
    KDistanceScheme.name: KDistanceScheme,
}

#: approximate scheme factories, keyed by name
APPROXIMATE_SCHEMES: dict[str, Callable[..., ApproximateDistanceLabelingScheme]] = {
    ApproximateScheme.name: ApproximateScheme,
}

#: canonical scheme classes keyed by their ``name`` attribute; used to
#: resolve the ``(name, params)`` spec a :class:`repro.store.LabelStore`
#: persists (ablation aliases above map to the same class names)
SCHEME_CLASSES: dict[str, type[LabelingScheme]] = {
    cls.name: cls
    for cls in (
        NaiveListScheme,
        SeparatorScheme,
        HLDScheme,
        AlstrupScheme,
        FreedmanScheme,
        KDistanceScheme,
        ApproximateScheme,
    )
}

#: every registered name, for CLI help and error messages
ALL_SCHEME_NAMES: tuple[str, ...] = tuple(
    sorted({*SCHEMES, *BOUNDED_SCHEMES, *APPROXIMATE_SCHEMES})
)


def make_scheme(name: str) -> DistanceLabelingScheme:
    """Instantiate an exact scheme by registry name."""
    if name not in SCHEMES:
        raise KeyError(f"unknown scheme {name!r}; known: {sorted(SCHEMES)}")
    return SCHEMES[name]()


def make_any_scheme(name: str, **params) -> LabelingScheme:
    """Instantiate a scheme of any family from a ``(name, params)`` spec.

    Canonical names (``freedman``, ``k-distance``, ``approximate``, ...)
    accept constructor parameters; registry aliases such as
    ``freedman-no-fragments`` are parameterless shortcuts.
    """
    if name in SCHEME_CLASSES:
        try:
            return SCHEME_CLASSES[name](**params)
        except TypeError as error:
            raise ValueError(f"scheme {name!r}: {error}") from error
    if name in SCHEMES:
        if params:
            raise ValueError(
                f"scheme alias {name!r} does not accept parameters (got {params})"
            )
        return SCHEMES[name]()
    raise KeyError(f"unknown scheme {name!r}; known: {list(ALL_SCHEME_NAMES)}")
