"""k-distance labeling (Section 4, Theorem 1.3 upper bound).

Given the labels of ``u`` and ``v`` the decoder reports ``d(u, v)`` when it
is at most ``k`` and "further than k" (``None``) otherwise.

Label contents (Section 4.3), per node ``u``:

* ``pre(u)`` (preorder number with the heavy child visited last) and
  ``lightdepth(u)``;
* for the significant ancestors ``u_0 = u, u_1, ..., u_r`` within distance
  ``k``: the trie heights of their light ranges ``L`` (from which the range
  identifiers ``id(L)`` of Observation 4.2 are recomputed out of ``pre(u)``),
  and the distances ``d(u, u_i)`` — both monotone sequences stored with
  Lemma 2.2;
* ``alpha``: the distance from the top significant ancestor to the head of
  its heavy path, capped at ``2k + 1`` in the compact (``k < log n``) regime
  and stored exactly in the simple (``k >= log n``) regime;
* in the compact regime, the Lemma 4.5 machinery for the top heavy path:
  the top ancestor's position modulo ``k`` and the forward/backward
  2-approximation tables of the id differences along the path.

Implementation additions (DESIGN.md §3.5, asymptotically free): the label
also stores the light-range height of *one* significant ancestor beyond the
distance cutoff and the trie heights of the child-subtree ranges along the
chain.  They let the decoder distinguish every query configuration
(same-child vs different-child at the nearest common significant ancestor,
the mixed top cases, and the "no common significant ancestor" case) without
any information the paper's labels do not already determine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.base import BoundedDistanceLabelingScheme
from repro.encoding.bitio import BitError, BitReader, BitWriter, Bits
from repro.encoding.elias import decode_delta, decode_gamma, encode_delta, encode_gamma
from repro.encoding.monotone import MonotoneSequence
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree

COMPACT = "compact"
SIMPLE = "simple"
AUTO = "auto"


def range_height(low: int, high: int) -> int:
    """Height of the lowest binary-trie node covering ``[low, high]``."""
    if low == high:
        return 0
    return (low ^ high).bit_length()


def range_identifier(member: int, height: int) -> int:
    """The Section 4.3 identifier of a range, recomputed from one member.

    Truncate the ``height`` low bits of ``member`` and set the
    ``height``-th bit (so identifiers of nodes at different trie heights
    never collide).
    """
    if height == 0:
        return member
    return ((member >> height) << height) | (1 << (height - 1))


def floor_log2(value: int) -> int:
    """``floor(log2(value))`` for a positive integer."""
    if value <= 0:
        raise ValueError("floor_log2 expects a positive value")
    return value.bit_length() - 1


@dataclass
class KDistanceLabel:
    """Label of one node for k-distance queries."""

    pre: int
    light_depth: int
    heights: list[int]
    child_heights: list[int]
    distances: list[int]
    has_extension: bool
    alpha: int
    compact: bool
    position_mod: int
    forward: list[int]
    backward: list[int]

    # -- derived views -------------------------------------------------------

    @property
    def stored_entries(self) -> int:
        """Number of significant-ancestor entries (including the extension)."""
        return len(self.heights)

    @property
    def top_index(self) -> int:
        """Index of the top significant ancestor (the last one with a distance)."""
        return len(self.distances) - 1

    def entry_lightdepth(self, index: int) -> int:
        """Light depth of the ``index``-th significant ancestor."""
        return self.light_depth - index

    def entry_identifier(self, index: int) -> int:
        """``id(L)`` of the ``index``-th significant ancestor."""
        return range_identifier(self.pre, self.heights[index])

    def child_identifier(self, index: int) -> tuple[int, int]:
        """Identifier of the subtree range of the child taken at entry ``index``.

        The trie height is included so identifiers of ranges at different
        heights can never be confused (ranges of two different children of
        the same node are disjoint, so by Observation 4.2 equal
        (height, identifier) pairs imply the same child).
        """
        height = self.child_heights[index - 1]
        return height, range_identifier(self.pre, height)

    def chain_exhausted(self) -> bool:
        """Whether every significant ancestor is stored with its distance."""
        return len(self.distances) == self.light_depth + 1

    # -- serialisation -------------------------------------------------------

    def to_bits(self) -> Bits:
        """Serialise the label."""
        writer = BitWriter()
        encode_delta(writer, self.pre)
        encode_gamma(writer, self.light_depth)
        writer.write_bit(1 if self.has_extension else 0)
        writer.write_bit(1 if self.compact else 0)
        MonotoneSequence(self.heights).write(writer)
        MonotoneSequence(self.child_heights).write(writer)
        MonotoneSequence(self.distances).write(writer)
        encode_delta(writer, self.alpha)
        if self.compact:
            encode_gamma(writer, self.position_mod)
            MonotoneSequence(self.forward).write(writer)
            MonotoneSequence(self.backward).write(writer)
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "KDistanceLabel":
        """Parse a serialised label."""
        reader = BitReader(bits)
        pre = decode_delta(reader)
        light_depth = decode_gamma(reader)
        has_extension = reader.read_bit() == 1
        compact = reader.read_bit() == 1
        heights = MonotoneSequence.read(reader).to_list()
        child_heights = MonotoneSequence.read(reader).to_list()
        distances = MonotoneSequence.read(reader).to_list()
        alpha = decode_delta(reader)
        position_mod = 0
        forward: list[int] = []
        backward: list[int] = []
        if compact:
            position_mod = decode_gamma(reader)
            forward = MonotoneSequence.read(reader).to_list()
            backward = MonotoneSequence.read(reader).to_list()
        return cls(
            pre=pre,
            light_depth=light_depth,
            heights=heights,
            child_heights=child_heights,
            distances=distances,
            has_extension=has_extension,
            alpha=alpha,
            compact=compact,
            position_mod=position_mod,
            forward=forward,
            backward=backward,
        )

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())


def _parse_word(value: int, total: int) -> KDistanceLabel:
    """Decode one serialised label straight from its packed integer.

    The word-level twin of :meth:`KDistanceLabel.from_bits`: the same field
    grammar (delta preorder, gamma light depth, two flag bits, three
    monotone sequences, delta alpha, and the compact-regime Lemma 4.5
    tables) decoded with shifts and masks on the packed word — no
    :class:`BitReader` and no :class:`~repro.encoding.monotone.
    MonotoneSequence` reconstruction.  Same inline-gamma arithmetic as the
    HLD/Freedman/Alstrup word parsers.
    """
    rem = total

    def gamma() -> int:
        # single-call gamma: the code's value is the top ``zeros + 1`` bits
        # starting at the leading one
        nonlocal rem
        suffix = value & ((1 << rem) - 1)
        if not suffix:
            raise BitError("bit stream exhausted")
        significant = suffix.bit_length()
        width = rem - significant + 1  # zeros + 1
        if width > significant:
            raise BitError("bit stream exhausted")
        rem -= 2 * width - 1
        return (suffix >> (significant - width)) - 1

    def delta() -> int:
        nonlocal rem
        width = gamma() + 1
        if width == 1:
            return 0
        if width - 1 > rem:
            raise BitError("bit stream exhausted")
        rem -= width - 1
        return ((1 << (width - 1)) | ((value >> rem) & ((1 << (width - 1)) - 1))) - 1

    def flag() -> bool:
        nonlocal rem
        if not rem:
            raise BitError("bit stream exhausted")
        rem -= 1
        return bool((value >> rem) & 1)

    def monotone_values() -> list[int]:
        # the value list of one MonotoneSequence (Lemma 2.2 layout: count,
        # low width, packed low parts, unary-coded high-part differences)
        nonlocal rem
        count = gamma()
        if count == 0:
            return []
        low_width = gamma()
        if low_width:
            if count * low_width > rem:
                raise BitError("bit stream exhausted")
            lows = []
            mask = (1 << low_width) - 1
            for _ in range(count):
                rem -= low_width
                lows.append((value >> rem) & mask)
        else:
            lows = [0] * count
        values: list[int] = []
        high = 0
        suffix = value & ((1 << rem) - 1)
        for index in range(count):
            if not suffix:
                raise BitError("bit stream exhausted")
            zeros = rem - suffix.bit_length()
            rem -= zeros + 1
            suffix &= (1 << rem) - 1
            high += zeros
            values.append((high << low_width) | lows[index])
        return values

    pre = delta()
    light_depth = gamma()
    has_extension = flag()
    compact = flag()
    heights = monotone_values()
    child_heights = monotone_values()
    distances = monotone_values()
    alpha = delta()
    position_mod = 0
    forward: list[int] = []
    backward: list[int] = []
    if compact:
        position_mod = gamma()
        forward = monotone_values()
        backward = monotone_values()
    return KDistanceLabel(
        pre=pre,
        light_depth=light_depth,
        heights=heights,
        child_heights=child_heights,
        distances=distances,
        has_extension=has_extension,
        alpha=alpha,
        compact=compact,
        position_mod=position_mod,
        forward=forward,
        backward=backward,
    )


class KDistanceScheme(BoundedDistanceLabelingScheme):
    """The Section 4.3 k-distance labeling scheme."""

    name = "k-distance"

    def __init__(self, k: int, mode: str = AUTO) -> None:
        super().__init__(k)
        if mode not in (AUTO, COMPACT, SIMPLE):
            raise ValueError(f"unknown mode {mode!r}")
        self._mode = mode

    def params(self) -> dict:
        return {"k": self.k, "mode": self._mode}

    # -- encoding ------------------------------------------------------------

    def _resolve_mode(self, n: int) -> str:
        if self._mode != AUTO:
            return self._mode
        return COMPACT if self.k < math.log2(max(n, 2)) else SIMPLE

    def encode(self, tree: RootedTree) -> dict[int, KDistanceLabel]:
        if not tree.is_unit_weighted():
            raise ValueError("KDistanceScheme expects an unweighted (unit-weight) tree")
        k = self.k
        mode = self._resolve_mode(tree.n)
        decomposition = HeavyPathDecomposition(tree, variant="paper")

        order = decomposition.preorder_with_heavy_child_last()
        pre = [0] * tree.n
        for index, node in enumerate(order):
            pre[node] = index

        light_range_height = [0] * tree.n
        subtree_range_height = [0] * tree.n
        identifier = [0] * tree.n
        for node in tree.nodes():
            heavy = decomposition.heavy_child(node)
            light_size = tree.subtree_size(node) - (
                tree.subtree_size(heavy) if heavy is not None else 0
            )
            light_range_height[node] = range_height(pre[node], pre[node] + light_size - 1)
            subtree_range_height[node] = range_height(
                pre[node], pre[node] + tree.subtree_size(node) - 1
            )
            identifier[node] = range_identifier(pre[node], light_range_height[node])

        top_table_cache: dict[int, tuple[int, list[int], list[int]]] = {}

        def top_tables(top: int) -> tuple[int, list[int], list[int]]:
            """Lemma 4.5 data for a node on its heavy path (cached per node)."""
            cached = top_table_cache.get(top)
            if cached is not None:
                return cached
            path = decomposition.path_nodes(decomposition.path_of(top))
            position = decomposition.position_on_path(top)  # 0-based
            forward: list[int] = []
            for step in range(1, k + 1):
                if position + step >= len(path):
                    break
                forward.append(
                    floor_log2(identifier[path[position + step]] - identifier[top])
                )
            backward: list[int] = []
            for step in range(1, k + 1):
                if position - step < 0:
                    break
                backward.append(
                    floor_log2(identifier[top] - identifier[path[position - step]])
                )
            result = ((position + 1) % k, forward, backward)
            top_table_cache[top] = result
            return result

        labels: dict[int, KDistanceLabel] = {}
        for node in tree.nodes():
            chain = self._significant_ancestors(tree, decomposition, node)
            distances = []
            heights = []
            child_heights = []
            top_index = 0
            for index, ancestor in enumerate(chain):
                distance = tree.depth(node) - tree.depth(ancestor)
                if distance > k:
                    break
                top_index = index
                distances.append(distance)
                heights.append(light_range_height[ancestor])
                if index >= 1:
                    # the child of this ancestor on the path towards the node
                    # is the head of the previous chain element's heavy path
                    child = decomposition.head_of(chain[index - 1])
                    child_heights.append(subtree_range_height[child])
            has_extension = top_index + 1 < len(chain)
            if has_extension:
                ancestor = chain[top_index + 1]
                heights.append(light_range_height[ancestor])
                child = decomposition.head_of(chain[top_index])
                child_heights.append(subtree_range_height[child])

            top = chain[top_index]
            alpha_exact = tree.depth(top) - tree.depth(decomposition.head_of(top))
            if mode == COMPACT:
                alpha = min(alpha_exact, 2 * k + 1)
                position_mod, forward, backward = top_tables(top)
            else:
                alpha = alpha_exact
                position_mod, forward, backward = 0, [], []

            labels[node] = KDistanceLabel(
                pre=pre[node],
                light_depth=decomposition.light_depth(node),
                heights=heights,
                child_heights=child_heights,
                distances=distances,
                has_extension=has_extension,
                alpha=alpha,
                compact=(mode == COMPACT),
                position_mod=position_mod,
                forward=forward,
                backward=backward,
            )
        return labels

    @staticmethod
    def _significant_ancestors(
        tree: RootedTree, decomposition: HeavyPathDecomposition, node: int
    ) -> list[int]:
        """``node`` followed by the branch nodes above each heavy path head."""
        chain = [node]
        current = node
        while True:
            head = decomposition.head_of(current)
            parent = tree.parent(head)
            if parent is None:
                break
            chain.append(parent)
            current = parent
        return chain

    # -- decoding ------------------------------------------------------------

    def bounded_distance(
        self, label_u: KDistanceLabel, label_v: KDistanceLabel
    ) -> int | None:
        k = self.k
        if label_u.pre == label_v.pre:
            return 0

        match = self._deepest_common_entry(label_u, label_v)
        if match is not None:
            i, j = match
            return self._distance_with_match(label_u, i, label_v, j)

        # no common significant ancestor among the stored entries
        if label_u.chain_exhausted() and label_v.chain_exhausted():
            # both top ancestors lie on the root heavy path (NCSA = nil)
            between = self._top_path_distance(
                label_u, label_u.top_index, label_v, label_v.top_index
            )
            if between is None:
                return None
            total = label_u.distances[-1] + label_v.distances[-1] + between
            return total if total <= k else None
        return None

    # .. helpers ..............................................................

    @staticmethod
    def _deepest_common_entry(
        label_u: KDistanceLabel, label_v: KDistanceLabel
    ) -> tuple[int, int] | None:
        """Indices of the nearest common significant ancestor, if stored."""
        max_depth = min(label_u.light_depth, label_v.light_depth)
        for light_depth in range(max_depth, -1, -1):
            i = label_u.light_depth - light_depth
            j = label_v.light_depth - light_depth
            if i >= label_u.stored_entries or j >= label_v.stored_entries:
                continue
            if (
                label_u.heights[i] == label_v.heights[j]
                and label_u.entry_identifier(i) == label_v.entry_identifier(j)
            ):
                return i, j
        return None

    def _distance_with_match(
        self, label_u: KDistanceLabel, i: int, label_v: KDistanceLabel, j: int
    ) -> int | None:
        k = self.k
        u_has_distance = i < len(label_u.distances)
        v_has_distance = j < len(label_v.distances)

        if u_has_distance and v_has_distance:
            if i == 0:
                return label_v.distances[j] if label_v.distances[j] <= k else None
            if j == 0:
                return label_u.distances[i] if label_u.distances[i] <= k else None
            if label_u.child_identifier(i) == label_v.child_identifier(j):
                du = label_u.distances[i] - label_u.distances[i - 1]
                dv = label_v.distances[j] - label_v.distances[j - 1]
                total = (
                    label_u.distances[i - 1]
                    + label_v.distances[j - 1]
                    + abs(du - dv)
                )
            else:
                total = label_u.distances[i] + label_v.distances[j]
            return total if total <= k else None

        if not u_has_distance and not v_has_distance:
            # both matched at their extension entry: both tops are on the
            # nearest common heavy path (if they hang off the same child)
            if label_u.child_identifier(i) != label_v.child_identifier(j):
                return None
            between = self._top_path_distance(
                label_u, i - 1, label_v, j - 1
            )
            if between is None:
                return None
            total = label_u.distances[i - 1] + label_v.distances[j - 1] + between
            return total if total <= k else None

        # mixed case: exactly one side matched at its extension entry
        if u_has_distance:
            far, far_index = label_v, j
            near, near_index = label_u, i
        else:
            far, far_index = label_u, i
            near, near_index = label_v, j
        # ``far`` matched at its extension: its significant ancestor on the
        # common heavy path is its top; ``near`` has the NCSA stored.
        if near_index == 0:
            # the near node *is* the NCSA, i.e. an ancestor of the far node,
            # and the far node is further than k from it
            return None
        if far.child_identifier(far_index) != near.child_identifier(near_index):
            return None
        beta = near.distances[near_index] - near.distances[near_index - 1]
        if far.compact and far.alpha >= 2 * k + 1:
            return None
        between = abs((far.alpha + 1) - beta)
        total = far.distances[-1] + near.distances[near_index - 1] + between
        return total if total <= k else None

    def _top_path_distance(
        self,
        label_u: KDistanceLabel,
        index_u: int,
        label_v: KDistanceLabel,
        index_v: int,
    ) -> int | None:
        """Distance between the two top significant ancestors.

        Both are assumed to lie on the same heavy path; returns ``None``
        when the distance provably exceeds ``k`` (Lemma 4.5).
        """
        k = self.k
        capped = 2 * k + 1
        alpha_u, alpha_v = label_u.alpha, label_v.alpha
        if not label_u.compact or (alpha_u < capped and alpha_v < capped):
            return abs(alpha_u - alpha_v)

        id_u = label_u.entry_identifier(index_u)
        id_v = label_v.entry_identifier(index_v)
        if id_u == id_v:
            return 0
        if id_u < id_v:
            lower, higher = label_u, label_v
            lower_id, higher_id = id_u, id_v
        else:
            lower, higher = label_v, label_u
            lower_id, higher_id = id_v, id_u
        step = (higher.position_mod - lower.position_mod) % k
        if step == 0:
            step = k
        if step > len(lower.forward) or step > len(higher.backward):
            return None
        direct = floor_log2(higher_id - lower_id)
        if lower.forward[step - 1] == direct and higher.backward[step - 1] == direct:
            return step
        return None

    def parse(self, bits: Bits) -> KDistanceLabel:
        return KDistanceLabel.from_bits(bits)

    def parse_many(self, store, nodes) -> dict[int, KDistanceLabel]:
        """Word-level bulk parse: packed store words straight into labels.

        Each ``label_words`` word is decoded by :func:`_parse_word` with no
        reader objects and no intermediate :class:`Bits` (like Freedman and
        Alstrup there is no shared header to specialise on, so the store's
        own word supply loop is used as-is);
        ``tests/test_kdistance_parse_many.py`` checks this path
        field-for-field against the generic ``parse`` route.
        """
        return {
            node: _parse_word(value, bits)
            for node, value, bits in store.label_words(nodes)
        }
