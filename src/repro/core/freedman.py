"""The paper's main contribution: 1/4 log² n + o(log² n) distance labels.

Section 3 structure, mirrored here:

1. **Transform** (Section 2): attach a 0-weight pendant leaf to every node
   and binarize; queries are asked on the pendant leaves, whose pairwise
   distances equal the original distances.
2. **Heavy path decomposition + collapsed tree** (Section 2/Fig. 1) with the
   paper's ``>= |T|/2`` descent rule.
3. **Modified distance arrays** (Section 3.2): for every light edge on a
   node's root path the label stores a *truncated distance* (the most
   significant bits of the edge's head-to-head distance) plus an
   *accumulator* holding the least significant bits pushed over from the
   edges of *dominating* sibling subtrees.  Thin subtrees store their entry
   in full; the exceptional (last-ordered) subtree stores nothing.
4. **Fragment distance arrays** (Section 3.3): entries are stored relative
   to O(sqrt(log n)) fragment heads whose absolute root distances the label
   keeps explicitly, so a single entry (not a prefix sum) suffices to answer
   a query.
5. **Query** (Lemma 3.1 / Section 3.4): compute ``lightdepth(u, v)`` from the
   light codes, decide who dominates via the collapsed-tree postorder
   number, reconstruct the dominating side's critical entry from its
   truncated bits and the dominated side's accumulator, and finish with
   ``rd(u) + rd(v) - 2 rd(NCA)``.

Ablation switches (`use_fragments`, `use_accumulators`, `binarize`) let the
benchmarks quantify each ingredient's contribution to the label size
(DESIGN.md, "Ablations").
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.core.base import DistanceLabelingScheme
from repro.encoding.alphabetic import common_codeword_prefix
from repro.encoding.bitio import BitError, BitReader, BitWriter, Bits
from repro.encoding.elias import decode_delta, decode_gamma, encode_delta, encode_gamma
from repro.encoding.monotone import MonotoneSequence
from repro.nca.labels import LightDepthLabeling
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.transform import prepare_for_leaf_queries
from repro.trees.tree import RootedTree

#: a hanging subtree is *thin* when it is at most 1/2^8 of the subtree rooted
#: at its branch node (Lemma 3.4)
THIN_FACTOR = 256

_EMPTY_BITS = Bits("")


class _Entries(NamedTuple):
    """Packed Section 3.2 entry rows, indexed by collapsed path id.

    ``accumulator[p]`` is the *full* accumulator of parent path ``p``; a
    child's prefix (what its dominating siblings pushed before its turn) is
    ``accumulator[parent][:prefix_length[child]]``.
    """

    skip: bytearray
    kept_value: array
    kept_length: array
    pushed: array
    prefix_length: array
    accumulator: list


@dataclass
class FreedmanLabel:
    """Label of one (original) node.

    All per-level lists are indexed by the light-edge index ``0 .. L-1``
    where ``L`` is the light depth of the node's pendant leaf in the
    transformed tree.
    """

    node_id: int
    root_distance: int
    domination: int
    codewords: list[Bits]
    light_weights: list[int]
    fragment_refs: list[int]
    fragment_distances: list[int]
    entry_skip: list[bool]
    entry_kept: list[Bits]
    entry_pushed: list[int]
    accumulators: list[Bits] = field(default_factory=list)

    @property
    def light_depth(self) -> int:
        """Number of light edges on the pendant leaf's root path."""
        return len(self.codewords)

    # -- serialisation ------------------------------------------------------

    def to_bits(self) -> Bits:
        """Serialise the label as a self-contained bit string."""
        writer = BitWriter()
        encode_delta(writer, self.node_id)
        encode_delta(writer, self.root_distance)
        encode_delta(writer, self.domination)
        encode_gamma(writer, self.light_depth)
        for word in self.codewords:
            encode_gamma(writer, len(word))
            writer.write_bits(word)
        for weight in self.light_weights:
            encode_gamma(writer, weight)
        MonotoneSequence(self.fragment_refs).write(writer)
        MonotoneSequence(self.fragment_distances).write(writer)
        for level in range(self.light_depth):
            writer.write_bit(1 if self.entry_skip[level] else 0)
            if not self.entry_skip[level]:
                encode_gamma(writer, len(self.entry_kept[level]))
                writer.write_bits(self.entry_kept[level])
                encode_gamma(writer, self.entry_pushed[level])
        for level in range(self.light_depth):
            encode_gamma(writer, len(self.accumulators[level]))
            writer.write_bits(self.accumulators[level])
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "FreedmanLabel":
        """Parse a serialised label."""
        reader = BitReader(bits)
        node_id = decode_delta(reader)
        root_distance = decode_delta(reader)
        domination = decode_delta(reader)
        depth = decode_gamma(reader)
        codewords = []
        for _ in range(depth):
            length = decode_gamma(reader)
            codewords.append(reader.read_bits(length))
        light_weights = [decode_gamma(reader) for _ in range(depth)]
        fragment_refs = MonotoneSequence.read(reader).to_list()
        fragment_distances = MonotoneSequence.read(reader).to_list()
        entry_skip, entry_kept, entry_pushed = [], [], []
        for _ in range(depth):
            skip = reader.read_bit() == 1
            entry_skip.append(skip)
            if skip:
                entry_kept.append(Bits(""))
                entry_pushed.append(0)
            else:
                length = decode_gamma(reader)
                entry_kept.append(reader.read_bits(length))
                entry_pushed.append(decode_gamma(reader))
        accumulators = []
        for _ in range(depth):
            length = decode_gamma(reader)
            accumulators.append(reader.read_bits(length))
        return cls(
            node_id=node_id,
            root_distance=root_distance,
            domination=domination,
            codewords=codewords,
            light_weights=light_weights,
            fragment_refs=fragment_refs,
            fragment_distances=fragment_distances,
            entry_skip=entry_skip,
            entry_kept=entry_kept,
            entry_pushed=entry_pushed,
            accumulators=accumulators,
        )

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())

    def distance_array_bits(self) -> int:
        """Bits of the *modified distance array* (Section 3.2 core term).

        This is the quantity whose leading term the paper reduces from
        ``1/2 log² n`` to ``1/4 log² n``: the truncated distances plus the
        accumulators a label carries.  The benchmarks report it alongside
        the full label size because at practical ``n`` the lower-order terms
        (fragment arrays, light codes, length headers) dominate the total.
        """
        kept = sum(len(bits) for bits in self.entry_kept)
        accumulated = sum(len(bits) for bits in self.accumulators)
        return kept + accumulated

    def field_breakdown(self) -> dict[str, int]:
        """Bits used by each label component (diagnostics for EXPERIMENTS.md)."""
        from repro.encoding.elias import delta_length, gamma_length

        codeword_bits = sum(len(word) for word in self.codewords)
        codeword_headers = sum(gamma_length(len(word)) for word in self.codewords)
        kept = sum(len(bits) for bits in self.entry_kept)
        accumulated = sum(len(bits) for bits in self.accumulators)
        fragments = (
            MonotoneSequence(self.fragment_refs).bit_length()
            + MonotoneSequence(self.fragment_distances).bit_length()
        )
        return {
            "identity": delta_length(self.node_id)
            + delta_length(self.root_distance)
            + delta_length(self.domination),
            "light_code": codeword_bits + codeword_headers,
            "light_weights": sum(gamma_length(w) for w in self.light_weights),
            "fragments": fragments,
            "truncated_distances": kept,
            "accumulators": accumulated,
            "entry_headers": self.bit_length()
            - delta_length(self.node_id)
            - delta_length(self.root_distance)
            - delta_length(self.domination)
            - codeword_bits
            - codeword_headers
            - sum(gamma_length(w) for w in self.light_weights)
            - fragments
            - kept
            - accumulated,
        }


def _parse_word(value: int, total: int) -> FreedmanLabel:
    """Decode one serialised label straight from its packed integer.

    The word-level twin of :meth:`FreedmanLabel.from_bits`: the same field
    grammar (delta/gamma headers, light codewords, two monotone sequences,
    entry triples, accumulators) decoded with shifts and masks on the packed
    word — no :class:`BitReader`, and crucially no
    :class:`~repro.encoding.monotone.MonotoneSequence` reconstruction (the
    generic path re-encodes both sequences and builds predecessor structures
    that a parsed-label consumer never touches).
    """
    rem = total
    pack = Bits._pack

    def gamma() -> int:
        # single-call gamma: the code's value is the top ``zeros + 1`` bits
        # starting at the leading one (same arithmetic as the HLD parser)
        nonlocal rem
        suffix = value & ((1 << rem) - 1)
        if not suffix:
            raise BitError("bit stream exhausted")
        significant = suffix.bit_length()
        width = rem - significant + 1  # zeros + 1
        if width > significant:
            raise BitError("bit stream exhausted")
        rem -= 2 * width - 1
        return (suffix >> (significant - width)) - 1

    def delta() -> int:
        nonlocal rem
        width = gamma() + 1
        if width == 1:
            return 0
        if width - 1 > rem:
            raise BitError("bit stream exhausted")
        rem -= width - 1
        return ((1 << (width - 1)) | ((value >> rem) & ((1 << (width - 1)) - 1))) - 1

    def gamma_bits() -> Bits:
        # gamma-coded length followed by that many payload bits
        nonlocal rem
        count = gamma()
        if count > rem:
            raise BitError("bit stream exhausted")
        rem -= count
        return pack((value >> rem) & ((1 << count) - 1), count)

    def monotone_values() -> list[int]:
        # the value list of one MonotoneSequence (Lemma 2.2 layout: count,
        # low width, packed low parts, unary-coded high-part differences)
        nonlocal rem
        count = gamma()
        if count == 0:
            return []
        low_width = gamma()
        if low_width:
            if count * low_width > rem:
                raise BitError("bit stream exhausted")
            lows = []
            mask = (1 << low_width) - 1
            for _ in range(count):
                rem -= low_width
                lows.append((value >> rem) & mask)
        else:
            lows = [0] * count
        values: list[int] = []
        high = 0
        suffix = value & ((1 << rem) - 1)
        for index in range(count):
            if not suffix:
                raise BitError("bit stream exhausted")
            zeros = rem - suffix.bit_length()
            rem -= zeros + 1
            suffix &= (1 << rem) - 1
            high += zeros
            values.append((high << low_width) | lows[index])
        return values

    node_id = delta()
    root_distance = delta()
    domination = delta()
    depth = gamma()
    codewords = [gamma_bits() for _ in range(depth)]
    light_weights = [gamma() for _ in range(depth)]
    fragment_refs = monotone_values()
    fragment_distances = monotone_values()
    entry_skip: list[bool] = []
    entry_kept: list[Bits] = []
    entry_pushed: list[int] = []
    empty = pack(0, 0)
    for _ in range(depth):
        if not rem:
            raise BitError("bit stream exhausted")
        rem -= 1
        if (value >> rem) & 1:
            entry_skip.append(True)
            entry_kept.append(empty)
            entry_pushed.append(0)
        else:
            entry_skip.append(False)
            entry_kept.append(gamma_bits())
            entry_pushed.append(gamma())
    accumulators = [gamma_bits() for _ in range(depth)]
    return FreedmanLabel(
        node_id=node_id,
        root_distance=root_distance,
        domination=domination,
        codewords=codewords,
        light_weights=light_weights,
        fragment_refs=fragment_refs,
        fragment_distances=fragment_distances,
        entry_skip=entry_skip,
        entry_kept=entry_kept,
        entry_pushed=entry_pushed,
        accumulators=accumulators,
    )


class FreedmanScheme(DistanceLabelingScheme):
    """The 1/4 log² n + o(log² n) exact distance labeling scheme."""

    name = "freedman"

    def __init__(
        self,
        binarize: bool = True,
        use_fragments: bool = True,
        use_accumulators: bool = True,
    ) -> None:
        self._binarize = binarize
        self._use_fragments = use_fragments
        self._use_accumulators = use_accumulators
        #: statistics of the most recent :meth:`encode` call (for ablations)
        self.encoding_stats: dict[str, int] = {}

    def params(self) -> dict:
        return {
            "binarize": self._binarize,
            "use_fragments": self._use_fragments,
            "use_accumulators": self._use_accumulators,
        }

    # -- encoding ------------------------------------------------------------

    def encode(self, tree: RootedTree) -> dict[int, FreedmanLabel]:
        return dict(enumerate(self.encode_stream(tree)))

    def encode_stream(self, tree: RootedTree):
        """Yield each original node's label in node order, one at a time.

        All of Section 3's shared structure (transform, decomposition,
        collapsed tree, light codes, fragments, entries) is computed once;
        each label is then an independent :meth:`_assemble_label` over the
        node's pendant leaf, so a streaming consumer
        (:mod:`repro.scale.build`) never materialises the full label dict.
        """
        transform = prepare_for_leaf_queries(tree, binarize_tree=self._binarize)
        working = transform.tree
        decomposition = HeavyPathDecomposition(working, variant="paper")
        collapsed = CollapsedTree(decomposition)
        light = LightDepthLabeling(working, collapsed)

        boundaries, fragment_ref, entry_value = self._compute_fragments(
            working, collapsed
        )
        entries = self._compute_entries(working, collapsed, entry_value)

        query_node = transform.query_node
        for original in range(tree.n):
            yield self._assemble_label(
                original,
                query_node[original],
                working,
                collapsed,
                light,
                boundaries,
                fragment_ref,
                entries,
            )

    def _compute_fragments(
        self, working: RootedTree, collapsed: CollapsedTree
    ) -> tuple[list, "array", "array"]:
        """Fragment boundaries along every collapsed root path (Section 3.3).

        Rows are indexed by collapsed path id: ``boundaries`` is a list of
        (widely shared) boundary tuples, ``fragment_ref`` and
        ``entry_value`` are packed arrays — a dict entry per path costs an
        order of magnitude more, which the 10⁷-node streaming builds of
        :mod:`repro.scale` cannot afford.
        """
        n = working.n
        block = max(1, math.ceil(math.sqrt(max(1.0, math.log2(max(n, 2))))))

        path_count = len(collapsed)
        boundaries: list = [None] * path_count
        fragment_ref = array("i", bytes(4 * path_count))
        entry_value = array("q", bytes(8 * path_count))

        root_path = collapsed.root
        boundaries[root_path] = (working.root_distance(collapsed.head(root_path)),)

        order = [root_path]
        stack = list(collapsed.children(root_path))
        while stack:
            path = stack.pop()
            order.append(path)
            stack.extend(collapsed.children(path))

        for path in order[1:]:
            parent = collapsed.parent(path)
            assert parent is not None
            blist = boundaries[parent]
            head = collapsed.head(path)
            head_distance = working.root_distance(head)
            head_size = working.subtree_size(head)
            if self._use_fragments:
                while head_size * (2 ** (len(blist) * block)) <= n:
                    blist = blist + (head_distance,)
            boundaries[path] = blist
            fragment_ref[path] = len(blist) - 1
            entry_value[path] = head_distance - blist[-1]
        return boundaries, fragment_ref, entry_value

    def _compute_entries(
        self,
        working: RootedTree,
        collapsed: CollapsedTree,
        entry_value,
    ) -> "_Entries":
        """Per hanging subtree: (skip, kept bits, pushed count, accumulator prefix).

        Stored as packed per-path rows plus one *full* accumulator per
        parent path; a child's prefix is the accumulator's first
        ``prefix_length`` bits, sliced on demand during label assembly
        instead of materialising a ``Bits`` snapshot per sibling.
        """
        path_count = len(collapsed)
        skip = bytearray(path_count)
        kept_value = array("q", bytes(8 * path_count))
        kept_length = array("h", bytes(2 * path_count))
        pushed_row = array("i", bytes(4 * path_count))
        prefix_length = array("i", bytes(4 * path_count))
        accumulator: list = [None] * path_count
        total_pushed = 0
        fat = 0
        thin = 0
        skipped = 0

        for parent_path in range(path_count):
            children = collapsed.children(parent_path)
            if not children:
                continue
            accumulated = BitWriter()
            accumulated_bits = 0
            last_index = len(children) - 1
            for index, child in enumerate(children):
                prefix_length[child] = accumulated_bits
                if index == last_index:
                    skip[child] = 1
                    skipped += 1
                    continue
                value = entry_value[child]
                full_bits = value.bit_length()
                head = collapsed.head(child)
                branch = collapsed.branch_node(child)
                assert branch is not None
                hanging_size = working.subtree_size(head)
                branch_size = working.subtree_size(branch)
                is_thin = hanging_size * THIN_FACTOR <= branch_size
                if is_thin or not self._use_accumulators:
                    length = full_bits
                    thin += 1 if is_thin else 0
                else:
                    fat += 1
                    slack = 0.5 * math.log2(branch_size / hanging_size) * math.log2(
                        max(branch_size, 2)
                    )
                    length = min(full_bits, int(math.ceil(slack)) + 1)
                pushed = full_bits - length
                kept_value[child] = value >> pushed
                kept_length[child] = length
                pushed_row[child] = pushed
                if pushed:
                    accumulated.write_int(value & ((1 << pushed) - 1), pushed)
                    accumulated_bits += pushed
                    total_pushed += pushed
            accumulator[parent_path] = accumulated.getvalue()

        self.encoding_stats = {
            "pushed_bits": total_pushed,
            "fat_subtrees": fat,
            "thin_subtrees": thin,
            "skipped_entries": skipped,
        }
        return _Entries(
            skip, kept_value, kept_length, pushed_row, prefix_length, accumulator
        )

    def _assemble_label(
        self,
        original: int,
        leaf: int,
        working: RootedTree,
        collapsed: CollapsedTree,
        light: LightDepthLabeling,
        boundaries: list,
        fragment_ref,
        entries: _Entries,
    ) -> FreedmanLabel:
        sequence = collapsed.root_path_sequence(leaf)
        own_path = sequence[-1]
        codewords = light.codewords_for(leaf)

        light_weights: list[int] = []
        fragment_refs: list[int] = []
        entry_skip: list[bool] = []
        entry_kept: list[Bits] = []
        entry_pushed: list[int] = []
        accumulators: list[Bits] = []

        for level, path in enumerate(sequence[1:]):
            parent_path = sequence[level]
            skip = bool(entries.skip[path])
            prefix = entries.accumulator[parent_path][: entries.prefix_length[path]]
            if skip:
                kept = _EMPTY_BITS
                pushed = 0
            else:
                length = entries.kept_length[path]
                kept = (
                    Bits.from_int(entries.kept_value[path], length)
                    if length
                    else _EMPTY_BITS
                )
                pushed = entries.pushed[path]
            light_weights.append(collapsed.light_edge_weight(path))
            fragment_refs.append(fragment_ref[path])
            entry_skip.append(skip)
            entry_kept.append(kept)
            entry_pushed.append(pushed)
            accumulators.append(prefix)

        return FreedmanLabel(
            node_id=original,
            root_distance=working.root_distance(leaf),
            domination=collapsed.domination_number(own_path),
            codewords=codewords,
            light_weights=light_weights,
            fragment_refs=fragment_refs,
            fragment_distances=list(boundaries[own_path]),
            entry_skip=entry_skip,
            entry_kept=entry_kept,
            entry_pushed=entry_pushed,
            accumulators=accumulators,
        )

    # -- decoding ------------------------------------------------------------

    def distance(self, label_u: FreedmanLabel, label_v: FreedmanLabel) -> int:
        if label_u.node_id == label_v.node_id:
            return 0
        level = common_codeword_prefix(label_u.codewords, label_v.codewords)
        if label_u.domination < label_v.domination:
            dominating, dominated = label_u, label_v
        else:
            dominating, dominated = label_v, label_u
        if level >= dominating.light_depth or level >= dominated.light_depth:
            raise ValueError(
                "labels are inconsistent: the critical level is missing "
                "(were they produced by the same encoding?)"
            )
        if dominating.entry_skip[level]:
            raise ValueError(
                "labels are inconsistent: the dominating side's entry was skipped"
            )
        value = dominating.entry_kept[level].to_int()
        pushed = dominating.entry_pushed[level]
        if pushed:
            start = len(dominating.accumulators[level])
            segment = dominated.accumulators[level][start : start + pushed]
            if len(segment) != pushed:
                raise ValueError(
                    "labels are inconsistent: accumulator is shorter than expected"
                )
            value = (value << pushed) | segment.to_int()
        reference = dominating.fragment_distances[dominating.fragment_refs[level]]
        nca_distance = reference + value - dominating.light_weights[level]
        return (
            label_u.root_distance + label_v.root_distance - 2 * nca_distance
        )

    def parse(self, bits: Bits) -> FreedmanLabel:
        return FreedmanLabel.from_bits(bits)

    def parse_many(self, store, nodes) -> dict[int, FreedmanLabel]:
        """Word-level bulk parse: packed store words straight into labels.

        Each ``label_words`` word is decoded by :func:`_parse_word` with no
        reader objects, no intermediate :class:`Bits` and no
        ``MonotoneSequence`` reconstruction (unlike HLD there is no shared
        header to specialise on, so the store's own word supply loop is
        used as-is); ``tests/test_freedman_parse_many.py`` checks this path
        field-for-field against the generic ``parse`` route.
        """
        return {
            node: _parse_word(value, bits)
            for node, value, bits in store.label_words(nodes)
        }
