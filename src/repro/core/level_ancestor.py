"""Level-ancestor / parent labeling (Section 3.6).

The paper proves (Theorem 1.2) that level-ancestor labels cannot be shorter
than ~1/2 log² n bits, and notes that the Alstrup et al. distance labels can
be turned into a level-ancestor scheme: every label stores, per heavy path
on its root path, how far along the path to walk and which light edge to
take next, so the parent's label is obtained by decrementing the last offset
or dropping the last (codeword, offset) pair.

:class:`LevelAncestorScheme` implements exactly that hierarchical label.
Labels are distinct by construction (the hierarchical description identifies
the node), parent queries use a *single* label, and ``level_ancestor`` walks
up by repeated parent queries.  The universal-tree construction of
Lemma 3.6 (:mod:`repro.universal`) consumes this scheme.

The scheme is defined for unweighted (unit edge weight) trees, matching the
paper's setting for level ancestors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding.bitio import BitReader, BitWriter, Bits
from repro.encoding.elias import decode_delta, decode_gamma, encode_delta, encode_gamma
from repro.nca.labels import LightDepthLabeling
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree


@dataclass(frozen=True)
class LevelAncestorLabel:
    """Hierarchical position description: offsets along heavy paths and
    codewords of the light edges taken between them.

    Codewords are kept as packed :class:`Bits` values (hashable, so labels
    remain usable as dictionary keys through :meth:`key`); no character
    strings are materialised on the encode/parse paths.
    """

    depth: int
    codewords: tuple[Bits, ...]
    offsets: tuple[int, ...]

    @property
    def light_depth(self) -> int:
        """Number of light edges on the root path."""
        return len(self.codewords)

    def is_root(self) -> bool:
        """Whether this label describes the root."""
        return self.depth == 0

    def key(self) -> tuple:
        """Hashable identity (labels are unique per node)."""
        return (self.codewords, self.offsets)

    def to_bits(self) -> Bits:
        """Serialise the label."""
        writer = BitWriter()
        encode_delta(writer, self.depth)
        encode_gamma(writer, len(self.codewords))
        for word in self.codewords:
            encode_gamma(writer, len(word))
            writer.write_bits(word)
        for offset in self.offsets:
            encode_delta(writer, offset)
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "LevelAncestorLabel":
        """Parse a serialised label."""
        reader = BitReader(bits)
        depth = decode_delta(reader)
        count = decode_gamma(reader)
        codewords = []
        for _ in range(count):
            length = decode_gamma(reader)
            codewords.append(reader.read_bits(length))
        offsets = tuple(decode_delta(reader) for _ in range(count + 1))
        return cls(depth, tuple(codewords), offsets)

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())


class LevelAncestorScheme:
    """Parent / level-ancestor labels in the Section 3.6 style."""

    name = "level-ancestor"

    def encode(self, tree: RootedTree) -> dict[int, LevelAncestorLabel]:
        """Assign a hierarchical label to every node of a unit-weight tree."""
        if not tree.is_unit_weighted():
            raise ValueError("LevelAncestorScheme expects a unit-weight tree")
        decomposition = HeavyPathDecomposition(tree, variant="paper")
        collapsed = CollapsedTree(decomposition)
        light = LightDepthLabeling(tree, collapsed)

        labels: dict[int, LevelAncestorLabel] = {}
        for node in tree.nodes():
            sequence = collapsed.root_path_sequence(node)
            codewords = tuple(light.codewords_for(node))
            offsets: list[int] = []
            for index, path in enumerate(sequence):
                head = collapsed.head(path)
                if index + 1 < len(sequence):
                    branch = collapsed.branch_node(sequence[index + 1])
                    offsets.append(tree.depth(branch) - tree.depth(head))
                else:
                    offsets.append(tree.depth(node) - tree.depth(head))
            labels[node] = LevelAncestorLabel(
                depth=tree.depth(node),
                codewords=codewords,
                offsets=tuple(offsets),
            )
        return labels

    # -- queries (labels only) ----------------------------------------------

    @staticmethod
    def parent(label: LevelAncestorLabel) -> LevelAncestorLabel | None:
        """Label of the parent, or ``None`` for the root."""
        if label.is_root():
            return None
        offsets = list(label.offsets)
        if offsets[-1] > 0:
            offsets[-1] -= 1
            return LevelAncestorLabel(label.depth - 1, label.codewords, tuple(offsets))
        # the node is the head of its heavy path: drop the last level; the
        # parent is the branch node on the previous path, whose offset is
        # already the last remaining entry
        return LevelAncestorLabel(
            label.depth - 1, label.codewords[:-1], tuple(offsets[:-1])
        )

    @classmethod
    def level_ancestor(
        cls, label: LevelAncestorLabel, steps: int
    ) -> LevelAncestorLabel | None:
        """Label of the ancestor ``steps`` edges above, or ``None`` if absent."""
        current: LevelAncestorLabel | None = label
        for _ in range(steps):
            if current is None:
                return None
            current = cls.parent(current)
        return current

    @staticmethod
    def ancestor_at_depth(
        label: LevelAncestorLabel, depth: int
    ) -> LevelAncestorLabel | None:
        """Label of the ancestor at absolute ``depth`` (None if below the node)."""
        if depth > label.depth:
            return None
        return LevelAncestorScheme.level_ancestor(label, label.depth - depth)

    def parse(self, bits: Bits) -> LevelAncestorLabel:
        """Parse a label from its serialised bits."""
        return LevelAncestorLabel.from_bits(bits)

    @staticmethod
    def max_label_bits(labels: dict[int, LevelAncestorLabel]) -> int:
        """Maximum label size in bits."""
        return max(label.bit_length() for label in labels.values())
