"""Heavy-path distance labels with fixed-width fields (Section 3.1 framework).

The label of ``u`` stores, for every heavy path on its root path, the
preorder number of the path's head (a path identifier) and the weighted root
distance of the node where ``u``'s path leaves it (its *exit*).  Given two
labels the decoder finds the deepest common heavy path ``t`` and applies

    rd(NCA(u, v)) = min(exit_u[t], exit_v[t]),
    d(u, v)       = rd(u) + rd(v) - 2 rd(NCA(u, v)).

Every field is stored with a fixed width of ``ceil(log2 n)`` /
``ceil(log2 (max distance + 1))`` bits, so the label size is about
``2 log² n`` — this is the framework of Section 3.1 *before* any of the
paper's size optimisations, and serves as the reference point in the
label-size benchmarks.

Because the fields are fixed-width, a parsed label keeps them *packed*: the
path identifiers live in one integer (level 0 at the least significant
field) and the exits in another.  The decoder finds the deepest common
heavy path with one XOR and one lowest-set-bit instead of walking two
Python lists, and the parser extracts fields with shifts from the stored
words — the serialised format is unchanged.
"""

from __future__ import annotations

from repro.core.base import DistanceLabelingScheme
from repro.encoding.bitio import BitError, BitReader, BitWriter, Bits
from repro.encoding.elias import decode_gamma, encode_gamma
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree


class HLDLabel:
    """Fixed-width heavy-path label.

    ``path_ids``/``exits`` are exposed as lists (level 0 first) for
    inspection and encoding; internally both sequences are packed into
    single integers, which is what the decoder operates on.
    """

    __slots__ = (
        "root_distance",
        "id_width",
        "distance_width",
        "_count",
        "_sig",
        "_exits_packed",
        "_path_ids",
        "_exits",
    )

    def __init__(
        self,
        root_distance: int,
        path_ids: list[int],
        exits: list[int],
        id_width: int,
        distance_width: int,
    ) -> None:
        self.root_distance = root_distance
        self.id_width = id_width
        self.distance_width = distance_width
        self._path_ids = list(path_ids)
        self._exits = list(exits)
        self._count = len(self._path_ids)
        sig = 0
        for level, path_id in enumerate(self._path_ids):
            if path_id >> id_width or path_id < 0:
                raise BitError(f"value {path_id} does not fit in {id_width} bits")
            sig |= path_id << (level * id_width)
        packed = 0
        for level, exit_distance in enumerate(self._exits):
            if exit_distance >> distance_width or exit_distance < 0:
                raise BitError(
                    f"value {exit_distance} does not fit in {distance_width} bits"
                )
            packed |= exit_distance << (level * distance_width)
        self._sig = sig
        self._exits_packed = packed

    @classmethod
    def _from_packed(
        cls,
        root_distance: int,
        count: int,
        sig: int,
        exits_packed: int,
        id_width: int,
        distance_width: int,
    ) -> "HLDLabel":
        """Parser-side constructor: fields stay packed, lists are lazy."""
        self = object.__new__(cls)
        self.root_distance = root_distance
        self.id_width = id_width
        self.distance_width = distance_width
        self._count = count
        self._sig = sig
        self._exits_packed = exits_packed
        self._path_ids = None
        self._exits = None
        return self

    @property
    def path_ids(self) -> list[int]:
        """Per-level heavy-path identifiers (unpacked on demand)."""
        if self._path_ids is None:
            width, mask = self.id_width, (1 << self.id_width) - 1
            sig = self._sig
            self._path_ids = [
                (sig >> (level * width)) & mask for level in range(self._count)
            ]
        return self._path_ids

    @property
    def exits(self) -> list[int]:
        """Per-level exit distances (unpacked on demand)."""
        if self._exits is None:
            width, mask = self.distance_width, (1 << self.distance_width) - 1
            packed = self._exits_packed
            self._exits = [
                (packed >> (level * width)) & mask for level in range(self._count)
            ]
        return self._exits

    def __eq__(self, other) -> bool:
        if isinstance(other, HLDLabel):
            return (
                self.root_distance == other.root_distance
                and self.id_width == other.id_width
                and self.distance_width == other.distance_width
                and self._count == other._count
                and self._sig == other._sig
                and self._exits_packed == other._exits_packed
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"HLDLabel(root_distance={self.root_distance}, "
            f"path_ids={self.path_ids}, exits={self.exits}, "
            f"id_width={self.id_width}, distance_width={self.distance_width})"
        )

    def to_bits(self) -> Bits:
        """Serialise the label."""
        writer = BitWriter()
        encode_gamma(writer, self.id_width)
        encode_gamma(writer, self.distance_width)
        encode_gamma(writer, self._count)
        writer.write_int(self.root_distance, self.distance_width)
        # emit the packed fields level by level, root (level 0) first
        id_width, distance_width = self.id_width, self.distance_width
        id_mask = (1 << id_width) - 1
        distance_mask = (1 << distance_width) - 1
        sig, exits_packed = self._sig, self._exits_packed
        for level in range(self._count):
            writer.write_int((sig >> (level * id_width)) & id_mask, id_width)
            writer.write_int(
                (exits_packed >> (level * distance_width)) & distance_mask,
                distance_width,
            )
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "HLDLabel":
        """Parse a serialised label (word-at-a-time, no reader object)."""
        return _parse_word(bits.to_int(), len(bits))

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())


def _parse_word(value: int, total: int) -> HLDLabel:
    """Decode one serialised label from its packed integer.

    Straight-line gamma decoding (suffix ``bit_length`` finds the unary run)
    followed by shift/mask extraction of the fixed-width field pairs; this is
    the innermost loop of store serving, kept free of reader objects and
    intermediate :class:`Bits`.
    """
    # header: three gamma codes (id_width, distance_width, count).  This is
    # the cold fallback parser — the hot loop in ``HLDScheme.parse_many``
    # inlines the same arithmetic once, behind its header fast path.
    rem = total
    suffix = value if total else 0  # Bits guarantees value < 2**total
    header = [0, 0, 0]
    for index in range(3):
        if not suffix:
            raise BitError("bit stream exhausted")
        significant = suffix.bit_length()
        width = rem - significant + 1  # zeros + 1
        if width > significant:
            raise BitError("bit stream exhausted")
        header[index] = (suffix >> (significant - width)) - 1
        rem -= 2 * width - 1
        suffix &= (1 << rem) - 1
    id_width, distance_width, count = header

    pair_width = id_width + distance_width
    tail_bits = distance_width + count * pair_width
    if tail_bits > rem:
        raise BitError("bit stream exhausted")
    tail = (value >> (rem - tail_bits)) & ((1 << tail_bits) - 1)
    root_distance = tail >> (tail_bits - distance_width)
    id_mask = (1 << id_width) - 1
    distance_mask = (1 << distance_width) - 1
    sig = 0
    exits_packed = 0
    shift = tail_bits - distance_width  # start of the per-level pairs
    id_shift = 0
    distance_shift = 0
    for _ in range(count):
        shift -= pair_width
        pair = tail >> shift
        sig |= ((pair >> distance_width) & id_mask) << id_shift
        exits_packed |= (pair & distance_mask) << distance_shift
        id_shift += id_width
        distance_shift += distance_width
    return HLDLabel._from_packed(
        root_distance, count, sig, exits_packed, id_width, distance_width
    )


class HLDScheme(DistanceLabelingScheme):
    """Fixed-width heavy-path labels (the unoptimised Section 3.1 framework)."""

    name = "hld-fixed"

    def __init__(self, variant: str = "paper") -> None:
        self._variant = variant
        # ``query`` is definitionally ``distance`` for exact schemes, so
        # when neither hook is overridden, binding the bound method as an
        # instance attribute saves the base class's dispatch frame on the
        # engine's per-pair hot loop; any subclass overriding either hook
        # keeps the normal class-level dispatch
        if (
            type(self).query is DistanceLabelingScheme.query
            and type(self).distance is HLDScheme.distance
        ):
            self.query = self.distance

    def encode(self, tree: RootedTree) -> dict[int, HLDLabel]:
        return dict(enumerate(self.encode_stream(tree)))

    def encode_stream(self, tree: RootedTree):
        """Yield each node's label in node order, one at a time.

        The decomposition/collapsed-tree precompute is shared; each label
        is an independent assembly over the node's root-path sequence, so a
        streaming consumer (:mod:`repro.scale.build`) holds one label at a
        time instead of the whole ``dict``.
        """
        decomposition = HeavyPathDecomposition(tree, variant=self._variant)
        collapsed = CollapsedTree(decomposition)
        id_width = max(1, (tree.n - 1).bit_length())
        max_distance = max(tree.root_distance(v) for v in tree.nodes())
        distance_width = max(1, max_distance.bit_length())

        for node in tree.nodes():
            sequence = collapsed.root_path_sequence(node)
            path_ids: list[int] = []
            exits: list[int] = []
            for index, path in enumerate(sequence):
                path_ids.append(tree.preorder_index(collapsed.head(path)))
                if index + 1 < len(sequence):
                    branch = collapsed.branch_node(sequence[index + 1])
                    exits.append(tree.root_distance(branch))
                else:
                    exits.append(tree.root_distance(node))
            yield HLDLabel(
                root_distance=tree.root_distance(node),
                path_ids=path_ids,
                exits=exits,
                id_width=id_width,
                distance_width=distance_width,
            )

    def distance(self, label_u: HLDLabel, label_v: HLDLabel) -> int:
        id_width = label_u.id_width
        distance_width = label_u.distance_width
        if (
            id_width != label_v.id_width
            or distance_width != label_v.distance_width
        ):
            return self._distance_unpacked(label_u, label_v)
        # Deepest common heavy path: the lowest differing packed field.  A
        # path id is 0 only at level 0 (the root's preorder number), so when
        # the XOR is zero the shorter sequence is a prefix of the longer.
        diff = label_u._sig ^ label_v._sig
        if diff:
            deepest_common = ((diff & -diff).bit_length() - 1) // id_width - 1
            if deepest_common < 0:
                raise ValueError("labels do not come from the same tree")
        else:
            count_u, count_v = label_u._count, label_v._count
            deepest_common = (count_u if count_u < count_v else count_v) - 1
            if deepest_common < 0:
                raise ValueError("labels do not come from the same tree")
        shift = deepest_common * distance_width
        mask = (1 << distance_width) - 1
        exit_u = (label_u._exits_packed >> shift) & mask
        exit_v = (label_v._exits_packed >> shift) & mask
        nca_distance = exit_u if exit_u < exit_v else exit_v
        return label_u.root_distance + label_v.root_distance - 2 * nca_distance

    @staticmethod
    def _distance_unpacked(label_u: HLDLabel, label_v: HLDLabel) -> int:
        """Field-by-field fallback for labels with differing widths."""
        deepest_common = -1
        for index, (a, b) in enumerate(zip(label_u.path_ids, label_v.path_ids)):
            if a != b:
                break
            deepest_common = index
        if deepest_common < 0:
            raise ValueError("labels do not come from the same tree")
        nca_distance = min(label_u.exits[deepest_common], label_v.exits[deepest_common])
        return label_u.root_distance + label_v.root_distance - 2 * nca_distance

    def parse(self, bits: Bits) -> HLDLabel:
        return HLDLabel.from_bits(bits)

    def parse_many(self, store, nodes) -> dict[int, HLDLabel]:
        """Word-level bulk parse: packed store words straight into labels.

        All labels of one store share the same ``(id_width, distance_width)``
        header, so its gamma-coded bit pattern is recognised with a single
        shift-and-compare and the remaining fields are extracted inline;
        labels whose header differs (foreign or corrupt input) fall back to
        the general parser.
        """
        buffers = getattr(store, "buffers", None)
        if buffers is None:
            # duck-typed store exposing only the documented ``label_words``
            # protocol: still word-level, one parser call per label
            return {
                node: _parse_word(value, bits)
                for node, value, bits in store.label_words(nodes)
            }
        out: dict[int, HLDLabel] = {}
        header_pattern = -1
        header_len = 0
        id_width = distance_width = pair_width = 0
        id_mask = distance_mask = 0
        view, offsets, lengths = buffers()
        total_nodes = len(lengths)
        from_bytes = int.from_bytes
        new_label = object.__new__
        label_type = HLDLabel
        for node in nodes:
            if not 0 <= node < total_nodes:
                from repro.store.label_store import StoreError

                raise StoreError(f"node {node} out of range [0, {total_nodes})")
            bits = lengths[node]
            if bits:
                start = offsets[node]
                byte_count = (bits + 7) >> 3
                value = from_bytes(
                    view[start : start + byte_count], "big"
                ) >> ((byte_count << 3) - bits)
            else:
                value = 0
            if header_pattern < 0 or (
                bits <= header_len or (value >> (bits - header_len)) != header_pattern
            ):
                label = _parse_word(value, bits)
                out[node] = label
                id_width = label.id_width
                distance_width = label.distance_width
                width_id = (id_width + 1).bit_length()
                width_distance = (distance_width + 1).bit_length()
                header_len = (2 * width_id - 1) + (2 * width_distance - 1)
                header_pattern = ((id_width + 1) << (2 * width_distance - 1)) | (
                    distance_width + 1
                )
                pair_width = id_width + distance_width
                id_mask = (1 << id_width) - 1
                distance_mask = (1 << distance_width) - 1
                continue
            # gamma(count) right after the recognised header
            rem = bits - header_len
            suffix = value & ((1 << rem) - 1)
            if not suffix:
                raise BitError("bit stream exhausted")
            significant = suffix.bit_length()
            width = rem - significant + 1
            if width > significant:
                raise BitError("bit stream exhausted")
            count = (suffix >> (significant - width)) - 1
            rem -= 2 * width - 1
            tail_bits = distance_width + count * pair_width
            if tail_bits > rem:
                raise BitError("bit stream exhausted")
            tail = (value >> (rem - tail_bits)) & ((1 << tail_bits) - 1)
            root_distance = tail >> (tail_bits - distance_width)
            sig = 0
            exits_packed = 0
            shift = tail_bits - distance_width
            id_shift = 0
            distance_shift = 0
            for _ in range(count):
                shift -= pair_width
                pair = tail >> shift
                sig |= ((pair >> distance_width) & id_mask) << id_shift
                exits_packed |= (pair & distance_mask) << distance_shift
                id_shift += id_width
                distance_shift += distance_width
            label = new_label(label_type)
            label.root_distance = root_distance
            label.id_width = id_width
            label.distance_width = distance_width
            label._count = count
            label._sig = sig
            label._exits_packed = exits_packed
            label._path_ids = None
            label._exits = None
            out[node] = label
        return out
