"""Heavy-path distance labels with fixed-width fields (Section 3.1 framework).

The label of ``u`` stores, for every heavy path on its root path, the
preorder number of the path's head (a path identifier) and the weighted root
distance of the node where ``u``'s path leaves it (its *exit*).  Given two
labels the decoder finds the deepest common heavy path ``t`` and applies

    rd(NCA(u, v)) = min(exit_u[t], exit_v[t]),
    d(u, v)       = rd(u) + rd(v) - 2 rd(NCA(u, v)).

Every field is stored with a fixed width of ``ceil(log2 n)`` /
``ceil(log2 (max distance + 1))`` bits, so the label size is about
``2 log² n`` — this is the framework of Section 3.1 *before* any of the
paper's size optimisations, and serves as the reference point in the
label-size benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import DistanceLabelingScheme
from repro.encoding.bitio import BitReader, BitWriter, Bits
from repro.encoding.elias import decode_gamma, encode_gamma
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree


@dataclass
class HLDLabel:
    """Fixed-width heavy-path label."""

    root_distance: int
    path_ids: list[int]
    exits: list[int]
    id_width: int
    distance_width: int

    def to_bits(self) -> Bits:
        """Serialise the label."""
        writer = BitWriter()
        encode_gamma(writer, self.id_width)
        encode_gamma(writer, self.distance_width)
        encode_gamma(writer, len(self.path_ids))
        writer.write_int(self.root_distance, self.distance_width)
        for path_id, exit_distance in zip(self.path_ids, self.exits):
            writer.write_int(path_id, self.id_width)
            writer.write_int(exit_distance, self.distance_width)
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "HLDLabel":
        """Parse a serialised label."""
        reader = BitReader(bits)
        id_width = decode_gamma(reader)
        distance_width = decode_gamma(reader)
        count = decode_gamma(reader)
        root_distance = reader.read_int(distance_width)
        path_ids, exits = [], []
        for _ in range(count):
            path_ids.append(reader.read_int(id_width))
            exits.append(reader.read_int(distance_width))
        return cls(root_distance, path_ids, exits, id_width, distance_width)

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())


class HLDScheme(DistanceLabelingScheme):
    """Fixed-width heavy-path labels (the unoptimised Section 3.1 framework)."""

    name = "hld-fixed"

    def __init__(self, variant: str = "paper") -> None:
        self._variant = variant

    def encode(self, tree: RootedTree) -> dict[int, HLDLabel]:
        decomposition = HeavyPathDecomposition(tree, variant=self._variant)
        collapsed = CollapsedTree(decomposition)
        id_width = max(1, (tree.n - 1).bit_length())
        max_distance = max(tree.root_distance(v) for v in tree.nodes())
        distance_width = max(1, max_distance.bit_length())

        labels: dict[int, HLDLabel] = {}
        for node in tree.nodes():
            sequence = collapsed.root_path_sequence(node)
            path_ids: list[int] = []
            exits: list[int] = []
            for index, path in enumerate(sequence):
                path_ids.append(tree.preorder_index(collapsed.head(path)))
                if index + 1 < len(sequence):
                    branch = collapsed.branch_node(sequence[index + 1])
                    exits.append(tree.root_distance(branch))
                else:
                    exits.append(tree.root_distance(node))
            labels[node] = HLDLabel(
                root_distance=tree.root_distance(node),
                path_ids=path_ids,
                exits=exits,
                id_width=id_width,
                distance_width=distance_width,
            )
        return labels

    def distance(self, label_u: HLDLabel, label_v: HLDLabel) -> int:
        deepest_common = -1
        for index, (a, b) in enumerate(zip(label_u.path_ids, label_v.path_ids)):
            if a != b:
                break
            deepest_common = index
        if deepest_common < 0:
            raise ValueError("labels do not come from the same tree")
        nca_distance = min(label_u.exits[deepest_common], label_v.exits[deepest_common])
        return label_u.root_distance + label_v.root_distance - 2 * nca_distance

    def parse(self, bits: Bits) -> HLDLabel:
        return HLDLabel.from_bits(bits)
