"""Distance labeling schemes.

This package contains the paper's primary contribution — the
``1/4 log² n + o(log² n)``-bit exact distance labeling scheme of Section 3
(:class:`~repro.core.freedman.FreedmanScheme`) — together with every scheme
it is compared against or builds on:

* :class:`~repro.core.naive.NaiveListScheme` — store the whole root path,
* :class:`~repro.core.separator.SeparatorScheme` — centroid-decomposition
  labels in the style of Peleg's O(log² n) scheme,
* :class:`~repro.core.hld.HLDScheme` — the Section 3.1 framework with
  fixed-width fields,
* :class:`~repro.core.alstrup.AlstrupScheme` — the 1/2 log² n heavy-path
  scheme of Alstrup et al. that the paper improves on,
* :class:`~repro.core.level_ancestor.LevelAncestorScheme` — Section 3.6,
* :class:`~repro.core.kdistance.KDistanceScheme` — Section 4,
* :class:`~repro.core.adjacency.AdjacencyScheme` — the k = 1 special case,
* :class:`~repro.core.approximate.ApproximateScheme` — Section 5.

Every scheme produces self-contained bit-string labels; decoders consume
labels only (never the tree).
"""

from repro.core.base import (
    ApproximateDistanceLabelingScheme,
    BoundedDistanceLabelingScheme,
    DistanceLabelingScheme,
    LabelProtocol,
    LabelingScheme,
)
from repro.core.naive import NaiveListScheme
from repro.core.separator import SeparatorScheme
from repro.core.hld import HLDScheme
from repro.core.alstrup import AlstrupScheme
from repro.core.freedman import FreedmanScheme
from repro.core.level_ancestor import LevelAncestorScheme
from repro.core.kdistance import KDistanceScheme
from repro.core.adjacency import AdjacencyScheme
from repro.core.approximate import ApproximateScheme
from repro.core.registry import (
    ALL_SCHEME_NAMES,
    APPROXIMATE_SCHEMES,
    BOUNDED_SCHEMES,
    SCHEME_CLASSES,
    SCHEMES,
    SpecError,
    format_spec,
    make_any_scheme,
    make_scheme,
    make_scheme_from_spec,
    parse_spec,
    scheme_spec,
)

__all__ = [
    "LabelingScheme",
    "DistanceLabelingScheme",
    "BoundedDistanceLabelingScheme",
    "ApproximateDistanceLabelingScheme",
    "LabelProtocol",
    "NaiveListScheme",
    "SeparatorScheme",
    "HLDScheme",
    "AlstrupScheme",
    "FreedmanScheme",
    "LevelAncestorScheme",
    "KDistanceScheme",
    "AdjacencyScheme",
    "ApproximateScheme",
    "SCHEMES",
    "BOUNDED_SCHEMES",
    "APPROXIMATE_SCHEMES",
    "SCHEME_CLASSES",
    "ALL_SCHEME_NAMES",
    "make_scheme",
    "make_any_scheme",
    "make_scheme_from_spec",
    "parse_spec",
    "format_spec",
    "scheme_spec",
    "SpecError",
]
