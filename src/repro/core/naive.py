"""Folklore baseline: store the whole root path.

The label of ``u`` lists every ancestor of ``u`` together with its weighted
root distance.  The decoder intersects the two ancestor lists and applies
``d(u, v) = rd(u) + rd(v) - 2 rd(NCA)``.

Label size is Θ(depth(u) · log n) bits — linear for paths — which is exactly
why the paper's heavy-path machinery exists.  The scheme is kept as the
simplest possible correctness reference and as the degenerate point of the
label-size benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import DistanceLabelingScheme
from repro.encoding.bitio import BitReader, BitWriter, Bits
from repro.encoding.elias import decode_delta, decode_gamma, encode_delta, encode_gamma
from repro.trees.tree import RootedTree


@dataclass
class NaiveLabel:
    """Ancestor list with root distances, deepest first."""

    ancestors: list[int]
    distances: list[int]

    def to_bits(self) -> Bits:
        """Serialise the label."""
        writer = BitWriter()
        encode_gamma(writer, len(self.ancestors))
        for node, distance in zip(self.ancestors, self.distances):
            encode_delta(writer, node)
            encode_delta(writer, distance)
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "NaiveLabel":
        """Parse a serialised label."""
        reader = BitReader(bits)
        count = decode_gamma(reader)
        ancestors, distances = [], []
        for _ in range(count):
            ancestors.append(decode_delta(reader))
            distances.append(decode_delta(reader))
        return cls(ancestors, distances)

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())


class NaiveListScheme(DistanceLabelingScheme):
    """Store the full ancestor list in every label."""

    name = "naive-list"

    def encode(self, tree: RootedTree) -> dict[int, NaiveLabel]:
        labels = {}
        for node in tree.nodes():
            path = tree.path_to_root(node)
            labels[node] = NaiveLabel(
                ancestors=path,
                distances=[tree.root_distance(v) for v in path],
            )
        return labels

    def distance(self, label_u: NaiveLabel, label_v: NaiveLabel) -> int:
        ancestors_v = set(label_v.ancestors)
        nca_distance = None
        for node, distance in zip(label_u.ancestors, label_u.distances):
            if node in ancestors_v:
                nca_distance = distance
                break
        if nca_distance is None:
            raise ValueError("labels do not come from the same tree")
        return label_u.distances[0] + label_v.distances[0] - 2 * nca_distance

    def parse(self, bits: Bits) -> NaiveLabel:
        return NaiveLabel.from_bits(bits)
