"""The 1/2 log² n heavy-path scheme (Alstrup, Gortz, Halvorsen, Porat [8]).

This is the scheme the paper improves on.  Structure of a label:

* the size-weighted "light code" identifying the node's path in the
  collapsed tree (O(log n) bits, plays the role of the Lemma 2.1 NCA label),
* the weighted root distance of the node,
* the distance array ``D(u)``, stored as one Elias-coded *offset* per light
  edge on the root path: the distance from the head of the i-th heavy path
  to the node where ``u``'s path leaves it, plus the weight of the light
  edge taken.  Because hanging subtrees halve in size along the root path,
  the i-th offset needs about ``log(n / 2^i)`` bits and the array totals
  ``1/2 log² n + O(log n log log n)`` bits.

The decoder finds the deepest common heavy path from the light codes,
reconstructs the two exit depths by prefix-summing the offsets, and applies
the usual ``rd(u) + rd(v) - 2 min(exit_u, exit_v)`` identity.  Unlike the
Section 3.2 scheme, every label contains its full distance array, which is
exactly why this scheme can also answer level-ancestor queries
(Section 3.6) and why it cannot beat 1/2 log² n.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import DistanceLabelingScheme
from repro.encoding.alphabetic import common_codeword_prefix
from repro.encoding.bitio import BitError, BitReader, BitWriter, Bits
from repro.encoding.elias import decode_delta, decode_gamma, encode_delta, encode_gamma
from repro.nca.labels import LightDepthLabeling
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree


@dataclass
class AlstrupLabel:
    """Variable-width heavy-path label.

    ``offsets[i]`` is the weighted distance from the head of the i-th heavy
    path on the root path to the node where the path towards the labelled
    node leaves it (for the last entry: to the labelled node itself).
    ``light_weights[i]`` is the weight of the light edge taken at level i.
    """

    root_distance: int
    codewords: list[Bits]
    offsets: list[int]
    light_weights: list[int]

    @property
    def light_depth(self) -> int:
        """Number of light edges on the root path."""
        return len(self.codewords)

    def exit_distance(self, level: int) -> int:
        """Weighted root distance of the exit node on the ``level``-th path."""
        total = 0
        for index in range(level):
            total += self.offsets[index] + self.light_weights[index]
        return total + self.offsets[level]

    def to_bits(self) -> Bits:
        """Serialise the label."""
        writer = BitWriter()
        encode_delta(writer, self.root_distance)
        encode_gamma(writer, len(self.codewords))
        for word in self.codewords:
            encode_gamma(writer, len(word))
            writer.write_bits(word)
        for offset in self.offsets:
            encode_delta(writer, offset)
        for weight in self.light_weights:
            encode_gamma(writer, weight)
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "AlstrupLabel":
        """Parse a serialised label."""
        reader = BitReader(bits)
        root_distance = decode_delta(reader)
        depth = decode_gamma(reader)
        codewords = []
        for _ in range(depth):
            length = decode_gamma(reader)
            codewords.append(reader.read_bits(length))
        offsets = [decode_delta(reader) for _ in range(depth + 1)]
        light_weights = [decode_gamma(reader) for _ in range(depth)]
        return cls(root_distance, codewords, offsets, light_weights)

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())

    def distance_array_bits(self) -> int:
        """Bits of the distance array D(u) (the 1/2 log² n core term)."""
        from repro.encoding.elias import delta_length

        return sum(delta_length(offset) for offset in self.offsets)


def _parse_word(value: int, total: int) -> AlstrupLabel:
    """Decode one serialised label straight from its packed integer.

    The word-level twin of :meth:`AlstrupLabel.from_bits`: the same field
    grammar (delta root distance, gamma light depth, per-level codewords,
    delta offsets, gamma light weights) decoded with shifts and masks on
    the packed word — no :class:`BitReader` and no intermediate
    :class:`Bits` except the codewords the label keeps anyway.  Same
    inline-gamma arithmetic as the Freedman and HLD word parsers.
    """
    rem = total
    pack = Bits._pack

    def gamma() -> int:
        # single-call gamma: the code's value is the top ``zeros + 1`` bits
        # starting at the leading one
        nonlocal rem
        suffix = value & ((1 << rem) - 1)
        if not suffix:
            raise BitError("bit stream exhausted")
        significant = suffix.bit_length()
        width = rem - significant + 1  # zeros + 1
        if width > significant:
            raise BitError("bit stream exhausted")
        rem -= 2 * width - 1
        return (suffix >> (significant - width)) - 1

    def delta() -> int:
        nonlocal rem
        width = gamma() + 1
        if width == 1:
            return 0
        if width - 1 > rem:
            raise BitError("bit stream exhausted")
        rem -= width - 1
        return ((1 << (width - 1)) | ((value >> rem) & ((1 << (width - 1)) - 1))) - 1

    def gamma_bits() -> Bits:
        # gamma-coded length followed by that many payload bits
        nonlocal rem
        count = gamma()
        if count > rem:
            raise BitError("bit stream exhausted")
        rem -= count
        return pack((value >> rem) & ((1 << count) - 1), count)

    root_distance = delta()
    depth = gamma()
    codewords = [gamma_bits() for _ in range(depth)]
    offsets = [delta() for _ in range(depth + 1)]
    light_weights = [gamma() for _ in range(depth)]
    return AlstrupLabel(root_distance, codewords, offsets, light_weights)


class AlstrupScheme(DistanceLabelingScheme):
    """The 1/2 log² n + O(log n log log n) scheme of [8]."""

    name = "alstrup"

    def __init__(self, variant: str = "paper") -> None:
        self._variant = variant

    def encode(self, tree: RootedTree) -> dict[int, AlstrupLabel]:
        decomposition = HeavyPathDecomposition(tree, variant=self._variant)
        collapsed = CollapsedTree(decomposition)
        light = LightDepthLabeling(tree, collapsed)

        labels: dict[int, AlstrupLabel] = {}
        for node in tree.nodes():
            sequence = collapsed.root_path_sequence(node)
            codewords = light.codewords_for(node)
            offsets: list[int] = []
            light_weights: list[int] = []
            for index, path in enumerate(sequence):
                head = collapsed.head(path)
                if index + 1 < len(sequence):
                    branch = collapsed.branch_node(sequence[index + 1])
                    offsets.append(tree.root_distance(branch) - tree.root_distance(head))
                    light_weights.append(collapsed.light_edge_weight(sequence[index + 1]))
                else:
                    offsets.append(tree.root_distance(node) - tree.root_distance(head))
            labels[node] = AlstrupLabel(
                root_distance=tree.root_distance(node),
                codewords=codewords,
                offsets=offsets,
                light_weights=light_weights,
            )
        return labels

    def distance(self, label_u: AlstrupLabel, label_v: AlstrupLabel) -> int:
        common = common_codeword_prefix(label_u.codewords, label_v.codewords)
        exit_u = label_u.exit_distance(common)
        exit_v = label_v.exit_distance(common)
        nca_distance = min(exit_u, exit_v)
        return label_u.root_distance + label_v.root_distance - 2 * nca_distance

    def parse(self, bits: Bits) -> AlstrupLabel:
        return AlstrupLabel.from_bits(bits)

    def parse_many(self, store, nodes) -> dict[int, AlstrupLabel]:
        """Word-level bulk parse: packed store words straight into labels.

        Each ``label_words`` word is decoded by :func:`_parse_word` with no
        reader objects and no intermediate :class:`Bits` (like Freedman
        there is no shared header to specialise on, so the store's own word
        supply loop is used as-is); ``tests/test_alstrup_parse_many.py``
        checks this path field-for-field against the generic ``parse``
        route.
        """
        return {
            node: _parse_word(value, bits)
            for node, value, bits in store.label_words(nodes)
        }
