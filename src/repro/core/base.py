"""Common interface of every labeling scheme (internal layer).

.. note::
   Scheme classes are the **internal** encoder/decoder layer.  Application
   code selects a scheme by spec string through the :mod:`repro.api` façade
   (``DistanceIndex.build(tree, "k-distance:k=4")``) and receives typed
   :class:`repro.api.QueryResult` answers; the classes here are for
   label-level experiments and the measurement harness.

A labeling scheme has two halves:

* an **encoder** that sees the whole tree once and assigns each node a
  label, and
* a **decoder** that answers queries from labels alone.

Keeping the decoder free of tree access is the entire point of a labeling
scheme, so the base class makes the separation explicit: ``encode`` returns
plain label objects, every label serialises to a bit string through
``to_bits``/``from_bits``, and ``query_from_bits`` re-parses the labels
before answering, proving that no hidden state leaks from the encoder.

All three scheme families — exact, k-distance (bounded) and
(1+eps)-approximate — share the :class:`LabelingScheme` base, whose
``query(label_u, label_v)`` method is the single entry point used by
:class:`repro.store.QueryEngine`, the measurement harness and the CLI.
What ``query`` returns is family-specific (the ``kind`` attribute names the
semantics): an exact distance, a distance-or-``None`` cutoff answer, or a
(1+eps)-approximation.  The family base classes keep their traditional
method names (``distance``, ``bounded_distance``, ``approximate_distance``)
as the abstract hook and alias ``query`` to them.

``params()`` returns the constructor arguments needed to rebuild an
equivalent scheme; together with ``name`` it forms the persistence spec that
:class:`repro.store.LabelStore` writes next to the packed labels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Protocol, runtime_checkable

from repro.encoding.bitio import Bits
from repro.trees.tree import RootedTree


@runtime_checkable
class LabelProtocol(Protocol):
    """Minimal protocol every label object satisfies."""

    def to_bits(self) -> Bits:
        """Serialise the label to a self-contained bit string."""
        ...

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        ...


class LabelingScheme(ABC):
    """Base class shared by exact, bounded and approximate schemes."""

    #: short identifier used by the registry, the store files and the CLI
    name: str = "abstract"

    #: query semantics: ``"exact"``, ``"bounded"`` or ``"approximate"``
    kind: str = "exact"

    @abstractmethod
    def encode(self, tree: RootedTree) -> dict[int, LabelProtocol]:
        """Assign a label to every node of ``tree``."""

    @abstractmethod
    def parse(self, bits: Bits) -> LabelProtocol:
        """Parse a label from its serialised bits."""

    def parse_many(self, store, nodes) -> dict[int, LabelProtocol]:
        """Parse many stored labels at once (the store-serving supply path).

        ``store`` is any object with a ``label_words(nodes)`` iterator
        yielding ``(node, packed_value, bit_length)`` — in practice a
        :class:`repro.store.LabelStore`.  The default implementation wraps
        each packed word in a :class:`Bits` and calls :meth:`parse`; schemes
        with a word-level fast parser override this to skip the wrapper
        (overrides may additionally use ``store.buffers()`` when present,
        falling back to ``label_words`` so duck-typed stores keep working).
        """
        from_int = Bits.from_int
        parse = self.parse
        return {
            node: parse(from_int(value, bits))
            for node, value, bits in store.label_words(nodes)
        }

    def encode_stream(self, tree: RootedTree):
        """Yield each node's label in node order (``0 .. n-1``).

        The supply side of the external-memory build pipeline
        (:mod:`repro.scale.build`): a consumer that serialises and discards
        each label as it arrives never holds more than one label (plus the
        scheme's shared precompute) in memory.  The default materialises
        :meth:`encode` — correct for every scheme but no cheaper; schemes
        whose encoder is "shared precompute, then an independent per-node
        assembly" (HLD, Freedman) override this to stream for real.
        """
        labels = self.encode(tree)
        for node in range(len(labels)):
            yield labels[node]

    @abstractmethod
    def query(self, label_u: LabelProtocol, label_v: LabelProtocol):
        """Answer one query from two parsed labels (family-specific value)."""

    def query_from_bits(self, bits_u: Bits, bits_v: Bits):
        """Answer a query from serialised labels only."""
        return self.query(self.parse(bits_u), self.parse(bits_v))

    def params(self) -> dict:
        """Constructor arguments that rebuild an equivalent scheme.

        The pair ``(name, params())`` is the persistence spec stored by
        :class:`repro.store.LabelStore` and resolved back through
        :func:`repro.core.registry.make_any_scheme`.
        """
        return {}

    # -- measurement helpers ------------------------------------------------

    @staticmethod
    def label_sizes(labels: dict[int, LabelProtocol]) -> list[int]:
        """Bit lengths of all labels."""
        return [label.bit_length() for label in labels.values()]

    @classmethod
    def max_label_bits(cls, labels: dict[int, LabelProtocol]) -> int:
        """Maximum label size in bits (the quantity the paper bounds)."""
        return max(cls.label_sizes(labels))

    @classmethod
    def average_label_bits(cls, labels: dict[int, LabelProtocol]) -> float:
        """Average label size in bits."""
        sizes = cls.label_sizes(labels)
        return sum(sizes) / len(sizes)

    @classmethod
    def total_label_bits(cls, labels: dict[int, LabelProtocol]) -> int:
        """Total size of all labels in bits (the honest space measure)."""
        return sum(cls.label_sizes(labels))


class DistanceLabelingScheme(LabelingScheme):
    """Base class for exact distance labeling schemes."""

    name: str = "abstract"
    kind = "exact"

    @abstractmethod
    def distance(self, label_u: LabelProtocol, label_v: LabelProtocol) -> int:
        """Exact distance computed from two labels."""

    def query(self, label_u: LabelProtocol, label_v: LabelProtocol) -> int:
        """Unified query interface: the exact distance."""
        return self.distance(label_u, label_v)

    def distance_from_bits(self, bits_u: Bits, bits_v: Bits) -> int:
        """Answer a query from serialised labels only."""
        return self.distance(self.parse(bits_u), self.parse(bits_v))


class BoundedDistanceLabelingScheme(LabelingScheme):
    """Base class for k-distance schemes (Section 4).

    ``bounded_distance`` returns the exact distance when it is at most ``k``
    and ``None`` otherwise.
    """

    name: str = "abstract-bounded"
    kind = "bounded"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k

    @abstractmethod
    def bounded_distance(
        self, label_u: LabelProtocol, label_v: LabelProtocol
    ) -> int | None:
        """Distance if it is at most ``k``; ``None`` otherwise."""

    def query(self, label_u: LabelProtocol, label_v: LabelProtocol) -> int | None:
        """Unified query interface: the bounded distance."""
        return self.bounded_distance(label_u, label_v)

    def params(self) -> dict:
        return {"k": self.k}

    def bounded_distance_from_bits(self, bits_u: Bits, bits_v: Bits) -> int | None:
        """Answer a query from serialised labels only."""
        return self.bounded_distance(self.parse(bits_u), self.parse(bits_v))


class ApproximateDistanceLabelingScheme(LabelingScheme):
    """Base class for (1+eps)-approximate schemes (Section 5)."""

    name: str = "abstract-approx"
    kind = "approximate"

    def __init__(self, epsilon: float) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon

    @abstractmethod
    def approximate_distance(
        self, label_u: LabelProtocol, label_v: LabelProtocol
    ) -> int:
        """A value in ``[d(u, v), (1 + eps) * d(u, v)]``."""

    def query(self, label_u: LabelProtocol, label_v: LabelProtocol):
        """Unified query interface: the (1+eps)-approximate distance."""
        return self.approximate_distance(label_u, label_v)

    def params(self) -> dict:
        return {"epsilon": self.epsilon}

    def approximate_distance_from_bits(self, bits_u: Bits, bits_v: Bits) -> int:
        """Answer a query from serialised labels only."""
        return self.approximate_distance(self.parse(bits_u), self.parse(bits_v))
