"""Common interface of every labeling scheme.

A labeling scheme has two halves:

* an **encoder** that sees the whole tree once and assigns each node a
  label, and
* a **decoder** that answers queries from labels alone.

Keeping the decoder free of tree access is the entire point of a labeling
scheme, so the base class makes the separation explicit: ``encode`` returns
plain label objects, every label serialises to a bit string through
``to_bits``/``from_bits``, and ``distance_from_bits`` re-parses the labels
before answering, proving that no hidden state leaks from the encoder.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Protocol, runtime_checkable

from repro.encoding.bitio import Bits
from repro.trees.tree import RootedTree


@runtime_checkable
class LabelProtocol(Protocol):
    """Minimal protocol every label object satisfies."""

    def to_bits(self) -> Bits:
        """Serialise the label to a self-contained bit string."""
        ...

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        ...


class DistanceLabelingScheme(ABC):
    """Base class for exact distance labeling schemes."""

    #: short identifier used by the registry, the CLI and the benchmarks
    name: str = "abstract"

    @abstractmethod
    def encode(self, tree: RootedTree) -> dict[int, LabelProtocol]:
        """Assign a label to every node of ``tree``."""

    @abstractmethod
    def distance(self, label_u: LabelProtocol, label_v: LabelProtocol) -> int:
        """Exact distance computed from two labels."""

    @abstractmethod
    def parse(self, bits: Bits) -> LabelProtocol:
        """Parse a label from its serialised bits."""

    def distance_from_bits(self, bits_u: Bits, bits_v: Bits) -> int:
        """Answer a query from serialised labels only."""
        return self.distance(self.parse(bits_u), self.parse(bits_v))

    # -- measurement helpers ------------------------------------------------

    @staticmethod
    def label_sizes(labels: dict[int, LabelProtocol]) -> list[int]:
        """Bit lengths of all labels."""
        return [label.bit_length() for label in labels.values()]

    @classmethod
    def max_label_bits(cls, labels: dict[int, LabelProtocol]) -> int:
        """Maximum label size in bits (the quantity the paper bounds)."""
        return max(cls.label_sizes(labels))

    @classmethod
    def average_label_bits(cls, labels: dict[int, LabelProtocol]) -> float:
        """Average label size in bits."""
        sizes = cls.label_sizes(labels)
        return sum(sizes) / len(sizes)


class BoundedDistanceLabelingScheme(ABC):
    """Base class for k-distance schemes (Section 4).

    ``bounded_distance`` returns the exact distance when it is at most ``k``
    and ``None`` otherwise.
    """

    name: str = "abstract-bounded"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k

    @abstractmethod
    def encode(self, tree: RootedTree) -> dict[int, LabelProtocol]:
        """Assign a label to every node of ``tree``."""

    @abstractmethod
    def bounded_distance(
        self, label_u: LabelProtocol, label_v: LabelProtocol
    ) -> int | None:
        """Distance if it is at most ``k``; ``None`` otherwise."""

    @abstractmethod
    def parse(self, bits: Bits) -> LabelProtocol:
        """Parse a label from its serialised bits."""

    def bounded_distance_from_bits(self, bits_u: Bits, bits_v: Bits) -> int | None:
        """Answer a query from serialised labels only."""
        return self.bounded_distance(self.parse(bits_u), self.parse(bits_v))


class ApproximateDistanceLabelingScheme(ABC):
    """Base class for (1+eps)-approximate schemes (Section 5)."""

    name: str = "abstract-approx"

    def __init__(self, epsilon: float) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon

    @abstractmethod
    def encode(self, tree: RootedTree) -> dict[int, LabelProtocol]:
        """Assign a label to every node of ``tree``."""

    @abstractmethod
    def approximate_distance(
        self, label_u: LabelProtocol, label_v: LabelProtocol
    ) -> int:
        """A value in ``[d(u, v), (1 + eps) * d(u, v)]``."""

    @abstractmethod
    def parse(self, bits: Bits) -> LabelProtocol:
        """Parse a label from its serialised bits."""

    def approximate_distance_from_bits(self, bits_u: Bits, bits_v: Bits) -> int:
        """Answer a query from serialised labels only."""
        return self.approximate_distance(self.parse(bits_u), self.parse(bits_v))
