"""Adjacency labels (the k = 1 end of the bounded-distance spectrum).

Two constructions:

* :class:`AdjacencyScheme` — the folklore ``2 log n``-bit labels (own
  preorder number plus the parent's): two nodes are adjacent exactly when
  one's identifier is the other's parent identifier.  The optimal
  ``log n + O(1)`` labels of Alstrup, Dahlgaard and Knudsen [6] are out of
  scope (a separate FOCS'15 paper); this scheme provides the same query
  semantics at the k = 1 point of the Table 1 benchmarks.
* ``KDistanceScheme(k=1)`` (see :mod:`repro.core.kdistance`) — the paper's
  own machinery specialised to k = 1, used for cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding.bitio import BitReader, BitWriter, Bits
from repro.encoding.elias import decode_delta, encode_delta
from repro.trees.tree import RootedTree


@dataclass(frozen=True)
class AdjacencyLabel:
    """Own identifier plus parent identifier (roots repeat their own id)."""

    identifier: int
    parent_identifier: int

    def to_bits(self) -> Bits:
        """Serialise the label."""
        writer = BitWriter()
        encode_delta(writer, self.identifier)
        encode_delta(writer, self.parent_identifier)
        return writer.getvalue()

    @classmethod
    def from_bits(cls, bits: Bits) -> "AdjacencyLabel":
        """Parse a serialised label."""
        reader = BitReader(bits)
        return cls(decode_delta(reader), decode_delta(reader))

    def bit_length(self) -> int:
        """Size of the serialised label in bits."""
        return len(self.to_bits())


class AdjacencyScheme:
    """Folklore parent-pointer adjacency labels."""

    name = "adjacency"

    def encode(self, tree: RootedTree) -> dict[int, AdjacencyLabel]:
        """Assign labels; identifiers are preorder numbers."""
        labels = {}
        for node in tree.nodes():
            parent = tree.parent(node)
            own = tree.preorder_index(node)
            labels[node] = AdjacencyLabel(
                identifier=own,
                parent_identifier=own if parent is None else tree.preorder_index(parent),
            )
        return labels

    @staticmethod
    def adjacent(label_u: AdjacencyLabel, label_v: AdjacencyLabel) -> bool:
        """Whether the two labelled nodes are joined by an edge."""
        if label_u.identifier == label_v.identifier:
            return False
        return (
            label_u.parent_identifier == label_v.identifier
            or label_v.parent_identifier == label_u.identifier
        )

    def bounded_distance(
        self, label_u: AdjacencyLabel, label_v: AdjacencyLabel
    ) -> int | None:
        """1-distance semantics: 0, 1, or ``None`` (further than 1)."""
        if label_u.identifier == label_v.identifier:
            return 0
        return 1 if self.adjacent(label_u, label_v) else None

    def parse(self, bits: Bits) -> AdjacencyLabel:
        """Parse a label from its serialised bits."""
        return AdjacencyLabel.from_bits(bits)
