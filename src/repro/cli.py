"""Command-line interface: ``repro-labels <command>``.

The store workflow is built on the :mod:`repro.api` façade: ``encode``
builds a :class:`~repro.api.DistanceIndex` and saves it, ``query`` opens
one and answers from labels alone, and ``catalog`` packs many named
indexes into one :class:`~repro.api.IndexCatalog` file and routes queries
by name::

    repro-labels encode --scheme freedman --family random --n 1000 --out labels.bin
    repro-labels encode --scheme k-distance:k=6 --out kd.bin
    repro-labels query labels.bin --pairs 1000          # random batched queries
    repro-labels query labels.bin --u 17 --v 1234       # one pair
    repro-labels catalog add forest.cat --name core --scheme freedman --n 500
    repro-labels catalog add forest.cat --name acl --scheme k-distance:k=4 --n 500
    repro-labels catalog list forest.cat
    repro-labels catalog query forest.cat --name core --u 3 --v 42

``--scheme`` takes a spec string (``repro-labels encode --list`` prints the
registered names); parameters ride in the spec (``approximate:epsilon=0.1``)
or through the legacy ``--k`` / ``--epsilon`` flags.

Beyond-RAM trees are built with the external-memory pipeline and served
straight off a read-only memory mapping (:mod:`repro.scale`)::

    repro-labels build --scheme freedman --n 10000000 --streaming --out big.bin
    repro-labels serve big.bin --mmap --workers 4

The serving workflow puts an index (or a whole catalog) behind a TCP
endpoint and drives it with synthetic traffic::

    repro-labels serve labels.bin --port 7117
    repro-labels serve forest.cat --port 7117 --workers 4 --pair-cache 8192
    repro-labels loadgen --port 7117 --pairs 20000 --workload zipf --skew 1.1
    repro-labels loadgen --port 7117 --workload sibling --family random

``serve`` answers the :mod:`repro.serve` wire protocol with micro-batched
query coalescing (``--no-coalesce`` for the naive baseline); ``--workers N``
pre-forks a shard-per-core fleet sharing the port, ``--max-pending`` bounds
the per-worker queue (overload is shed with BUSY and clients retry), and
``--pair-cache`` answers repeated hot pairs straight from a response cache.
``loadgen`` reports client-side throughput and the fleet-merged server
statistics (latency percentiles from bucket-wise merged histograms).

The observability plane rides on the same endpoint::

    repro-labels serve labels.bin --workers 4 --metrics-port 9117 --slow-ms 5
    curl http://127.0.0.1:9117/metrics          # Prometheus text exposition
    repro-labels loadgen --port 7117 --trace-every 100   # per-stage breakdown
    repro-labels trace --port 7117              # recent traces + slow log

The experiment commands mirror the index of DESIGN.md so every table and
figure of the paper can be regenerated from the shell::

    repro-labels table1-exact --sizes 256 1024 4096
    repro-labels table1-kdistance | table1-approx
    repro-labels fig1 | fig2 | fig4 | fig5
    repro-labels demo --family random --n 1000
    repro-labels store-bench
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import (
    run_fig1_heavy_paths,
    run_fig2_hm_trees,
    run_fig4_universal_tree,
    run_fig5_regular_trees,
    run_store_throughput,
    run_table1_approx,
    run_table1_exact,
    run_table1_kdistance,
)
from repro.analysis.reporting import format_table


def _add_size_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)


def _add_tree_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", default="random")
    parser.add_argument("--n", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)


def _add_scheme_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheme",
        default="freedman",
        help="scheme spec, e.g. freedman, k-distance:k=4, approximate:epsilon=0.1",
    )
    parser.add_argument("--k", type=int, default=None, help="k for k-distance schemes")
    parser.add_argument(
        "--epsilon", type=float, default=None, help="epsilon for approximate schemes"
    )


def _add_query_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pairs", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--u", type=int, default=None)
    parser.add_argument("--v", type=int, default=None)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-labels",
        description="Reproduction of 'Optimal Distance Labeling Schemes for Trees'",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    exact = commands.add_parser("table1-exact", help="exact label sizes (Table 1)")
    _add_size_options(exact)
    exact.add_argument("--families", nargs="+", default=None)

    kdist = commands.add_parser("table1-kdistance", help="k-distance label sizes")
    _add_size_options(kdist)
    kdist.add_argument("--ks", type=int, nargs="+", default=None)

    approx = commands.add_parser("table1-approx", help="approximate label sizes")
    _add_size_options(approx)
    approx.add_argument("--epsilons", type=float, nargs="+", default=None)

    commands.add_parser("fig1", help="heavy path / collapsed tree structure")
    commands.add_parser("fig2", help="(h, M)-tree lower-bound instances")
    fig4 = commands.add_parser("fig4", help="universal tree from parent labels")
    fig4.add_argument("--max-n", type=int, default=5)
    commands.add_parser("fig5", help="regular-tree lower-bound instances")

    demo = commands.add_parser("demo", help="encode one tree and answer queries")
    _add_tree_options(demo)

    encode = commands.add_parser(
        "encode", help="encode a tree into a distance-index file"
    )
    _add_scheme_options(encode)
    _add_tree_options(encode)
    encode.add_argument("--out", default="labels.bin")
    encode.add_argument(
        "--list", action="store_true", help="list registered schemes and exit"
    )

    query = commands.add_parser(
        "query", help="answer distance queries from an index file"
    )
    query.add_argument("store", help="file written by the encode command")
    _add_query_options(query)

    catalog = commands.add_parser(
        "catalog", help="build and query multi-index catalog files"
    )
    actions = catalog.add_subparsers(dest="action", required=True)

    cat_add = actions.add_parser(
        "add", help="encode a tree and add it to a catalog (created if missing)"
    )
    cat_add.add_argument("catalog", help="catalog file to create or extend")
    cat_add.add_argument("--name", required=True, help="member name of the new index")
    _add_scheme_options(cat_add)
    _add_tree_options(cat_add)

    cat_list = actions.add_parser("list", help="show the members of a catalog")
    cat_list.add_argument("catalog")

    cat_query = actions.add_parser("query", help="route queries to one member")
    cat_query.add_argument("catalog")
    cat_query.add_argument("--name", required=True, help="member index to query")
    _add_query_options(cat_query)

    store_bench = commands.add_parser(
        "store-bench", help="batched vs per-pair query throughput"
    )
    _add_size_options(store_bench)

    kernels = commands.add_parser(
        "kernels", help="probe the native/numpy/python kernel tiers"
    )
    kernels.add_argument(
        "--build", action="store_true",
        help="compile the native extension before probing (errors are shown "
        "instead of silently degrading to the next tier)",
    )

    build = commands.add_parser(
        "build",
        help="build a store file, optionally via the external-memory pipeline",
    )
    _add_scheme_options(build)
    _add_tree_options(build)
    build.add_argument("--out", default="labels.bin")
    build.add_argument(
        "--streaming", action="store_true",
        help="stream labels to disk in fixed-size runs instead of "
        "materialising the whole store in memory (byte-identical output)",
    )
    build.add_argument(
        "--run-mib", type=int, default=32,
        help="streaming run buffer in MiB (spill threshold)",
    )
    build.add_argument(
        "--progress", action="store_true",
        help="print a progress line every ~5%% of nodes (streaming only)",
    )

    serve = commands.add_parser(
        "serve", help="serve an index or catalog file over TCP"
    )
    serve.add_argument("target", help="store (RLS1) or catalog (RLC1) file")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7117)
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; >1 pre-forks a shard-per-core fleet sharing "
        "the port (SO_REUSEPORT where available)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096,
        help="parsed-label LRU size (store targets; catalogs use the default)",
    )
    serve.add_argument(
        "--mmap", action="store_true",
        help="serve the file through a read-only memory mapping instead of "
        "reading it into the heap; a pre-forked fleet then shares one "
        "physical copy of the payload via the page cache",
    )
    serve.add_argument(
        "--pair-cache", type=int, default=0,
        help="hot-pair response cache entries per member (0 disables); "
        "repeated {u,v} pairs are answered without touching the labels",
    )
    serve.add_argument(
        "--no-coalesce", action="store_true",
        help="answer each query alone (the naive one-request-per-batch path)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8192,
        help="flush the coalescer early beyond this many pending queries",
    )
    serve.add_argument(
        "--max-pending", type=int, default=65536,
        help="bound on queued queries per worker; beyond it requests are "
        "shed with BUSY and clients retry with jittered backoff",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="expose a Prometheus text /metrics endpoint on this port "
        "(fleet mode scrapes every worker live per GET)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=None,
        help="log queries slower than this many milliseconds to the "
        "per-worker slow-query log (see the trace command)",
    )
    serve.add_argument(
        "--trace-ring", type=int, default=256,
        help="recent traced requests kept per worker for the trace command",
    )
    serve.add_argument(
        "--max-restarts", type=int, default=5,
        help="fleet mode: restarts allowed per worker slot inside the "
        "restart window before the supervisor declares a crash loop and "
        "tears the fleet down",
    )
    serve.add_argument(
        "--restart-window", type=float, default=30.0,
        help="fleet mode: sliding window (seconds) for the crash-loop "
        "restart budget; deaths older than this are forgotten",
    )
    serve.add_argument(
        "--shard-members", action="store_true",
        help="catalog targets: place members on worker slots via a "
        "consistent-hash routing table; each worker opens only its "
        "assigned members and routed clients pin member traffic to the "
        "owning shard's direct port (requires SO_REUSEPORT)",
    )
    serve.add_argument(
        "--replication", type=int, default=1,
        help="worker slots owning each member under --shard-members "
        "(capped at the worker count); >1 spreads a hot member's load",
    )

    status = commands.add_parser(
        "fleet-status",
        help="probe a serving fleet: workers, restarts, store generation",
    )
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=7117)
    status.add_argument(
        "--probes", type=int, default=8,
        help="probe connections to open; with SO_REUSEPORT each may land "
        "on a different worker, so more probes see more of the fleet",
    )

    loadgen = commands.add_parser(
        "loadgen", help="drive a serve endpoint with a synthetic workload"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7117)
    loadgen.add_argument("--name", default="", help="catalog member to query")
    loadgen.add_argument("--pairs", type=int, default=10000)
    loadgen.add_argument(
        "--workload", default="uniform",
        help="pair workload: uniform, zipf, sibling or khop",
    )
    loadgen.add_argument(
        "--skew", type=float, default=1.0, help="Zipf exponent (zipf workload)"
    )
    loadgen.add_argument(
        "--family", default="random",
        help="tree family to rebuild locally for the structural workloads "
        "(sibling/khop) — must match the family the index was encoded from",
    )
    loadgen.add_argument(
        "--tree-seed", type=int, default=0,
        help="seed the served tree was generated with (structural workloads)",
    )
    loadgen.add_argument(
        "--hops", type=int, default=4, help="walk radius of the khop workload"
    )
    loadgen.add_argument("--connections", type=int, default=4)
    loadgen.add_argument(
        "--window", type=int, default=128,
        help="in-flight queries per connection (or BATCH size in batch mode)",
    )
    loadgen.add_argument(
        "--mode", choices=["pipeline", "batch"], default="pipeline",
        help="pipeline: one QUERY per pair; batch: window-sized BATCH requests",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="chaos mode, e.g. 'kill-worker:t=2': SIGKILL the worker behind "
        "a fresh probe connection every t seconds mid-run (supervised "
        "fleets on this machine only); the run must still answer every pair",
    )
    loadgen.add_argument(
        "--trace-every", type=int, default=0,
        help="stamp every Nth pipelined request with a trace id and print "
        "the per-stage server latency breakdown after the run (0 disables)",
    )
    loadgen.add_argument(
        "--members", nargs="+", default=None, metavar="NAME",
        help="spread the workload over these catalog members (pairs split "
        "by Zipf rank weight; see --member-skew) instead of a single --name",
    )
    loadgen.add_argument(
        "--member-skew", type=float, default=0.0,
        help="Zipf exponent for the per-member traffic split (0 = uniform)",
    )
    loadgen.add_argument(
        "--route", action="store_true",
        help="consult the fleet's routing table and pin each member's "
        "traffic to the owning shard's direct port (sharded fleets; "
        "MOVED redirects and the shared address remain as fallback)",
    )

    trace = commands.add_parser(
        "trace",
        help="fetch recent request traces and the slow-query log from a "
        "serving fleet",
    )
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, default=7117)
    trace.add_argument(
        "--probes", type=int, default=4,
        help="probe connections to open; with SO_REUSEPORT each may land "
        "on a different worker, so more probes see more of the fleet",
    )
    trace.add_argument(
        "--limit", type=int, default=8,
        help="recent traces to show per worker (0 = the whole ring)",
    )
    trace.add_argument(
        "--no-slow", action="store_true", help="skip the slow-query log"
    )

    return parser


def _resolve_scheme(args) -> str:
    """Merge the legacy ``--k``/``--epsilon`` flags into the spec string."""
    from repro.core.registry import format_spec, parse_spec

    name, params = parse_spec(args.scheme)
    if args.k is not None:
        params["k"] = args.k
    if args.epsilon is not None:
        params["epsilon"] = args.epsilon
    return format_spec(name, params)


def _demo(family: str, n: int, seed: int) -> str:
    from repro.api import DistanceIndex
    from repro.generators.workloads import make_tree, random_pairs
    from repro.oracles.exact_oracle import TreeDistanceOracle

    tree = make_tree(family, n, seed)
    oracle = TreeDistanceOracle(tree)
    lines = [f"tree family={family} n={n}"]
    for spec in ("freedman", "alstrup"):
        index = DistanceIndex.build(tree, spec)
        stats = index.stats()
        pairs = random_pairs(tree, 100, seed)
        checked = sum(
            1
            for (u, v), result in zip(pairs, index.batch(pairs))
            if result.value == oracle.distance(u, v)
        )
        lines.append(
            f"  {spec:10s} max={stats['max_label_bits']:4d} bits  "
            f"avg={stats['total_label_bits'] / stats['n']:7.1f} bits  "
            f"verified {checked}/100 queries"
        )
    return "\n".join(lines)


def _build_index(args):
    """One (tree, DistanceIndex) pair from the shared scheme/tree options."""
    from repro.api import DistanceIndex
    from repro.generators.workloads import make_tree

    spec = _resolve_scheme(args)
    tree = make_tree(args.family, args.n, args.seed)
    return spec, tree, DistanceIndex.build(tree, spec)


def _kernels(args) -> str:
    """Probe diagnostics for the tiered decode/distance kernels."""
    from repro import kernels

    lines = []
    if args.build:
        from repro.kernels.native import ensure_built

        lines.append(f"built {ensure_built(verbose=True)}")
        kernels.reset()
    probed = kernels.probe(full=True)
    lines.append(f"selected: {probed['selected']}")
    if probed["requested"]:
        lines.append(f"requested: {probed['requested']} (via {probed['env_var']})")
    if probed["note"]:
        lines.append(f"note: {probed['note']}")
    for tier in kernels.TIER_ORDER:
        info = probed["tiers"][tier]
        status = {True: "available", False: "unavailable", None: "not probed"}[
            info["available"]
        ]
        lines.append(f"  {tier:<7} {status:<12} {info['detail']}")
    return "\n".join(lines)


def _encode(args) -> str:
    from repro.core.registry import ALL_SCHEME_NAMES

    if args.list:
        return "registered schemes: " + " ".join(ALL_SCHEME_NAMES)

    spec, tree, index = _build_index(args)
    written = index.save(args.out)
    stats = index.stats()
    return (
        f"encoded family={args.family} n={tree.n} with scheme={stats['spec']}\n"
        f"wrote {args.out}: {written} bytes "
        f"(payload {stats['payload_bytes']} bytes, "
        f"labels {stats['total_label_bits']} bits, "
        f"max label {stats['max_label_bits']} bits)"
    )


def _build(args) -> str:
    """The ``build`` command: in-memory or streaming store construction."""
    from repro.core.registry import make_any_scheme, parse_spec
    from repro.generators.workloads import make_tree
    from repro.scale import build_store_in_memory, build_store_streaming

    spec = _resolve_scheme(args)
    name, params = parse_spec(spec)
    scheme = make_any_scheme(name, **params)
    tree = make_tree(args.family, args.n, args.seed)

    if args.streaming:
        progress = None
        if args.progress:
            step = max(1, tree.n // 20)

            def progress(done: int, total: int) -> None:
                if done % step < 65536 or done == total:
                    print(f"  encoded {done}/{total} labels", flush=True)

        stats = build_store_streaming(
            scheme,
            tree,
            args.out,
            run_bytes=args.run_mib << 20,
            progress=progress,
        )
        pipeline = f"streaming ({stats['runs_spilled']} run(s) spilled)"
    else:
        stats = build_store_in_memory(scheme, tree, args.out)
        pipeline = "in-memory"
    peak_mib = stats["peak_rss_bytes"] / (1 << 20)
    return (
        f"built family={args.family} n={stats['n']} scheme={spec} [{pipeline}]\n"
        f"wrote {args.out}: {stats['file_bytes']} bytes "
        f"(payload {stats['payload_bytes']} bytes, "
        f"{8 * stats['payload_bytes'] / stats['n']:.1f} bits/node) "
        f"in {stats['seconds']:.2f}s, peak rss {peak_mib:.1f} MiB"
    )


def _describe_result(result) -> str:
    if not result.within_bound:
        return "beyond bound"
    tag = "exact" if result.is_exact else f"<= {result.ratio_bound:g}x"
    return f"{result.value} ({tag})"


def _run_queries(index, header: str, args) -> str:
    """Shared ``query`` body for plain index files and catalog members."""
    import random
    import time

    if args.u is not None or args.v is not None:
        if args.u is None or args.v is None:
            raise SystemExit("--u and --v must be given together")
        result = index.query(args.u, args.v)
        return f"{header}\nquery({args.u}, {args.v}) = {_describe_result(result)}"

    if args.pairs < 1:
        raise ValueError("--pairs must be at least 1")
    rng = random.Random(args.seed)
    pairs = [(rng.randrange(index.n), rng.randrange(index.n)) for _ in range(args.pairs)]

    start = time.perf_counter()
    answers = index.batch(pairs, raw=True)
    batch_seconds = time.perf_counter() - start

    scheme, store = index.scheme, index.store
    start = time.perf_counter()
    single = [
        scheme.query_from_bits(store.label_bits(u), store.label_bits(v))
        for u, v in pairs[: min(len(pairs), 200)]
    ]
    single_seconds = time.perf_counter() - start
    if single != answers[: len(single)]:
        raise AssertionError("batched answers disagree with per-pair answers")

    single_qps = len(single) / single_seconds if single_seconds else float("inf")
    batch_qps = len(pairs) / batch_seconds if batch_seconds else float("inf")
    preview = ", ".join(
        f"d({u},{v})={a}" for (u, v), a in list(zip(pairs, answers))[:5]
    )
    return (
        f"{header}\n"
        f"answered {len(pairs)} queries from labels alone\n"
        f"batched: {batch_qps:,.0f} queries/s   "
        f"per-pair bit parsing: {single_qps:,.0f} queries/s   "
        f"speedup {batch_qps / single_qps:.1f}x\n"
        f"first answers: {preview}"
    )


def _query(args) -> str:
    from repro.api import DistanceIndex

    index = DistanceIndex.open(args.store)
    header = f"store={args.store} scheme={index.spec} n={index.n}"
    return _run_queries(index, header, args)


def _catalog(args) -> str:
    import os

    from repro.api import IndexCatalog

    if args.action == "add":
        catalog = (
            IndexCatalog.load(args.catalog)
            if os.path.exists(args.catalog)
            else IndexCatalog()
        )
        spec, tree, index = _build_index(args)
        catalog.add(args.name, index)
        written = catalog.save(args.catalog)
        return (
            f"added {args.name!r} (scheme={index.spec}, family={args.family}, "
            f"n={tree.n}) to {args.catalog}\n"
            f"catalog now holds {len(catalog)} index(es), {written} bytes"
        )

    catalog = IndexCatalog.load(args.catalog)
    if args.action == "list":
        # describe() reads only each member's header prefix, so listing a
        # huge forest file never parses the member stores
        rows = [
            {key: row[key] for key in ("name", "spec", "kind", "n", "file_bytes")}
            for row in catalog.describe()
        ]
        return f"catalog {args.catalog}: {len(catalog)} member(s)\n" + format_table(rows)

    assert args.action == "query"
    index = catalog.index(args.name)
    header = (
        f"catalog={args.catalog} name={args.name} scheme={index.spec} n={index.n}"
    )
    return _run_queries(index, header, args)


def _shutdown_summary(stats: dict) -> str:
    """The ``shutdown:`` line shared by single-process and fleet serving."""
    busy = stats.get("busy_rejections", 0)
    return (
        f"shutdown: {stats.get('queries', 0)} queries + "
        f"{stats.get('batch_request_pairs', 0)} batched pairs answered over "
        f"{stats.get('connections_total', 0)} connection(s); "
        f"{stats.get('flushes', 0)} coalescer flushes "
        f"(mean batch {stats.get('mean_batch_size', 0.0)}), "
        f"{stats.get('errors', 0)} errors, {busy} busy-shed"
    )


def _serve_single(args, server_config: dict) -> str:
    import asyncio
    import signal

    from repro.obs.profile import install_profile_hook
    from repro.serve import LabelServer
    from repro.serve.supervisor import open_serve_target, store_generation

    target, description = open_serve_target(args.target, args.cache_size, args.mmap)
    server = LabelServer(
        target, generation=store_generation(args.target), **server_config
    )

    def render_metrics() -> str:
        from repro.obs.prom import fleet_registry, render

        return render(fleet_registry(server.stats(detail=True)))

    async def run() -> None:
        host, port = await server.start(args.host, args.port)
        mode = "micro-batched" if server.coalesce else "naive (no coalescing)"
        print(f"serving {description} on {host}:{port} [{mode}]", flush=True)
        loop = asyncio.get_running_loop()
        install_profile_hook(
            loop,
            generation=(server.generation or {}).get("generation"),
        )
        metrics = None
        if args.metrics_port is not None:
            from repro.obs.prom import MetricsServer

            metrics = MetricsServer(render_metrics, args.host, args.metrics_port)
            metrics_host, metrics_bound = metrics.start()
            print(
                f"metrics on http://{metrics_host}:{metrics_bound}/metrics",
                flush=True,
            )
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        serving = asyncio.ensure_future(server.serve_forever())
        stopping = asyncio.ensure_future(stop.wait())
        await asyncio.wait({serving, stopping}, return_when=asyncio.FIRST_COMPLETED)
        serving.cancel()
        stopping.cancel()
        await server.stop()
        if metrics is not None:
            metrics.stop()
        if serving.done() and not serving.cancelled() and serving.exception():
            # a crashed server must not masquerade as a clean shutdown
            raise serving.exception()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # platforms without add_signal_handler
        pass
    return _shutdown_summary(server.stats())


def _serve_fleet(args, server_config: dict) -> str:
    import signal
    import threading

    from repro.api import CATALOG_MAGIC
    from repro.serve.retry import RestartPolicy
    from repro.serve.supervisor import FleetCrashLoop, FleetSupervisor

    # description only: sniff the file magic — each worker opens the file
    # itself, so the supervisor never loads the labels into its own memory
    with open(args.target, "rb") as handle:
        magic = handle.read(4)
    kind = "catalog" if magic == CATALOG_MAGIC else "index"
    description = f"{kind} {args.target}"
    supervisor = FleetSupervisor(
        args.target,
        workers=args.workers,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        use_mmap=args.mmap,
        restart_policy=RestartPolicy(
            max_restarts=args.max_restarts, window_seconds=args.restart_window
        ),
        shard_members=getattr(args, "shard_members", False),
        replication=getattr(args, "replication", 1),
        **server_config,
    )
    host, port = supervisor.start()
    mode = "micro-batched" if server_config["coalesce"] else "naive (no coalescing)"
    binding = "SO_REUSEPORT" if supervisor.reuse_port else "inherited socket"
    print(
        f"serving {description} on {host}:{port} "
        f"[{mode}, {args.workers} workers via {binding}, "
        f"pids={','.join(str(pid) for pid in supervisor.pids)}, "
        f"generation={supervisor.generation['generation']}]",
        flush=True,
    )
    if supervisor.routing_table is not None:
        placement = supervisor.routing_table["members"]
        print(
            f"sharded: {len(placement)} member(s) over {args.workers} slot(s), "
            f"replication {supervisor.replication}, "
            f"routing table v{supervisor.routing_version}",
            flush=True,
        )
    if args.metrics_port is not None:
        metrics_host, metrics_bound = supervisor.start_metrics(
            args.metrics_port, args.host
        )
        print(
            f"metrics on http://{metrics_host}:{metrics_bound}/metrics", flush=True
        )

    stop = threading.Event()
    reload_requested = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except (ValueError, OSError):  # pragma: no cover - exotic platform
            pass
    if hasattr(signal, "SIGHUP"):
        try:
            signal.signal(signal.SIGHUP, lambda *_: reload_requested.set())
        except (ValueError, OSError):  # pragma: no cover - exotic platform
            pass

    def reload_check() -> bool:
        if not reload_requested.is_set():
            return False
        reload_requested.clear()
        return True

    def rolling_reload() -> bool:
        # the rolling reload re-hashes the same path: SIGHUP means "the
        # store file was re-encoded in place, pick it up"
        if not reload_check():
            return False
        generation = supervisor.reload()["generation"]
        print(f"reloaded fleet to generation={generation}", flush=True)
        return False  # already handled; supervise must not reload again

    try:
        supervisor.supervise(stop_check=stop.is_set, reload_check=rolling_reload)
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    except FleetCrashLoop as crash_loop:
        _print_fleet_summary(crash_loop.summary, file=sys.stderr)
        print(f"error: {crash_loop}", file=sys.stderr)
        raise SystemExit(3) from None
    fleet = supervisor.shutdown()
    return _format_fleet_summary(fleet)


def _format_fleet_summary(fleet: dict) -> str:
    latency = fleet.get("latency_ms", {})
    lines = [_shutdown_summary(fleet)]
    lines.append(
        f"fleet: {fleet.get('workers', 0)} workers, "
        f"{fleet.get('qps', 0.0):,.0f} q/s lifetime, "
        f"p50 {latency.get('p50', 0.0):.3f}ms p99 {latency.get('p99', 0.0):.3f}ms "
        f"(reservoir {latency.get('samples', 0)} samples), "
        f"{fleet.get('restarts', 0)} restart(s), {fleet.get('reloads', 0)} "
        f"reload(s), exit codes {fleet.get('exit_codes')}"
    )
    for row in fleet.get("per_worker", ()):
        lines.append(
            f"  worker {row['worker']} (slot {row.get('slot', 0)}): "
            f"{row['queries']} queries, "
            f"{row['qps']:,.0f} q/s, p99 {row['p99_ms']:.3f}ms, "
            f"{row['busy_rejections']} busy-shed, "
            f"{row.get('restarts', 0)} restart(s)"
        )
    return "\n".join(lines)


def _print_fleet_summary(fleet: dict, file=None) -> None:
    if fleet:
        print(_format_fleet_summary(fleet), file=file, flush=True)


def _serve(args) -> str:
    if args.workers < 1:
        raise ValueError("--workers must be at least 1")
    server_config = {
        "coalesce": not args.no_coalesce,
        "max_batch": args.max_batch,
        "max_pending": args.max_pending,
        "pair_cache": args.pair_cache,
        "slow_ms": args.slow_ms,
        "trace_ring": args.trace_ring,
    }
    if args.workers == 1 and not args.shard_members:
        return _serve_single(args, server_config)
    return _serve_fleet(args, server_config)


def _fleet_status(args) -> str:
    """Probe a live fleet: who is serving, how often restarted, which store."""
    from repro.serve.client import LabelClient
    from repro.serve.metrics import merge_fleet_stats

    if args.probes < 1:
        raise ValueError("--probes must be at least 1")
    clients = []
    infos: dict[int, dict] = {}
    stats_payloads: list[dict] = []
    try:
        # keep every probe connection open while opening the next ones, so
        # the kernel keeps spreading them across workers
        for _ in range(args.probes):
            client = LabelClient(args.host, args.port)
            clients.append(client)
            info = client.info()
            infos[info["worker"]] = info
            stats_payloads.append(client.stats(reservoir=True))
    finally:
        for client in clients:
            client.close()
    merged = merge_fleet_stats(stats_payloads)
    generations = sorted(
        {
            info["store"]["generation"]
            for info in infos.values()
            if info.get("store")
        }
    )
    lines = [
        f"fleet at {args.host}:{args.port} — {merged['workers']} worker(s) seen "
        f"via {args.probes} probe(s), protocol {infos[next(iter(infos))]['protocol']}",
        f"restarts: {merged.get('restarts', 0)} (fleet total), store generation: "
        + (",".join(generations) if generations else "(not reported)"),
    ]
    for row in sorted(merged.get("per_worker", ()), key=lambda r: r.get("slot", 0)):
        assigned = row.get("members_assigned")
        placement = (
            f", members [{', '.join(assigned) or '-'}]" if assigned is not None else ""
        )
        lines.append(
            f"  slot {row.get('slot', 0)} pid {row['worker']}: "
            f"{row.get('restarts', 0)} restart(s), "
            f"up {row.get('uptime_seconds', 0.0):.1f}s, "
            f"{row['queries']} queries, p99 {row['p99_ms']:.3f}ms"
            + placement
        )
    routing = next(
        (info["routing"] for info in infos.values() if info.get("routing")), None
    )
    if routing:
        lines.append(
            f"routing: table v{routing.get('version', 0)}, "
            f"replication {routing.get('replication', 1)}, "
            f"{len(routing.get('members', {}))} member(s) over "
            f"{len(routing.get('slots', {}))} slot(s)"
        )
        slots = routing.get("slots", {})
        members = routing.get("members", {})
        for slot_key in sorted(slots, key=int):
            owned = sorted(
                name
                for name, owners in members.items()
                if int(slot_key) in owners
            )
            host, port = slots[slot_key]
            lines.append(
                f"  slot {slot_key} @ {host}:{port}: "
                f"[{', '.join(owned) or '-'}]"
            )
    return "\n".join(lines)


def _trace(args) -> str:
    """Fetch recent traces and the slow-query log from a live server/fleet."""
    from repro.serve.client import LabelClient

    if args.probes < 1:
        raise ValueError("--probes must be at least 1")
    clients = []
    snapshots: dict[int, dict] = {}
    try:
        # like fleet-status: hold every probe open so connections spread
        # across workers, then dedupe the rings by worker pid
        for _ in range(args.probes):
            client = LabelClient(args.host, args.port)
            clients.append(client)
            snapshot = client.trace(limit=args.limit, slow=not args.no_slow)
            snapshots[snapshot.get("worker", len(snapshots))] = snapshot
    finally:
        for client in clients:
            client.close()

    def span_line(trace: dict) -> str:
        spans = " ".join(
            f"{span['stage']}={span['ms']:.3f}ms" for span in trace.get("spans", ())
        )
        return (
            f"    #{trace.get('trace_id')} {trace.get('op')} "
            f"{trace.get('member') or '(default)'} "
            f"total {trace.get('total_ms', 0.0):.3f}ms: {spans}"
        )

    lines = []
    for worker, snapshot in sorted(snapshots.items()):
        slow_ms = snapshot.get("slow_ms")
        lines.append(
            f"worker {worker} slot {snapshot.get('slot', 0)} "
            f"gen {snapshot.get('store_generation') or '(none)'}: "
            f"{snapshot.get('recorded', 0)} trace(s) recorded, "
            f"ring {snapshot.get('ring', 0)}, slow threshold "
            + (f"{slow_ms:g}ms" if slow_ms is not None else "off")
        )
        for trace in snapshot.get("traces", ()):
            lines.append(span_line(trace))
        slow = snapshot.get("slow", ())
        if slow:
            lines.append(
                f"  slow log ({snapshot.get('slow_recorded', 0)} total):"
            )
            for trace in slow:
                lines.append("  " + span_line(trace))
    if not lines:
        lines.append("no workers answered the trace probes")
    return "\n".join(lines)


def _loadgen(args) -> str:
    from repro.serve.loadgen import run_load

    report = run_load(
        args.host,
        args.port,
        name=args.name,
        pairs=args.pairs,
        workload=args.workload,
        skew=args.skew,
        connections=args.connections,
        window=args.window,
        mode=args.mode,
        seed=args.seed,
        family=args.family,
        tree_seed=args.tree_seed,
        hops=args.hops,
        chaos=args.chaos,
        trace_every=args.trace_every,
        members=args.members,
        member_skew=args.member_skew,
        route=args.route,
    )
    server = report["server"]
    latency = server["latency_ms"]
    busy = (
        f", {report['busy_retried']} busy-retried" if report["busy_retried"] else ""
    )
    if report.get("reconnects"):
        busy += f", {report['reconnects']} reconnect(s)"
    lines = [
        f"loadgen {report['workload']}"
        + (f"(skew={report['skew']:g})" if report["skew"] is not None else "")
        + f" x{report['pairs']} pairs, mode={report['mode']}, "
        f"{report['connections']} connection(s), window {report['window']}",
        f"client: {report['qps']:,.0f} queries/s over {report['seconds']:.2f}s "
        f"(checksum {report['checksum']:g}{busy})",
        f"server fleet ({report['workers']} worker(s)): "
        f"{server['qps']:,.0f} q/s lifetime, "
        f"merged p50 {latency['p50']:.3f}ms p99 {latency['p99']:.3f}ms, "
        f"mean coalesced batch {server['mean_batch_size']}, "
        f"{server['busy_rejections']} busy-shed",
    ]
    if report.get("members"):
        lines.insert(
            1,
            f"members: {len(report['members'])} "
            f"(skew {report['member_skew']:g}), "
            + ("routed" if report["route"] else "unrouted")
            + (
                f", {report['route_redirects']} MOVED redirect(s)"
                if report["route"]
                else ""
            ),
        )
    if report.get("restarts_observed"):
        lines.append(
            f"restarts observed mid-run: {report['restarts_observed']} "
            f"(stats rows beyond one per slot)"
        )
    if report.get("chaos"):
        chaos = report["chaos"]
        lines.append(
            f"chaos {chaos['spec']}: killed {chaos['kills']} worker(s) "
            f"(pids {','.join(str(pid) for pid in chaos['pids'])}); "
            f"fleet answered every pair regardless"
        )
    if report.get("tracing"):
        from repro.obs.trace import STAGES

        tracing = report["tracing"]
        lines.append(
            f"tracing 1/{tracing['sample_every']}: "
            f"{tracing['collected']}/{tracing['requested']} sampled traces "
            f"collected, mean total {tracing['mean_total_ms']:.3f}ms"
        )
        lines.append(f"  {'stage':<8} {'count':>7} {'mean_ms':>9} {'max_ms':>9}")
        stage_rows = tracing.get("stages", {})
        ordered = [s for s in STAGES if s in stage_rows]
        ordered += [s for s in sorted(stage_rows) if s not in STAGES]
        for stage in ordered:
            row = stage_rows[stage]
            lines.append(
                f"  {stage:<8} {row['count']:>7} "
                f"{row['mean_ms']:>9.3f} {row['max_ms']:>9.3f}"
            )
    if report["workers"] > 1:
        for row in server.get("per_worker", ()):
            lines.append(
                f"  worker {row['worker']}: {row['queries']} queries, "
                f"{row['qps']:,.0f} q/s, p99 {row['p99_ms']:.3f}ms"
            )
    index_stats = server.get("index")
    if index_stats and index_stats.get("open", True):
        member_line = (
            f"member {index_stats['name']!r}: spec={index_stats['spec']} "
            f"n={index_stats['n']} cache hit rate {index_stats['cache_hit_rate']:.2%}"
        )
        pair_cache = index_stats.get("pair_cache")
        if pair_cache and pair_cache.get("enabled"):
            member_line += f", hot-pair hit rate {pair_cache['hit_rate']:.2%}"
        lines.append(member_line)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)

    if args.command == "table1-exact":
        rows = run_table1_exact(args.sizes, args.families, args.queries, args.seed)
    elif args.command == "table1-kdistance":
        rows = run_table1_kdistance(args.sizes, args.ks, queries=args.queries, seed=args.seed)
    elif args.command == "table1-approx":
        rows = run_table1_approx(args.sizes, args.epsilons, queries=args.queries, seed=args.seed)
    elif args.command == "fig1":
        rows = run_fig1_heavy_paths()
    elif args.command == "fig2":
        rows = run_fig2_hm_trees()
    elif args.command == "fig4":
        rows = run_fig4_universal_tree(args.max_n)
    elif args.command == "fig5":
        rows = run_fig5_regular_trees()
    elif args.command == "demo":
        print(_demo(args.family, args.n, args.seed))
        return 0
    elif args.command in (
        "encode", "build", "query", "catalog", "serve", "loadgen",
        "fleet-status", "trace", "kernels",
    ):
        from repro.api import CatalogError, SpecError
        from repro.store import StoreError

        handlers = {
            "encode": _encode,
            "build": _build,
            "query": _query,
            "catalog": _catalog,
            "serve": _serve,
            "loadgen": _loadgen,
            "fleet-status": _fleet_status,
            "trace": _trace,
            "kernels": _kernels,
        }
        try:
            print(handlers[args.command](args))
            return 0
        except FileNotFoundError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except OSError as error:
            # bind/connect failures (address in use, connection refused, ...)
            print(f"error: {error}", file=sys.stderr)
            return 2
        except (StoreError, CatalogError, SpecError, KeyError, ValueError) as error:
            message = error.args[0] if error.args else error
            print(f"error: {message}", file=sys.stderr)
            return 2
    elif args.command == "store-bench":
        rows = run_store_throughput(args.sizes, queries=args.queries, seed=args.seed)
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {args.command!r}")

    print(format_table(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
