"""Command-line interface: ``repro-labels <command>``.

Commands mirror the experiment index of DESIGN.md so every table/figure of
the paper can be regenerated from the shell::

    repro-labels table1-exact --sizes 256 1024 4096
    repro-labels table1-kdistance --sizes 1024
    repro-labels table1-approx
    repro-labels fig1 | fig2 | fig4 | fig5
    repro-labels demo --family random --n 1000

The store workflow encodes a tree once into a packed label file and then
answers queries from that file alone (no tree access)::

    repro-labels encode --scheme freedman --family random --n 1000 --out labels.bin
    repro-labels query labels.bin --pairs 1000          # random batched queries
    repro-labels query labels.bin --u 17 --v 1234       # one pair

``encode`` accepts any registry scheme name (``repro-labels encode --list``
prints them); k-distance and approximate schemes take ``--k`` /
``--epsilon``.  ``query`` rebuilds the scheme from the spec stored in the
file header and reports batched vs per-pair throughput, and
``store-bench`` runs the batched-vs-single comparison across schemes.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import (
    run_fig1_heavy_paths,
    run_fig2_hm_trees,
    run_fig4_universal_tree,
    run_fig5_regular_trees,
    run_store_throughput,
    run_table1_approx,
    run_table1_exact,
    run_table1_kdistance,
)
from repro.analysis.reporting import format_table


def _add_size_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-labels",
        description="Reproduction of 'Optimal Distance Labeling Schemes for Trees'",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    exact = commands.add_parser("table1-exact", help="exact label sizes (Table 1)")
    _add_size_options(exact)
    exact.add_argument("--families", nargs="+", default=None)

    kdist = commands.add_parser("table1-kdistance", help="k-distance label sizes")
    _add_size_options(kdist)
    kdist.add_argument("--ks", type=int, nargs="+", default=None)

    approx = commands.add_parser("table1-approx", help="approximate label sizes")
    _add_size_options(approx)
    approx.add_argument("--epsilons", type=float, nargs="+", default=None)

    commands.add_parser("fig1", help="heavy path / collapsed tree structure")
    commands.add_parser("fig2", help="(h, M)-tree lower-bound instances")
    fig4 = commands.add_parser("fig4", help="universal tree from parent labels")
    fig4.add_argument("--max-n", type=int, default=5)
    commands.add_parser("fig5", help="regular-tree lower-bound instances")

    demo = commands.add_parser("demo", help="encode one tree and answer queries")
    demo.add_argument("--family", default="random")
    demo.add_argument("--n", type=int, default=1000)
    demo.add_argument("--seed", type=int, default=0)

    encode = commands.add_parser(
        "encode", help="encode a tree into a packed label-store file"
    )
    encode.add_argument("--scheme", default="freedman")
    encode.add_argument("--family", default="random")
    encode.add_argument("--n", type=int, default=1000)
    encode.add_argument("--seed", type=int, default=0)
    encode.add_argument("--k", type=int, default=None, help="k for k-distance schemes")
    encode.add_argument(
        "--epsilon", type=float, default=None, help="epsilon for approximate schemes"
    )
    encode.add_argument("--out", default="labels.bin")
    encode.add_argument(
        "--list", action="store_true", help="list registered schemes and exit"
    )

    query = commands.add_parser(
        "query", help="answer distance queries from a label-store file"
    )
    query.add_argument("store", help="file written by the encode command")
    query.add_argument("--pairs", type=int, default=1000)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--u", type=int, default=None)
    query.add_argument("--v", type=int, default=None)

    store_bench = commands.add_parser(
        "store-bench", help="batched vs per-pair query throughput"
    )
    _add_size_options(store_bench)

    return parser


def _demo(family: str, n: int, seed: int) -> str:
    from repro.core import AlstrupScheme, FreedmanScheme
    from repro.generators.workloads import make_tree, random_pairs
    from repro.oracles.exact_oracle import TreeDistanceOracle

    tree = make_tree(family, n, seed)
    oracle = TreeDistanceOracle(tree)
    lines = [f"tree family={family} n={n}"]
    for scheme in (FreedmanScheme(), AlstrupScheme()):
        labels = scheme.encode(tree)
        sizes = [label.bit_length() for label in labels.values()]
        checked = sum(
            1
            for u, v in random_pairs(tree, 100, seed)
            if scheme.distance(labels[u], labels[v]) == oracle.distance(u, v)
        )
        lines.append(
            f"  {scheme.name:10s} max={max(sizes):4d} bits  "
            f"avg={sum(sizes) / len(sizes):7.1f} bits  verified {checked}/100 queries"
        )
    return "\n".join(lines)


def _encode(args) -> str:
    from repro.core.registry import ALL_SCHEME_NAMES, make_any_scheme
    from repro.generators.workloads import make_tree
    from repro.store import LabelStore

    if args.list:
        return "registered schemes: " + " ".join(ALL_SCHEME_NAMES)

    params = {}
    if args.k is not None:
        params["k"] = args.k
    if args.epsilon is not None:
        params["epsilon"] = args.epsilon
    scheme = make_any_scheme(args.scheme, **params)

    tree = make_tree(args.family, args.n, args.seed)
    store = LabelStore.encode_tree(scheme, tree)
    written = store.save(args.out)
    return (
        f"encoded family={args.family} n={tree.n} with scheme={args.scheme}"
        f"{params or ''}\n"
        f"wrote {args.out}: {written} bytes "
        f"(payload {store.payload_bytes} bytes, labels {store.total_label_bits} bits, "
        f"max label {store.max_label_bits} bits)"
    )


def _query(args) -> str:
    import random
    import time

    from repro.store import LabelStore, QueryEngine, StoreError

    store = LabelStore.load(args.store)
    engine = QueryEngine(store)
    scheme = engine.scheme

    if args.u is not None or args.v is not None:
        if args.u is None or args.v is None:
            raise SystemExit("--u and --v must be given together")
        answer = engine.query(args.u, args.v)
        return (
            f"store={args.store} scheme={store.scheme_name} n={store.n}\n"
            f"query({args.u}, {args.v}) = {answer}"
        )

    if args.pairs < 1:
        raise ValueError("--pairs must be at least 1")
    rng = random.Random(args.seed)
    pairs = [
        (rng.randrange(store.n), rng.randrange(store.n)) for _ in range(args.pairs)
    ]

    start = time.perf_counter()
    answers = engine.batch_query(pairs)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    single = [
        scheme.query_from_bits(store.label_bits(u), store.label_bits(v))
        for u, v in pairs[: min(len(pairs), 200)]
    ]
    single_seconds = time.perf_counter() - start
    if single != answers[: len(single)]:
        raise StoreError("batched answers disagree with per-pair answers")

    single_qps = len(single) / single_seconds if single_seconds else float("inf")
    batch_qps = len(pairs) / batch_seconds if batch_seconds else float("inf")
    preview = ", ".join(
        f"d({u},{v})={a}" for (u, v), a in list(zip(pairs, answers))[:5]
    )
    return (
        f"store={args.store} scheme={store.scheme_name} params={store.scheme_params} "
        f"n={store.n}\n"
        f"answered {len(pairs)} queries from labels alone\n"
        f"batched: {batch_qps:,.0f} queries/s   "
        f"per-pair bit parsing: {single_qps:,.0f} queries/s   "
        f"speedup {batch_qps / single_qps:.1f}x\n"
        f"first answers: {preview}"
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)

    if args.command == "table1-exact":
        rows = run_table1_exact(args.sizes, args.families, args.queries, args.seed)
    elif args.command == "table1-kdistance":
        rows = run_table1_kdistance(args.sizes, args.ks, queries=args.queries, seed=args.seed)
    elif args.command == "table1-approx":
        rows = run_table1_approx(args.sizes, args.epsilons, queries=args.queries, seed=args.seed)
    elif args.command == "fig1":
        rows = run_fig1_heavy_paths()
    elif args.command == "fig2":
        rows = run_fig2_hm_trees()
    elif args.command == "fig4":
        rows = run_fig4_universal_tree(args.max_n)
    elif args.command == "fig5":
        rows = run_fig5_regular_trees()
    elif args.command == "demo":
        print(_demo(args.family, args.n, args.seed))
        return 0
    elif args.command in ("encode", "query"):
        from repro.store import StoreError

        try:
            print(_encode(args) if args.command == "encode" else _query(args))
            return 0
        except FileNotFoundError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except (StoreError, KeyError, ValueError) as error:
            message = error.args[0] if error.args else error
            print(f"error: {message}", file=sys.stderr)
            return 2
    elif args.command == "store-bench":
        rows = run_store_throughput(args.sizes, queries=args.queries, seed=args.seed)
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {args.command!r}")

    print(format_table(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
