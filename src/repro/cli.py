"""Command-line interface: ``repro-labels <command>``.

Commands mirror the experiment index of DESIGN.md so every table/figure of
the paper can be regenerated from the shell::

    repro-labels table1-exact --sizes 256 1024 4096
    repro-labels table1-kdistance --sizes 1024
    repro-labels table1-approx
    repro-labels fig1 | fig2 | fig4 | fig5
    repro-labels demo --family random --n 1000
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import (
    run_fig1_heavy_paths,
    run_fig2_hm_trees,
    run_fig4_universal_tree,
    run_fig5_regular_trees,
    run_table1_approx,
    run_table1_exact,
    run_table1_kdistance,
)
from repro.analysis.reporting import format_table


def _add_size_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-labels",
        description="Reproduction of 'Optimal Distance Labeling Schemes for Trees'",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    exact = commands.add_parser("table1-exact", help="exact label sizes (Table 1)")
    _add_size_options(exact)
    exact.add_argument("--families", nargs="+", default=None)

    kdist = commands.add_parser("table1-kdistance", help="k-distance label sizes")
    _add_size_options(kdist)
    kdist.add_argument("--ks", type=int, nargs="+", default=None)

    approx = commands.add_parser("table1-approx", help="approximate label sizes")
    _add_size_options(approx)
    approx.add_argument("--epsilons", type=float, nargs="+", default=None)

    commands.add_parser("fig1", help="heavy path / collapsed tree structure")
    commands.add_parser("fig2", help="(h, M)-tree lower-bound instances")
    fig4 = commands.add_parser("fig4", help="universal tree from parent labels")
    fig4.add_argument("--max-n", type=int, default=5)
    commands.add_parser("fig5", help="regular-tree lower-bound instances")

    demo = commands.add_parser("demo", help="encode one tree and answer queries")
    demo.add_argument("--family", default="random")
    demo.add_argument("--n", type=int, default=1000)
    demo.add_argument("--seed", type=int, default=0)

    return parser


def _demo(family: str, n: int, seed: int) -> str:
    from repro.core import AlstrupScheme, FreedmanScheme
    from repro.generators.workloads import make_tree, random_pairs
    from repro.oracles.exact_oracle import TreeDistanceOracle

    tree = make_tree(family, n, seed)
    oracle = TreeDistanceOracle(tree)
    lines = [f"tree family={family} n={n}"]
    for scheme in (FreedmanScheme(), AlstrupScheme()):
        labels = scheme.encode(tree)
        sizes = [label.bit_length() for label in labels.values()]
        checked = sum(
            1
            for u, v in random_pairs(tree, 100, seed)
            if scheme.distance(labels[u], labels[v]) == oracle.distance(u, v)
        )
        lines.append(
            f"  {scheme.name:10s} max={max(sizes):4d} bits  "
            f"avg={sum(sizes) / len(sizes):7.1f} bits  verified {checked}/100 queries"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)

    if args.command == "table1-exact":
        rows = run_table1_exact(args.sizes, args.families, args.queries, args.seed)
    elif args.command == "table1-kdistance":
        rows = run_table1_kdistance(args.sizes, args.ks, queries=args.queries, seed=args.seed)
    elif args.command == "table1-approx":
        rows = run_table1_approx(args.sizes, args.epsilons, queries=args.queries, seed=args.seed)
    elif args.command == "fig1":
        rows = run_fig1_heavy_paths()
    elif args.command == "fig2":
        rows = run_fig2_hm_trees()
    elif args.command == "fig4":
        rows = run_fig4_universal_tree(args.max_n)
    elif args.command == "fig5":
        rows = run_fig5_regular_trees()
    elif args.command == "demo":
        print(_demo(args.family, args.n, args.seed))
        return 0
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {args.command!r}")

    print(format_table(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
