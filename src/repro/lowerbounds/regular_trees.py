"""(x, h, d)-regular trees (Section 4.1, Fig. 5).

An ``x``-regular tree for a degree vector ``x = (x_1, ..., x_k)`` is a
rooted tree of height ``k`` whose depth-i nodes all have degree ``x_{i+1}``.
An ``(x, h, d)``-regular tree (``x in [h]^k``) is the ``y``-regular tree for
``y = (d^{x_1}, d^{h - x_1}, ..., d^{x_k}, d^{h - x_k})`` — height ``2k`` and
``d^{k h}`` leaves regardless of ``x``.  Lemma 4.1 bounds how many labels two
members of the family can share, which yields the
``log n + Omega(k log(log n / (k log k)))`` lower bound for k-distance
labels.
"""

from __future__ import annotations

import math

from repro.trees.tree import RootedTree


def regular_degree_vector(x: list[int], h: int, d: int) -> list[int]:
    """The degree vector ``y`` of the (x, h, d)-regular tree."""
    degrees: list[int] = []
    for value in x:
        if not 1 <= value <= h:
            raise ValueError("every entry of x must lie in [1, h]")
        degrees.append(d ** value)
        degrees.append(d ** (h - value))
    return degrees


def build_regular_tree(x: list[int], h: int, d: int) -> RootedTree:
    """Build the (x, h, d)-regular tree (beware: ``d^{kh}`` leaves)."""
    degrees = regular_degree_vector(x, h, d)
    parents: list[int | None] = [None]
    frontier = [0]
    for degree in degrees:
        next_frontier: list[int] = []
        for node in frontier:
            for _ in range(degree):
                parents.append(node)
                next_frontier.append(len(parents) - 1)
        frontier = next_frontier
    return RootedTree(parents)


def regular_tree_leaf_count(h: int, d: int, k: int) -> int:
    """Number of leaves of any (x, h, d)-regular tree with |x| = k: d^{kh}."""
    return d ** (k * h)


def regular_tree_size(x: list[int], h: int, d: int) -> int:
    """Total number of nodes of the (x, h, d)-regular tree."""
    degrees = regular_degree_vector(x, h, d)
    size = 1
    level = 1
    for degree in degrees:
        level *= degree
        size += level
    return size


def common_labels_upper_bound(x: list[int], y: list[int], h: int, d: int) -> int:
    """Lemma 4.1 (first part): bound on labels shared by two instances.

    ``common(x, y) <= prod_i d^{min(x_i, y_i)} * d^{h - max(x_i, y_i)}``.
    """
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    bound = 1
    for a, b in zip(x, y):
        bound *= d ** min(a, b) * d ** (h - max(a, b))
    return bound


def lemma_4_1_total_bound(h: int, d: int, k: int) -> float:
    """Lemma 4.1: sum over all pairs of the common-label bound.

    ``sum_{x, y} common(x, y) <= (h d^h (1 + 2/(d-1)))^k``.
    """
    if d < 2:
        raise ValueError("d must be at least 2")
    return (h * (d ** h) * (1 + 2 / (d - 1))) ** k


def exact_pairwise_common_sum(h: int, d: int, k: int) -> int:
    """Exact value of ``sum_{x, y in [h]^k} prod d^{min} d^{h-max}``.

    Used to verify Lemma 4.1 numerically: the exact sum must never exceed
    the closed-form bound.
    """
    single = 0
    for a in range(1, h + 1):
        for b in range(1, h + 1):
            single += d ** min(a, b) * d ** (h - max(a, b))
    return single ** k


def small_k_lower_bound_bits(n: int, k: int) -> float:
    """Theorem 1.3 lower bound shape for k < log n (constant factors omitted).

    ``log n + k * log(log n / (k log k))`` — meaningful when the inner
    logarithm is positive, i.e. ``k = o(log n / log log n)``.
    """
    if n < 4 or k < 1:
        return 0.0
    log_n = math.log2(n)
    inner = log_n / (k * max(math.log2(max(k, 2)), 1.0))
    if inner <= 1:
        return log_n
    return log_n + k * math.log2(inner)
