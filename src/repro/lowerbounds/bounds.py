"""Closed-form versions of the paper's summary table (end of Section 1).

These are the reference curves the benchmarks plot measured label sizes
against.  Each function returns a bit count; Theta/O/Omega constants that the
paper leaves unspecified are exposed as ``constant`` parameters defaulting
to 1.
"""

from __future__ import annotations

import math


def _log2(value: float) -> float:
    return math.log2(max(value, 2.0))


def exact_upper_bound_bits(n: int) -> float:
    """Theorem 1.1 upper bound: ``1/4 log² n`` (low-order terms omitted)."""
    return 0.25 * _log2(n) ** 2


def exact_lower_bound_bits(n: int) -> float:
    """Alstrup et al. lower bound: ``1/4 log² n - O(log n)``."""
    return max(0.0, 0.25 * _log2(n) ** 2 - _log2(n))


def alstrup_upper_bound_bits(n: int) -> float:
    """The 1/2 log² n upper bound of [8] that the paper improves on."""
    return 0.5 * _log2(n) ** 2


def universal_tree_scheme_lower_bound_bits(n: int) -> float:
    """Chung et al.: any universal-tree-based scheme needs this many bits."""
    log_n = _log2(n)
    return max(0.0, 0.5 * log_n * log_n - log_n * _log2(log_n))


def approx_bound_bits(n: int, eps: float, constant: float = 1.0) -> float:
    """Theorem 1.4 (both directions): ``Theta(log(1/eps) * log n)``."""
    if eps <= 0:
        raise ValueError("eps must be positive")
    return constant * _log2(1.0 / eps) * _log2(n)


def kdistance_small_upper_bound_bits(n: int, k: int, constant: float = 1.0) -> float:
    """Theorem 1.3 upper bound for k < log n: ``log n + O(k log(log n / k))``."""
    log_n = _log2(n)
    return log_n + constant * k * _log2(max(log_n / k, 2.0))


def kdistance_small_lower_bound_bits(n: int, k: int, constant: float = 1.0) -> float:
    """Theorem 1.3 lower bound for k < log n (meaningful for k = o(log n / log log n))."""
    log_n = _log2(n)
    inner = log_n / (k * max(math.log2(max(k, 2)), 1.0))
    if inner <= 1:
        return log_n
    return log_n + constant * k * math.log2(inner)


def kdistance_large_bound_bits(n: int, k: int, constant: float = 1.0) -> float:
    """Theorem 1.3 (both directions) for k >= log n: ``Theta(log n log(k / log n))``."""
    log_n = _log2(n)
    return constant * log_n * _log2(max(k / log_n, 2.0))


def summary_table(n: int, k: int, eps: float) -> dict[str, dict[str, float]]:
    """The whole summary table instantiated at (n, k, eps)."""
    if k < math.log2(n):
        k_upper = kdistance_small_upper_bound_bits(n, k)
        k_lower = kdistance_small_lower_bound_bits(n, k)
        regime = "k < log n"
    else:
        k_upper = kdistance_large_bound_bits(n, k)
        k_lower = kdistance_large_bound_bits(n, k)
        regime = "k >= log n"
    return {
        "exact": {
            "upper": exact_upper_bound_bits(n),
            "lower": exact_lower_bound_bits(n),
        },
        "approximate": {
            "upper": approx_bound_bits(n, eps),
            "lower": approx_bound_bits(n, eps),
        },
        f"k-distance ({regime})": {"upper": k_upper, "lower": k_lower},
    }
