"""Stretched (h, M)-trees (Section 5.1): approximate-distance lower bound.

The construction subdivides an (h, M)-tree into an unweighted tree and then
subdivides every edge at depth ``delta`` into ``floor((1 + eps)^{hM - delta})``
edges.  Leaves at original distance ``2j`` end up at distance
``f(j) = 2 * sum_{i=1..j} floor((1 + eps)^i)``, and the intervals
``[f(j), (1 + eps) f(j)]`` are pairwise disjoint — so a (1+eps)-approximate
answer reveals the exact original distance, and Lemma 2.3 applies.
"""

from __future__ import annotations

import math

from repro.lowerbounds.hm_trees import HMTree, build_hm_tree, subdivide_to_unweighted
from repro.trees.tree import RootedTree


def stretch_factor(eps: float, exponent: int) -> int:
    """``floor((1 + eps)^exponent)`` (at least 1)."""
    return max(1, int(math.floor((1.0 + eps) ** exponent)))


def stretched_distance(j: int, eps: float) -> int:
    """``f(j) = 2 * sum_{i=1..j} floor((1 + eps)^i)``."""
    return 2 * sum(stretch_factor(eps, i) for i in range(1, j + 1))


def stretched_intervals_disjoint(eps: float, max_j: int) -> bool:
    """Whether ``[f(j), (1+eps) f(j)]`` and ``[f(j+1), ...]`` are disjoint.

    Section 5.1 proves this holds for every ``eps <= 1``; the function lets
    tests confirm the computation numerically.
    """
    for j in range(1, max_j):
        if (1.0 + eps) * stretched_distance(j, eps) >= stretched_distance(j + 1, eps):
            return False
    return True


def build_stretched_hm_tree(
    h: int, M: int, parameters: list[int], eps: float
) -> tuple[RootedTree, list[int]]:
    """Build the stretched tree and return it with the images of the leaves.

    The construction follows Section 5.1: subdivide the (h, M)-tree into an
    unweighted tree of height ``h * M``, then subdivide each depth-``delta``
    edge into ``floor((1 + eps)^{hM - delta})`` unit edges.
    """
    instance: HMTree = build_hm_tree(h, M, parameters)
    unweighted, image = subdivide_to_unweighted(instance.tree)
    height = h * M

    parents: list[int | None] = [None]
    new_image: dict[int, int] = {unweighted.root: 0}
    for node in unweighted.preorder():
        if node == unweighted.root:
            continue
        parent = unweighted.parent(node)
        depth = unweighted.depth(node) - 1  # depth of the edge's upper endpoint
        pieces = stretch_factor(eps, height - depth)
        current = new_image[parent]
        for _ in range(pieces):
            parents.append(current)
            current = len(parents) - 1
        new_image[node] = current

    stretched = RootedTree(parents)
    leaf_images = [new_image[image[leaf]] for leaf in instance.leaves]
    return stretched, leaf_images


def approx_lower_bound_bits(n: int, eps: float) -> float:
    """Theorem 1.4 lower bound shape: ``log(1/eps) * log n`` (constants omitted)."""
    if n < 2 or eps <= 0:
        return 0.0
    return math.log2(max(1.0 / eps, 2.0)) * math.log2(n)
