"""Lower-bound instance families and the summary-table bound formulas.

Lower bounds cannot be "run", but their instance families can be built and
measured.  This package provides:

* :mod:`repro.lowerbounds.hm_trees` — the weighted ``(h, M)``-trees of
  Gavoille et al. (Fig. 2) used for the exact and large-k lower bounds,
  together with the subdivision into unweighted trees,
* :mod:`repro.lowerbounds.regular_trees` — the ``(x, h, d)``-regular trees
  of Section 4.1 (Fig. 5) used for the small-k lower bound, including the
  Lemma 4.1 counting machinery,
* :mod:`repro.lowerbounds.stretched_trees` — the Section 5.1 stretching of
  ``(h, M)``-trees that reduces exact distances to (1+eps)-approximate ones,
* :mod:`repro.lowerbounds.bounds` — closed-form versions of every row of the
  paper's summary table, used as reference curves by the benchmarks.
"""

from repro.lowerbounds.bounds import (
    approx_bound_bits,
    exact_lower_bound_bits,
    exact_upper_bound_bits,
    kdistance_large_bound_bits,
    kdistance_small_lower_bound_bits,
    kdistance_small_upper_bound_bits,
    universal_tree_scheme_lower_bound_bits,
)
from repro.lowerbounds.hm_trees import (
    HMTree,
    build_hm_tree,
    hm_parameter_count,
    hm_tree_size,
    lemma_2_3_bound_bits,
    random_hm_parameters,
    subdivide_to_unweighted,
)
from repro.lowerbounds.regular_trees import (
    build_regular_tree,
    common_labels_upper_bound,
    lemma_4_1_total_bound,
    regular_tree_leaf_count,
)
from repro.lowerbounds.stretched_trees import (
    build_stretched_hm_tree,
    stretched_distance,
    stretched_intervals_disjoint,
)

__all__ = [
    "HMTree",
    "build_hm_tree",
    "subdivide_to_unweighted",
    "hm_tree_size",
    "hm_parameter_count",
    "random_hm_parameters",
    "lemma_2_3_bound_bits",
    "build_regular_tree",
    "regular_tree_leaf_count",
    "common_labels_upper_bound",
    "lemma_4_1_total_bound",
    "build_stretched_hm_tree",
    "stretched_distance",
    "stretched_intervals_disjoint",
    "exact_upper_bound_bits",
    "exact_lower_bound_bits",
    "approx_bound_bits",
    "kdistance_small_upper_bound_bits",
    "kdistance_small_lower_bound_bits",
    "kdistance_large_bound_bits",
    "universal_tree_scheme_lower_bound_bits",
]
