"""(h, M)-trees (Gavoille, Peleg, Perennes, Raz; Fig. 2 and Lemma 2.3).

An (h, M)-tree is a weighted rooted binary tree defined recursively: for
``h = 0`` it is a single node; for ``h >= 1`` the root is connected to a
single child by an edge of weight ``M - x`` (for a parameter ``x in [0, M)``)
and the child is connected to two (h-1, M)-trees by edges of weight ``x``.
Every choice of the ``2^h - 1`` parameters gives one member of the family.
Lemma 2.3: any distance labeling scheme for this family needs
``h/2 * log M`` bit labels even for leaf queries.

These instances drive three experiments: the exact-distance lower bound
(F2-hm), the large-k lower bound (Section 4.2) and — after the Section 5.1
stretching in :mod:`repro.lowerbounds.stretched_trees` — the approximate
lower bound.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.trees.tree import RootedTree


@dataclass
class HMTree:
    """An (h, M)-tree plus bookkeeping."""

    tree: RootedTree
    h: int
    M: int
    parameters: list[int]
    leaves: list[int]


def hm_parameter_count(h: int) -> int:
    """Number of free parameters (one per recursive root): ``2^h - 1``."""
    return (1 << h) - 1


def hm_tree_size(h: int) -> int:
    """Number of nodes: ``3 * 2^h - 2``."""
    return 3 * (1 << h) - 2


def random_hm_parameters(h: int, M: int, seed: int = 0) -> list[int]:
    """Uniformly random parameter vector ``x in [0, M)^{2^h - 1}``."""
    rng = random.Random(seed)
    return [rng.randrange(M) for _ in range(hm_parameter_count(h))]


def build_hm_tree(h: int, M: int, parameters: list[int]) -> HMTree:
    """Build the (h, M)-tree for a given parameter vector.

    Parameters are indexed like a heap: the root of the whole tree uses
    ``parameters[0]``, the roots of its two (h-1, M)-subtrees use
    ``parameters[1]`` and ``parameters[2]``, and so on.
    """
    if h < 0:
        raise ValueError("h must be non-negative")
    if M < 1:
        raise ValueError("M must be at least 1")
    if len(parameters) != hm_parameter_count(h):
        raise ValueError(
            f"expected {hm_parameter_count(h)} parameters, got {len(parameters)}"
        )
    if any(not 0 <= x < M for x in parameters):
        raise ValueError("every parameter must lie in [0, M)")

    parents: list[int | None] = []
    weights: list[int] = []
    leaves: list[int] = []

    def new_node(parent: int | None, weight: int) -> int:
        parents.append(parent)
        weights.append(weight)
        return len(parents) - 1

    def build(level: int, parameter_index: int, parent: int | None, weight: int) -> None:
        node = new_node(parent, weight)
        if level == 0:
            leaves.append(node)
            return
        x = parameters[parameter_index]
        child = new_node(node, M - x)
        left_index = 2 * parameter_index + 1
        right_index = 2 * parameter_index + 2
        build(level - 1, left_index, child, x)
        build(level - 1, right_index, child, x)

    # the recursion depth is h (tiny); build iteratively only if ever needed
    build(h, 0, None, 0)
    tree = RootedTree(parents, weights)
    return HMTree(tree=tree, h=h, M=M, parameters=parameters, leaves=leaves)


def subdivide_to_unweighted(tree: RootedTree) -> tuple[RootedTree, dict[int, int]]:
    """Replace every weight-w edge by w unit edges (w = 0 contracts the edge).

    Returns the unweighted tree and a map from original nodes to their
    images.  All pairwise distances between mapped nodes are preserved.
    """
    parents: list[int | None] = [None]
    image: dict[int, int] = {tree.root: 0}

    for node in tree.preorder():
        if node == tree.root:
            continue
        parent_image = image[tree.parent(node)]
        weight = tree.edge_weight(node)
        if weight == 0:
            image[node] = parent_image
            continue
        current = parent_image
        for _ in range(weight):
            parents.append(current)
            current = len(parents) - 1
        image[node] = current

    return RootedTree(parents), image


def lemma_2_3_bound_bits(h: int, M: int) -> float:
    """Lemma 2.3: label length lower bound ``h/2 * log2 M`` bits."""
    if M < 2:
        return 0.0
    return h / 2 * math.log2(M)


def leaf_distance_profile(instance: HMTree) -> tuple[tuple[int, ...], ...]:
    """All pairwise leaf distances (used by the counting experiments)."""
    from repro.oracles.distance_matrix import DistanceMatrix

    matrix = DistanceMatrix(instance.tree)
    return matrix.leaf_profile(instance.leaves)


def enumerate_parameter_vectors(h: int, M: int, limit: int | None = None):
    """Yield parameter vectors of the family (all of them, or the first few)."""
    count = hm_parameter_count(h)
    total = M ** count
    if limit is not None:
        total = min(total, limit)
    for index in range(total):
        vector = []
        value = index
        for _ in range(count):
            vector.append(value % M)
            value //= M
        yield vector


def distinct_profile_count(h: int, M: int, limit: int | None = None) -> int:
    """Number of distinct leaf-distance profiles over (part of) the family.

    A counting companion to Lemma 2.3: if the family realises many distinct
    leaf-distance profiles, few labels can be shared between instances, so
    labels must be long.  Exact enumeration is only feasible for tiny
    ``(h, M)``.
    """
    profiles = set()
    for vector in enumerate_parameter_vectors(h, M, limit):
        profiles.add(leaf_distance_profile(build_hm_tree(h, M, vector)))
    return len(profiles)
