"""Prometheus text-format exposition and the stdlib metrics endpoint.

Two halves:

:func:`render`
    serialise a :class:`repro.obs.registry.Registry` into the Prometheus
    text exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` lines,
    escaped labels, histograms expanded into cumulative (hence monotone)
    ``_bucket{le="..."}`` series plus ``_sum`` / ``_count``.

:func:`fleet_registry`
    the serving fleet's metric surface: build a registry snapshot from a
    fleet-merged STATS payload (:func:`repro.serve.metrics.merge_fleet_stats`)
    plus optional supervisor control-plane state.  Every series is prefixed
    ``repro_``; the store generation and kernel tier travel as info labels,
    latency as fleet-merged histograms, and per-slot liveness/restarts as
    labelled gauges.

:class:`MetricsServer`
    a tiny ``http.server`` endpoint (``serve --metrics-port``) that calls a
    render callable per GET — no third-party dependency, runs as a daemon
    thread next to the supervisor (which scrapes its workers per request,
    so the endpoint always reflects live fleet state).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.hist import Histogram, merge_histogram_dicts
from repro.obs.registry import MetricFamily, Registry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value) -> str:
    """A Prometheus-safe number literal (no exponent surprises for ints)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return f"{value:.10g}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _render_family(family: MetricFamily, out: list[str]) -> None:
    if family.help:
        out.append(f"# HELP {family.name} {_escape(family.help)}")
    # info metrics are the conventional constant-1 gauge
    kind = "gauge" if family.kind == "info" else family.kind
    out.append(f"# TYPE {family.name} {kind}")
    if family.kind != "histogram":
        for labels, value in family.samples:
            out.append(f"{family.name}{_labels(labels)} {_fmt(value)}")
        return
    for labels, hist in family.samples:
        assert isinstance(hist, Histogram)
        cumulative = hist.cumulative()
        for bound, count in zip(hist.bounds, cumulative):
            bucket = dict(labels, le=_fmt(bound))
            out.append(f"{family.name}_bucket{_labels(bucket)} {count}")
        inf = dict(labels, le="+Inf")
        out.append(f"{family.name}_bucket{_labels(inf)} {cumulative[-1]}")
        out.append(f"{family.name}_sum{_labels(labels)} {_fmt(hist.sum)}")
        out.append(f"{family.name}_count{_labels(labels)} {hist.total}")


def render(registry: Registry) -> str:
    """The full text exposition for ``registry`` (trailing newline included)."""
    out: list[str] = []
    for family in registry.collect():
        _render_family(family, out)
    return "\n".join(out) + "\n"


#: fleet counters exported 1:1 from the merged STATS payload
_COUNTERS = (
    ("queries", "repro_queries_total", "Individual QUERY answers sent"),
    ("batch_requests", "repro_batch_requests_total", "OP_BATCH requests served"),
    ("batch_request_pairs", "repro_batch_pairs_total", "Pairs answered inside OP_BATCH requests"),
    ("matrix_requests", "repro_matrix_requests_total", "OP_MATRIX requests served"),
    ("flushes", "repro_coalescer_flushes_total", "Coalescer batch_query calls"),
    ("coalesced_queries", "repro_coalesced_queries_total", "QUERY answers produced by coalesced flushes"),
    ("errors", "repro_errors_total", "Request-scoped OP_ERROR responses"),
    ("busy_rejections", "repro_busy_rejections_total", "Requests shed with OP_BUSY backpressure"),
    ("connections_total", "repro_connections_total", "Client connections accepted"),
    ("restarts", "repro_worker_restarts_total", "Worker processes restarted after a crash"),
    ("misroutes", "repro_misroutes_total", "Member requests served by a non-owning shard (legacy clients)"),
    ("moved_redirects", "repro_moved_redirects_total", "OP_MOVED redirects sent to routed clients"),
)

_GAUGES = (
    ("connections_open", "repro_connections_open", "Client connections currently open"),
    ("pending", "repro_pending_queries", "QUERYs queued in the coalescers right now"),
    ("workers", "repro_workers", "Distinct workers merged into this scrape"),
    ("rss_bytes", "repro_rss_bytes", "Resident set size summed over workers (mmap-served payload pages are shared)"),
    ("qps", "repro_queries_per_second", "Lifetime answered-query rate summed over workers"),
    ("uptime_seconds", "repro_uptime_seconds", "Oldest worker uptime"),
)


def fleet_registry(merged: dict, *, supervisor: dict | None = None) -> Registry:
    """The ``repro_``-prefixed metric snapshot for one fleet-merged STATS view.

    ``merged`` is a :func:`repro.serve.metrics.merge_fleet_stats` payload
    (a single worker's STATS dict also works — it merges with itself);
    ``supervisor`` optionally adds control-plane series (reloads, per-slot
    liveness) from :meth:`FleetSupervisor.fleet_status`.
    """
    registry = Registry()
    for key, name, help_text in _COUNTERS:
        registry.counter(name, help_text, merged.get(key, 0))
    for key, name, help_text in _GAUGES:
        registry.gauge(name, help_text, merged.get(key, 0))

    generation = merged.get("store_generation")
    if supervisor is not None and supervisor.get("generation"):
        generation = supervisor["generation"]
    if generation:
        labels = {"generation": generation}
        if supervisor is not None and supervisor.get("path"):
            labels["path"] = supervisor["path"]
        registry.info(
            "repro_store_info", "Served store generation (content hash)", **labels
        )
    if merged.get("kernel"):
        registry.info(
            "repro_kernel_info", "Active decode/distance kernel tier",
            tier=merged["kernel"],
        )

    latency = merged.get("latency_ms", {})
    if isinstance(latency.get("histogram"), dict):
        registry.histogram(
            "repro_request_latency_ms",
            "QUERY latency (coalescer enqueue to response write), milliseconds",
            Histogram.from_dict(latency["histogram"]),
        )
    for stage, payload in sorted(merged.get("stages", {}).items()):
        try:
            hist = merge_histogram_dicts([payload])
        except (KeyError, ValueError, TypeError):  # pragma: no cover - defensive
            continue
        if hist is not None:
            registry.histogram(
                "repro_request_stage_ms",
                "Per-stage request-path durations, milliseconds",
                hist,
                stage=stage,
            )

    index = merged.get("index")
    if isinstance(index, dict) and index.get("open", True):
        cache = index.get("cache")
        if isinstance(cache, dict):
            registry.gauge(
                "repro_label_cache_hit_rate",
                "Parsed-label LRU hit rate", cache.get("hit_rate", 0.0),
            )
        pair_cache = index.get("pair_cache")
        if isinstance(pair_cache, dict) and pair_cache.get("enabled"):
            registry.gauge(
                "repro_pair_cache_hit_rate",
                "Hot-pair response cache hit rate", pair_cache.get("hit_rate", 0.0),
            )

    if merged.get("routing_version"):
        registry.gauge(
            "repro_routing_table_version",
            "Newest routing-table version any worker reports",
            merged["routing_version"],
        )

    for row in merged.get("per_worker", ()):
        slot = str(row.get("slot", 0))
        registry.gauge(
            "repro_worker_queries", "QUERY answers per worker slot",
            row.get("queries", 0), slot=slot,
        )
        registry.gauge(
            "repro_worker_restarts", "Restart count per worker slot",
            row.get("restarts", 0), slot=slot,
        )
        if "members_assigned" in row:
            registry.gauge(
                "repro_worker_members",
                "Catalog members assigned to the worker slot",
                len(row["members_assigned"]), slot=slot,
            )

    if supervisor is not None:
        registry.counter(
            "repro_fleet_reloads_total", "Completed rolling reloads",
            supervisor.get("reloads", 0),
        )
        routing = supervisor.get("routing")
        if routing and not merged.get("routing_version"):
            registry.gauge(
                "repro_routing_table_version",
                "Newest routing-table version any worker reports",
                routing.get("version", 0),
            )
        for slot_row in supervisor.get("slots", ()):
            registry.gauge(
                "repro_worker_up", "1 while the slot's worker process is alive",
                1 if slot_row.get("alive") else 0, slot=str(slot_row.get("slot", 0)),
            )
    return registry


class MetricsServer:
    """A daemon-threaded ``/metrics`` HTTP endpoint over a render callable.

    ``source`` is called once per GET and must return the exposition text —
    for a fleet that means "scrape the workers now", so the endpoint is
    always live data, never a stale cache.  Exceptions render as a 500 with
    the error text; the serving fleet is never taken down by its metrics.
    """

    def __init__(self, source, host: str = "127.0.0.1", port: int = 0) -> None:
        self._source = source

        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] not in ("/", "/metrics"):
                    self.send_error(404, "try /metrics")
                    return
                try:
                    body = outer._source().encode("utf-8")
                except Exception as error:  # noqa: BLE001 - reported, not raised
                    self.send_response(500)
                    self.send_header("Content-Type", "text/plain; charset=utf-8")
                    self.end_headers()
                    self.wfile.write(f"scrape failed: {error}\n".encode())
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # noqa: A003 - silence stderr
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Serve in a daemon thread; returns the bound ``(host, port)``."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
