"""Opt-in worker profiling: ``REPRO_PROFILE`` + SIGUSR2 -> pstats dump.

Per-stage histograms say *where* time goes; a profile says *why*.  This
module arms a signal-triggered ``cProfile`` window in a serving worker:

    REPRO_PROFILE=5 repro-labels serve labels.bin --workers 2 &
    kill -USR2 <worker pid>        # profile the next 5 seconds
    # -> ./repro-profile-slot0-gen1a2b3c4d-pid12345.pstats

The env value is ``seconds`` or ``seconds:directory``.  Nothing is
installed without the env var (the hot path must not pay for an idle
profiler), repeated signals during a window are ignored, and the dump is
named by slot + store generation + pid so a fleet-wide profiling session
yields distinguishable files across workers and rolling reloads.  Load the
result with ``python -m pstats <file>`` or ``snakeviz``.

The stop is scheduled on the worker's event loop (``loop.call_later``), so
``Profile.disable()`` runs on the profiled thread — cProfile profiles the
enabling thread only.
"""

from __future__ import annotations

import cProfile
import os
import signal

ENV_VAR = "REPRO_PROFILE"


def parse_profile_spec(spec: str) -> tuple[float, str]:
    """``(seconds, directory)`` from ``"5"`` or ``"5:/tmp/profiles"``."""
    seconds_part, _, directory = spec.partition(":")
    seconds = float(seconds_part) if seconds_part else 5.0
    if seconds <= 0:
        raise ValueError("REPRO_PROFILE seconds must be positive")
    return seconds, directory or "."


def profile_path(directory: str, slot: int, generation: str | None) -> str:
    gen = generation or "none"
    return os.path.join(
        directory, f"repro-profile-slot{slot}-gen{gen}-pid{os.getpid()}.pstats"
    )


def install_profile_hook(
    loop,
    *,
    slot: int = 0,
    generation: str | None = None,
    environ=None,
    on_dump=None,
) -> bool:
    """Arm the SIGUSR2 -> cProfile hook on ``loop``'s thread.

    Returns ``True`` when armed (``REPRO_PROFILE`` set and SIGUSR2 exists).
    ``on_dump`` (tests, logging) is called with the pstats path after each
    window.  The handler is re-armed after every window, so a long-running
    worker can be profiled repeatedly.
    """
    environ = os.environ if environ is None else environ
    spec = environ.get(ENV_VAR)
    if not spec or not hasattr(signal, "SIGUSR2"):
        return False
    seconds, directory = parse_profile_spec(spec)
    state = {"profiler": None}

    def stop_window() -> None:
        profiler = state["profiler"]
        if profiler is None:  # pragma: no cover - defensive
            return
        profiler.disable()
        state["profiler"] = None
        path = profile_path(directory, slot, generation)
        profiler.dump_stats(path)
        if on_dump is not None:
            on_dump(path)

    def start_window() -> None:
        if state["profiler"] is not None:
            return  # a window is already running; ignore the extra signal
        profiler = cProfile.Profile()
        state["profiler"] = profiler
        loop.call_later(seconds, stop_window)
        profiler.enable()

    loop.add_signal_handler(signal.SIGUSR2, start_window)
    return True
