"""Fixed-boundary log-spaced latency histograms.

The serving stack used to estimate latency percentiles from a bounded
reservoir (``deque(maxlen=4096)``) per worker.  That breaks down exactly
where a fleet needs it most: merging.  Concatenating reservoirs over-weights
a recently-restarted worker (its short reservoir holds *every* sample while
a veteran's holds the last 4096 of millions), and an external scraper has no
stable series to graph at all.

A :class:`Histogram` fixes both properties:

* **fixed boundaries** — every worker in a fleet buckets into the *same*
  log-spaced boundaries (factor √2 from 10 µs to ~7.4 s in milliseconds),
  so merging two histograms is exact bucket-wise addition, regardless of
  how many samples either side has seen or dropped;
* **bounded state** — ~40 integers per histogram however much traffic
  flows, cheap enough to keep one per request stage;
* **Prometheus-compatible** — :meth:`cumulative` yields the monotone
  ``le``-bucket counts the text exposition format wants.

Percentiles come from the bucket counts (:meth:`percentile` returns the
upper boundary of the bucket holding the nearest rank — a ≤ √2
quantisation, honest about its resolution), so fleet percentiles are
derived from *merged counts*, never from averaging per-worker percentiles.
"""

from __future__ import annotations

import math
from bisect import bisect_left

#: default bucket boundaries in milliseconds: log-spaced by √2 from 10 µs
#: to ~7.4 s.  40 finite buckets + 1 overflow bucket; every histogram in a
#: fleet must share boundaries for merges to be exact.
DEFAULT_BOUNDS_MS: tuple[float, ...] = tuple(
    round(0.01 * math.sqrt(2.0) ** i, 6) for i in range(40)
)


class Histogram:
    """A fixed-boundary histogram with exact bucket-wise merge.

    ``counts[i]`` holds observations ``value <= bounds[i]`` (after the
    previous bucket); ``counts[-1]`` is the overflow (+Inf) bucket.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS_MS) -> None:
        self.bounds = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be a sorted non-empty sequence")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (same unit as the bounds)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` observations of the same value in one step."""
        self.counts[bisect_left(self.bounds, value)] += count
        self.total += count
        self.sum += value * count

    def merge(self, other: "Histogram") -> None:
        """Bucket-wise add ``other`` into this histogram (exact)."""
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket boundaries"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile estimated from the bucket counts.

        Returns the upper boundary of the bucket containing the target rank
        (the largest finite boundary for overflow samples) — an estimate
        honest to the bucket resolution, 0.0 when empty.
        """
        if not self.total:
            return 0.0
        rank = max(1, math.ceil(fraction * self.total))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return self.bounds[index] if index < len(self.bounds) else self.bounds[-1]
        return self.bounds[-1]  # pragma: no cover - rank <= total by construction

    def cumulative(self) -> list[int]:
        """Monotone cumulative counts per ``le`` bucket (overflow last)."""
        out: list[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    # -- wire/JSON round trip -------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot (rides in STATS payloads)."""
        return {
            "bounds_ms": list(self.bounds),
            "counts": list(self.counts),
            "count": self.total,
            "sum": round(self.sum, 6),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        hist = cls(tuple(payload["bounds_ms"]))
        counts = list(payload["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError("histogram payload counts do not match its bounds")
        hist.counts = [int(count) for count in counts]
        hist.total = int(payload.get("count", sum(hist.counts)))
        hist.sum = float(payload.get("sum", 0.0))
        return hist


def merge_histogram_dicts(payloads: list[dict]) -> Histogram | None:
    """Fold many :meth:`Histogram.to_dict` payloads into one histogram.

    Returns ``None`` when the list is empty.  This is the fleet-merge path:
    per-worker STATS carry histogram snapshots and the merged buckets are
    exact sums, so fleet percentiles weight every worker by its true sample
    count — a freshly restarted worker contributes exactly its few samples.
    """
    merged: Histogram | None = None
    for payload in payloads:
        hist = Histogram.from_dict(payload)
        if merged is None:
            merged = hist
        else:
            merged.merge(hist)
    return merged
