"""``repro.obs`` — the observability plane for the serving stack.

Four small, dependency-free modules that make a running fleet inspectable:

* :mod:`repro.obs.trace` — request tracing: :class:`Span` /
  :func:`start_span` monotonic timings over the request path (frame decode
  → coalescer queue wait → kernel batch → result encode → transport
  write), a bounded ring of recent traces and a slow-query log per worker
  (served over ``OP_TRACE`` / ``repro-labels trace``);
* :mod:`repro.obs.hist` — fixed-boundary log-spaced latency
  :class:`Histogram` s whose merge is exact bucket-wise addition, so
  fleet-wide percentiles come from merged counts instead of concatenated
  reservoirs;
* :mod:`repro.obs.registry` — a minimal typed metric registry (counters,
  gauges, histograms, info labels);
* :mod:`repro.obs.prom` — the Prometheus text exposition
  (:func:`~repro.obs.prom.render`), the fleet's ``repro_``-prefixed metric
  surface (:func:`~repro.obs.prom.fleet_registry`) and the stdlib
  ``/metrics`` HTTP endpoint (:class:`~repro.obs.prom.MetricsServer`,
  ``serve --metrics-port``);
* :mod:`repro.obs.profile` — the opt-in ``REPRO_PROFILE`` / SIGUSR2
  cProfile window for a live worker.

Everything here is stdlib-only and cheap enough to leave on in production:
histogram observation is one bisect into ~40 boundaries, and tracing
allocates only for requests that carry a trace id.
"""

from __future__ import annotations

from repro.obs.hist import DEFAULT_BOUNDS_MS, Histogram, merge_histogram_dicts
from repro.obs.prom import MetricsServer, fleet_registry, render
from repro.obs.profile import install_profile_hook
from repro.obs.registry import MetricFamily, Registry
from repro.obs.trace import STAGES, Span, Trace, TraceRecorder, start_span

__all__ = [
    "DEFAULT_BOUNDS_MS",
    "Histogram",
    "merge_histogram_dicts",
    "MetricFamily",
    "Registry",
    "MetricsServer",
    "fleet_registry",
    "render",
    "install_profile_hook",
    "STAGES",
    "Span",
    "Trace",
    "TraceRecorder",
    "start_span",
]
