"""A small metric registry: counters, gauges, histograms, info labels.

This is deliberately a subset of the Prometheus client-library data model —
just enough structure that :mod:`repro.obs.prom` can render a well-formed
text exposition and tests can assert on typed samples, with no third-party
dependency:

* a :class:`Registry` holds :class:`MetricFamily` objects in registration
  order;
* a family has a ``name``, a ``kind`` (``counter`` / ``gauge`` /
  ``histogram`` / ``info``), help text, and labelled samples;
* histogram samples carry a :class:`repro.obs.hist.Histogram` and expand to
  cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series at render
  time, so bucket counts are monotone by construction.

The serving fleet does not mutate live metric objects on the hot path — the
workers keep plain counters and histograms, and the supervisor's scrape
builds a fresh registry from merged STATS payloads per scrape (see
:func:`repro.obs.prom.fleet_registry`).  The registry is the stable,
renderable shape in between.
"""

from __future__ import annotations

import re

from repro.obs.hist import Histogram

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

KINDS = ("counter", "gauge", "histogram", "info")


class MetricFamily:
    """One named metric with typed, labelled samples."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if kind not in KINDS:
            raise ValueError(f"unknown metric kind {kind!r} (expected {KINDS})")
        self.name = name
        self.kind = kind
        self.help = help_text
        #: list of (labels_dict, value) — value is a number, or a
        #: :class:`Histogram` for histogram families
        self.samples: list[tuple[dict, object]] = []

    def add(self, value, **labels) -> None:
        """Add one sample; histogram families take a :class:`Histogram`."""
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if self.kind == "histogram":
            if not isinstance(value, Histogram):
                raise TypeError("histogram families sample Histogram objects")
        elif not isinstance(value, (int, float)):
            raise TypeError(f"{self.kind} families sample numbers")
        self.samples.append((dict(labels), value))


class Registry:
    """An ordered collection of metric families."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def family(self, name: str, kind: str, help_text: str = "") -> MetricFamily:
        """Get-or-create a family (kind must match on reuse)."""
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    # -- one-shot conveniences (build a snapshot registry in a few lines) -----

    def counter(self, name: str, help_text: str, value, **labels) -> None:
        self.family(name, "counter", help_text).add(value, **labels)

    def gauge(self, name: str, help_text: str, value, **labels) -> None:
        self.family(name, "gauge", help_text).add(value, **labels)

    def histogram(self, name: str, help_text: str, hist: Histogram, **labels) -> None:
        self.family(name, "histogram", help_text).add(hist, **labels)

    def info(self, name: str, help_text: str, **labels) -> None:
        """An info-style metric: constant 1 whose labels carry the payload."""
        self.family(name, "info", help_text).add(1, **labels)

    def collect(self) -> list[MetricFamily]:
        """Families in registration order (the render order)."""
        return list(self._families.values())
