"""Lightweight request tracing: spans, traces, and the server-side ring.

No third-party tracing stack — a span here is a name plus two
``time.monotonic()`` readings, and a trace is a handful of spans that cover
one request's path through the server:

    accept -> frame decode -> coalescer queue wait -> kernel batch
           -> result encode -> transport write

The pieces:

:class:`Span` / :func:`start_span`
    the timing primitive.  ``with start_span("batch") as span: ...`` or
    explicit :meth:`Span.finish`; ``span.ms`` is the duration.  Completed
    spans can also be built directly from a measured duration
    (:meth:`Span.completed`) — the server's hot path captures raw
    timestamps and assembles spans only for sampled requests.

:class:`Trace`
    one request's spans plus identity: the client-assigned ``trace_id``
    (carried as an additive RSP/1 field), the member name, the worker
    pid/slot and — crucially for rolling reloads — the ``store_generation``
    the request was answered under.

:class:`TraceRecorder`
    the per-worker sink: a bounded ring of recent traces plus a slow-query
    log (requests whose total latency crossed ``slow_ms``).  Both are
    exposed over the wire via ``OP_TRACE`` and the ``repro-labels trace``
    CLI; memory stays bounded no matter the traffic.

Traces cost nothing unless requested: an untraced request never allocates
a span, and a traced one adds a tuple and a few clock reads.
"""

from __future__ import annotations

import time
from collections import deque

#: the named stages of a served QUERY, in request-path order.  BATCH
#: requests skip ``queue`` (they never enter the coalescer).
STAGES = ("decode", "queue", "batch", "encode", "write")


class Span:
    """One named, monotonic-clock timed section of a request."""

    __slots__ = ("name", "started", "ended")

    def __init__(self, name: str, started: float | None = None) -> None:
        self.name = name
        self.started = time.monotonic() if started is None else started
        self.ended: float | None = None

    def finish(self, ended: float | None = None) -> "Span":
        """Mark the span complete (idempotent); returns self for chaining."""
        if self.ended is None:
            self.ended = time.monotonic() if ended is None else ended
        return self

    @property
    def ms(self) -> float:
        """Duration in milliseconds (0.0 while unfinished)."""
        if self.ended is None:
            return 0.0
        return (self.ended - self.started) * 1000.0

    @classmethod
    def completed(cls, name: str, ms: float) -> "Span":
        """A finished span built from an externally measured duration."""
        span = cls(name, started=0.0)
        span.ended = ms / 1000.0
        return span

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    def to_dict(self) -> dict:
        return {"stage": self.name, "ms": round(self.ms, 4)}

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Span({self.name!r}, {self.ms:.3f}ms)"


def start_span(name: str) -> Span:
    """Start timing a named span now."""
    return Span(name)


class Trace:
    """One traced request: identity plus its ordered spans."""

    __slots__ = ("trace_id", "op", "member", "spans", "total_ms", "attrs")

    def __init__(
        self,
        trace_id: int,
        op: str,
        member: str = "",
        *,
        total_ms: float = 0.0,
        attrs: dict | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.op = op
        self.member = member
        self.spans: list[Span] = []
        self.total_ms = total_ms
        self.attrs = attrs or {}

    def add(self, span: Span) -> None:
        self.spans.append(span)

    def to_dict(self) -> dict:
        payload = {
            "trace_id": self.trace_id,
            "op": self.op,
            "member": self.member,
            "total_ms": round(self.total_ms, 4),
            "spans": [span.to_dict() for span in self.spans],
        }
        payload.update(self.attrs)
        return payload


class TraceRecorder:
    """Bounded ring of recent traces plus the slow-query log.

    ``slow_ms=None`` disables the slow log; the ring always runs (it only
    fills when clients actually send trace ids, so an untraced fleet pays
    nothing).
    """

    def __init__(self, ring: int = 256, slow_ms: float | None = None) -> None:
        if ring < 1:
            raise ValueError("trace ring must hold at least one trace")
        self.slow_ms = slow_ms
        self._ring: deque[dict] = deque(maxlen=ring)
        self._slow: deque[dict] = deque(maxlen=128)
        self.recorded = 0
        self.slow_recorded = 0

    def record(self, trace: Trace | dict) -> None:
        """Add one completed trace to the ring (oldest evicted)."""
        payload = trace.to_dict() if isinstance(trace, Trace) else trace
        self._ring.append(payload)
        self.recorded += 1

    def maybe_slow(self, total_ms: float, entry: dict) -> bool:
        """Log ``entry`` when ``total_ms`` crosses the slow threshold."""
        if self.slow_ms is None or total_ms < self.slow_ms:
            return False
        self._slow.append(dict(entry, ms=round(total_ms, 4)))
        self.slow_recorded += 1
        return True

    def snapshot(self, limit: int = 32, include_slow: bool = True) -> dict:
        """The OP_TRACE payload: newest traces first, plus the slow log."""
        traces = list(self._ring)
        if limit > 0:
            traces = traces[-limit:]
        payload: dict = {
            "traces": traces[::-1],
            "recorded": self.recorded,
            "ring": self._ring.maxlen,
            "slow_ms": self.slow_ms,
        }
        if include_slow:
            payload["slow"] = list(self._slow)[::-1]
            payload["slow_recorded"] = self.slow_recorded
        return payload
