"""Predecessor / successor structure over a static sorted set.

Lemma 2.2 uses the predecessor structure of Patrascu and Thorup to answer
successor queries over the (deduplicated) monotone sequence in constant time
when both the sequence length and the universe are O(log n).  In that regime
a query touches only a machine word; here we keep the same two-level
organisation (a top-level bucket directory plus in-bucket scans) so the work
per query is bounded by a constant number of bucket operations.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right


class PredecessorStructure:
    """Static predecessor/successor queries over a sorted integer set."""

    def __init__(self, values: list[int]) -> None:
        deduped = sorted(set(values))
        self._values = deduped
        if deduped:
            self._universe = deduped[-1]
            # bucket width chosen so that the directory has O(len) entries
            self._bucket_bits = max(1, (self._universe.bit_length() + 1) // 2)
        else:
            self._universe = 0
            self._bucket_bits = 1
        self._buckets: dict[int, list[int]] = {}
        for value in deduped:
            self._buckets.setdefault(value >> self._bucket_bits, []).append(value)
        self._bucket_keys = sorted(self._buckets)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[int]:
        """The stored values in increasing order."""
        return list(self._values)

    def successor(self, query: int) -> int | None:
        """Smallest stored value ``>= query`` (``None`` when there is none)."""
        if not self._values:
            return None
        bucket_key = query >> self._bucket_bits
        bucket = self._buckets.get(bucket_key)
        if bucket is not None:
            idx = bisect_left(bucket, query)
            if idx < len(bucket):
                return bucket[idx]
        key_idx = bisect_right(self._bucket_keys, bucket_key)
        if key_idx < len(self._bucket_keys):
            return self._buckets[self._bucket_keys[key_idx]][0]
        return None

    def predecessor(self, query: int) -> int | None:
        """Largest stored value ``<= query`` (``None`` when there is none)."""
        if not self._values:
            return None
        bucket_key = query >> self._bucket_bits
        bucket = self._buckets.get(bucket_key)
        if bucket is not None:
            idx = bisect_right(bucket, query)
            if idx > 0:
                return bucket[idx - 1]
        key_idx = bisect_left(self._bucket_keys, bucket_key)
        if key_idx > 0:
            return self._buckets[self._bucket_keys[key_idx - 1]][-1]
        return None

    def successor_index(self, query: int) -> int | None:
        """Index (into the sorted value list) of the successor of ``query``."""
        succ = self.successor(query)
        if succ is None:
            return None
        return bisect_left(self._values, succ)

    def __contains__(self, value: int) -> bool:
        idx = bisect_left(self._values, value)
        return idx < len(self._values) and self._values[idx] == value
