"""Succinct support structures.

Lemma 2.2 of the paper augments its monotone-sequence encoding with a select
structure (Clark), a rank structure (Jacobson) and a predecessor structure
(Patrascu-Thorup).  This package provides the same functionality:

* :class:`~repro.succinct.bitvector.BitVector` — a plain bit vector with
  block-based rank and select,
* :class:`~repro.succinct.predecessor.PredecessorStructure` — predecessor /
  successor queries over a static sorted set.

The implementations follow the block decompositions of the classical
structures; on CPython the constant factors differ from the word-RAM model,
but the interfaces and the per-query work match the paper's usage.
"""

from repro.succinct.bitvector import BitVector
from repro.succinct.predecessor import PredecessorStructure

__all__ = ["BitVector", "PredecessorStructure"]
