"""Static bit vector with rank and select support.

``rank1(i)`` counts ones in the prefix ``[0, i)`` (block-based, Jacobson
style) and ``select1(k)`` returns the position of the ``k``-th one (1-based,
Clark-style position sampling).  Both are used by the Lemma 2.2 monotone
sequence encoder: select recovers quotient values from the unary stream,
rank counts element boundaries inside a prefix.
"""

from __future__ import annotations

from repro.encoding.bitio import Bits


class BitVector:
    """An immutable bit vector supporting block-accelerated rank and select."""

    _BLOCK = 32

    def __init__(self, bits: Bits | str | list[int]) -> None:
        if isinstance(bits, Bits):
            data = bits.data
        elif isinstance(bits, str):
            data = bits
        else:
            data = "".join("1" if b else "0" for b in bits)
        if data and set(data) - {"0", "1"}:
            raise ValueError("bit vector accepts only 0/1 characters")
        self._data = data
        self._build()

    def _build(self) -> None:
        block = self._BLOCK
        data = self._data
        prefix = [0]
        for start in range(0, len(data), block):
            prefix.append(prefix[-1] + data.count("1", start, start + block))
        self._prefix = prefix
        self._total_ones = prefix[-1]
        self._one_positions = [i for i, ch in enumerate(data) if ch == "1"]

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index: int) -> int:
        return 1 if self._data[index] == "1" else 0

    @property
    def ones(self) -> int:
        """Total number of set bits."""
        return self._total_ones

    def rank1(self, position: int) -> int:
        """Number of ones in ``[0, position)``."""
        if not 0 <= position <= len(self._data):
            raise IndexError(f"rank position {position} out of range")
        block_index = position // self._BLOCK
        count = self._prefix[block_index]
        count += self._data.count("1", block_index * self._BLOCK, position)
        return count

    def rank0(self, position: int) -> int:
        """Number of zeros in ``[0, position)``."""
        return position - self.rank1(position)

    def select1(self, k: int) -> int:
        """Position of the ``k``-th one (1-based)."""
        if not 1 <= k <= self._total_ones:
            raise IndexError(f"select1({k}) out of range (have {self._total_ones} ones)")
        return self._one_positions[k - 1]

    def select0(self, k: int) -> int:
        """Position of the ``k``-th zero (1-based), by binary search on rank0."""
        zeros = len(self._data) - self._total_ones
        if not 1 <= k <= zeros:
            raise IndexError(f"select0({k}) out of range (have {zeros} zeros)")
        lo, hi = 0, len(self._data) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank0(mid + 1) >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def to_bits(self) -> Bits:
        """Return the underlying bits."""
        return Bits(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        shown = self._data if len(self._data) <= 32 else self._data[:32] + "..."
        return f"BitVector({shown!r}, ones={self._total_ones})"
