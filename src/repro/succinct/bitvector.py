"""Static bit vector with rank and select support (word-packed).

``rank1(i)`` counts ones in the prefix ``[0, i)`` (block-based, Jacobson
style) and ``select1(k)`` returns the position of the ``k``-th one (1-based,
Clark-style position sampling).  Both are used by the Lemma 2.2 monotone
sequence encoder: select recovers quotient values from the unary stream,
rank counts element boundaries inside a prefix.

The vector is stored as a single packed integer (MSB = position 0), so rank
blocks are popcounts (``int.bit_count``) of extracted words rather than
character scans.
"""

from __future__ import annotations

from repro.encoding.bitio import Bits


class BitVector:
    """An immutable bit vector supporting block-accelerated rank and select."""

    _BLOCK = 64

    def __init__(self, bits: Bits | str | list[int]) -> None:
        if isinstance(bits, Bits):
            value, length = bits.to_int(), len(bits)
        elif isinstance(bits, str):
            if bits and set(bits) - {"0", "1"}:
                raise ValueError("bit vector accepts only 0/1 characters")
            value, length = (int(bits, 2) if bits else 0), len(bits)
        else:
            value, length = 0, 0
            for b in bits:
                value = (value << 1) | (1 if b else 0)
                length += 1
        self._value = value
        self._length = length
        self._build()

    def _build(self) -> None:
        block = self._BLOCK
        value = self._value
        length = self._length
        prefix = [0]
        one_positions: list[int] = []
        for start in range(0, length, block):
            end = min(start + block, length)
            word = (value >> (length - end)) & ((1 << (end - start)) - 1)
            prefix.append(prefix[-1] + word.bit_count())
            # lowest-set-bit extraction yields this word's positions in
            # descending order; reverse per block to keep the list sorted
            width = end - start
            block_positions = []
            while word:
                low = word & -word
                offset = low.bit_length() - 1
                block_positions.append(start + width - 1 - offset)
                word ^= low
            block_positions.reverse()
            one_positions.extend(block_positions)
        self._prefix = prefix
        self._total_ones = prefix[-1]
        self._one_positions = one_positions

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("bit vector index out of range")
        return (self._value >> (self._length - 1 - index)) & 1

    @property
    def ones(self) -> int:
        """Total number of set bits."""
        return self._total_ones

    def rank1(self, position: int) -> int:
        """Number of ones in ``[0, position)``."""
        if not 0 <= position <= self._length:
            raise IndexError(f"rank position {position} out of range")
        block_start = (position // self._BLOCK) * self._BLOCK
        count = self._prefix[position // self._BLOCK]
        if position > block_start:
            word = (self._value >> (self._length - position)) & (
                (1 << (position - block_start)) - 1
            )
            count += word.bit_count()
        return count

    def rank0(self, position: int) -> int:
        """Number of zeros in ``[0, position)``."""
        return position - self.rank1(position)

    def select1(self, k: int) -> int:
        """Position of the ``k``-th one (1-based)."""
        if not 1 <= k <= self._total_ones:
            raise IndexError(f"select1({k}) out of range (have {self._total_ones} ones)")
        return self._one_positions[k - 1]

    def select0(self, k: int) -> int:
        """Position of the ``k``-th zero (1-based), by binary search on rank0."""
        zeros = self._length - self._total_ones
        if not 1 <= k <= zeros:
            raise IndexError(f"select0({k}) out of range (have {zeros} zeros)")
        lo, hi = 0, self._length - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank0(mid + 1) >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def to_bits(self) -> Bits:
        """Return the underlying bits."""
        return Bits.from_int(self._value, self._length) if self._length else Bits()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        data = self.to_bits().data
        shown = data if self._length <= 32 else data[:32] + "..."
        return f"BitVector({shown!r}, ones={self._total_ones})"
