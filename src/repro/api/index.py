"""The :class:`DistanceIndex` façade: build/open/save/query one tree's labels.

This is the one handle the paper's serving story needs — encode a tree once,
ship the artefact, answer queries from it forever — without callers ever
touching labels, bit strings, scheme classes or the store/engine split:

    index = DistanceIndex.build(tree, "freedman")
    index.save("labels.bin")
    ...
    index = DistanceIndex.open("labels.bin")
    index.query(3, 42).value

Internally an index is a packed :class:`repro.store.LabelStore` plus a
:class:`repro.store.QueryEngine`; those stay public for measurement code but
are implementation details from the API's point of view.
"""

from __future__ import annotations

import os

from repro.api.result import result_wrapper
from repro.core.base import LabelingScheme
from repro.core.registry import make_scheme_from_spec, scheme_spec
from repro.store.label_store import LabelStore
from repro.store.query_engine import QueryEngine
from repro.trees.tree import RootedTree


class DistanceIndex:
    """Distance queries over one encoded tree, behind a single handle.

    Construct through :meth:`build` (from a tree), :meth:`open` /
    :meth:`from_bytes` (from a saved artefact) or :meth:`from_store` (from a
    live :class:`LabelStore`).  Queries return :class:`QueryResult` values;
    pass ``raw=True`` to get the scheme family's native answer
    (``int`` / ``int | None`` / ``float``) on hot paths.
    """

    def __init__(self, engine: QueryEngine) -> None:
        self._engine = engine
        self._wrap = result_wrapper(engine.scheme)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        tree: RootedTree,
        scheme: str | LabelingScheme = "freedman",
        *,
        cache_size: int = 4096,
        pair_cache_size: int = 0,
    ) -> "DistanceIndex":
        """Encode ``tree`` and serve it.

        ``scheme`` is a spec string such as ``"freedman"``,
        ``"k-distance:k=4"`` or ``"approximate:epsilon=0.1"`` (see
        :func:`repro.core.registry.parse_spec`), or an already-constructed
        scheme instance.  ``pair_cache_size`` enables the engine's hot-pair
        response cache (answers served without touching the labels when the
        same ``{u, v}`` repeats — the serving layer's Zipf workload shape).
        """
        if isinstance(scheme, str):
            scheme = make_scheme_from_spec(scheme)
        store = LabelStore.encode_tree(scheme, tree)
        return cls(
            QueryEngine(
                store,
                scheme=scheme,
                cache_size=cache_size,
                pair_cache_size=pair_cache_size,
            )
        )

    @classmethod
    def from_store(
        cls, store: LabelStore, *, cache_size: int = 4096, pair_cache_size: int = 0
    ) -> "DistanceIndex":
        """Serve an existing packed store (scheme rebuilt from its spec)."""
        return cls(
            QueryEngine(store, cache_size=cache_size, pair_cache_size=pair_cache_size)
        )

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        *,
        cache_size: int = 4096,
        pair_cache_size: int = 0,
        mmap: bool = False,
    ) -> "DistanceIndex":
        """Open an index saved by :meth:`save` (or any ``LabelStore`` file).

        ``mmap=True`` maps the file read-only instead of reading it into
        memory: the header/index are parsed once and the payload stays a
        page-cache-backed view (:meth:`LabelStore.open_mmap`), so N
        processes opening the same file share one physical copy.  Queries
        run unchanged — every kernel tier reads straight off the mapping.
        """
        store = LabelStore.open_mmap(path) if mmap else LabelStore.load(path)
        return cls.from_store(
            store,
            cache_size=cache_size,
            pair_cache_size=pair_cache_size,
        )

    @classmethod
    def from_bytes(
        cls, data, *, cache_size: int = 4096, pair_cache_size: int = 0
    ) -> "DistanceIndex":
        """Deserialise an index from :meth:`to_bytes` output."""
        return cls.from_store(
            LabelStore.from_bytes(data),
            cache_size=cache_size,
            pair_cache_size=pair_cache_size,
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | os.PathLike) -> int:
        """Write the index to ``path``; returns the number of bytes written."""
        return self._engine.store.save(path)

    def to_bytes(self) -> bytes:
        """Serialise the index (the ``LabelStore`` v1 format)."""
        return self._engine.store.to_bytes()

    # -- queries -------------------------------------------------------------

    def query(self, u: int, v: int, *, raw: bool = False):
        """The distance answer for one node pair as a :class:`QueryResult`."""
        answer = self._engine.query(u, v)
        return answer if raw else self._wrap(answer)

    def batch(self, pairs, *, raw: bool = False) -> list:
        """Answer many pairs at once (each distinct endpoint parsed once)."""
        answers = self._engine.batch_query(pairs)
        if raw:
            return answers
        wrap = self._wrap
        return [wrap(answer) for answer in answers]

    def matrix(
        self, nodes=None, *, raw: bool = False, assume_symmetric: bool = True
    ) -> list[list]:
        """All pairwise answers over ``nodes`` (default: every node).

        ``assume_symmetric`` (default on) computes only the upper triangle
        and mirrors it; every scheme in the library is symmetric.
        """
        rows = self._engine.distance_matrix(nodes, assume_symmetric=assume_symmetric)
        if raw:
            return rows
        wrap = self._wrap
        return [[wrap(answer) for answer in row] for row in rows]

    # -- introspection -------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of indexed nodes (queries accept ``0 .. n-1``)."""
        return self._engine.n

    @property
    def spec(self) -> str:
        """Canonical spec string of the scheme behind this index."""
        return scheme_spec(self._engine.scheme)

    @property
    def kind(self) -> str:
        """Answer semantics: ``"exact"``, ``"bounded"`` or ``"approximate"``."""
        return self._engine.scheme.kind

    @property
    def scheme(self) -> LabelingScheme:
        """The live scheme (advanced users; most callers never need it)."""
        return self._engine.scheme

    @property
    def store(self) -> LabelStore:
        """The packed label store backing this index (internal layer)."""
        return self._engine.store

    @property
    def engine(self) -> QueryEngine:
        """The serving engine backing this index (internal layer)."""
        return self._engine

    def describe(self) -> dict:
        """Cheap summary (``spec``, ``kind``, ``n``) — no store scans.

        This is the single-index twin of :meth:`IndexCatalog.describe`; the
        network server's INFO message is built from it.  When the hot-pair
        response cache is enabled its hit rate rides along, so a serving
        operator can read cache effectiveness from INFO/``describe`` alone.
        ``kernel`` names the :mod:`repro.kernels` tier answering this
        index's batched queries.
        """
        from repro import kernels

        row = {
            "spec": self.spec,
            "kind": self.kind,
            "n": self.n,
            "kernel": kernels.backend().tier_for(self._engine.scheme),
        }
        pair_cache = self._engine.pair_cache_info()
        if pair_cache["enabled"]:
            row["pair_cache"] = pair_cache
        return row

    def stats(self) -> dict:
        """Size and serving statistics of this index."""
        store = self._engine.store
        return {
            "spec": self.spec,
            "kind": self.kind,
            "n": store.n,
            "total_label_bits": store.total_label_bits,
            "max_label_bits": store.max_label_bits,
            "payload_bytes": store.payload_bytes,
            "file_bytes": store.file_bytes,
            "mmap": store.mmap_backed,
            "cache": self._engine.cache_info(),
            "pair_cache": self._engine.pair_cache_info(),
        }

    def __len__(self) -> int:
        return self._engine.n

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DistanceIndex(spec={self.spec!r}, n={self.n})"
