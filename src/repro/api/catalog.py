""":class:`IndexCatalog`: many named distance indexes in one file.

A forest, a sharded tree or a multi-tenant workload is many indexes that
ship and deploy together; the catalog packs them into a single artefact and
routes queries by name::

    catalog = IndexCatalog()
    catalog.add("backbone", DistanceIndex.build(tree, "freedman"))
    catalog.add("acl", DistanceIndex.build(tree, "k-distance:k=4"))
    catalog.save("forest.cat")
    ...
    catalog = IndexCatalog.load("forest.cat")
    catalog.query("backbone", 3, 42)

Binary format (version 1)
-------------------------

A varint table of contents followed by the member blobs, each a complete
:class:`repro.store.LabelStore` file image::

    magic     4 bytes   b"RLC1"
    count     uvarint   number of member indexes
    toc       count entries of
                  uvarint length + that many bytes of UTF-8 member name
                  uvarint length of the member's blob in bytes
    blobs     the members' ``LabelStore`` images, concatenated in TOC order

Because blob offsets follow from the TOC alone, :meth:`IndexCatalog.load`
reads only the TOC eagerly; each member's bytes are read and parsed the
first time that name is queried (lazy per-tree open).
"""

from __future__ import annotations

import os

from repro.api.index import DistanceIndex
from repro.encoding.varint import decode_uvarint, encode_uvarint

#: magic prefix of a serialised catalog, "Repro Label Catalog v1"
CATALOG_MAGIC = b"RLC1"

#: prefix bytes read to describe a closed member; covers the LabelStore
#: header through the node count for any realistic scheme-params JSON
_HEADER_PEEK_BYTES = 4096


def _peek_store_header(prefix) -> tuple[str, dict, int]:
    """``(scheme_name, scheme_params, n)`` from the head of a store blob.

    Raises ``CatalogError`` for a wrong magic and ``ValueError`` when the
    prefix is too short to hold the header (caller retries with more bytes).
    """
    import json

    from repro.store.label_store import STORE_MAGIC

    prefix = bytes(prefix)
    if prefix[: len(STORE_MAGIC)] != STORE_MAGIC:
        raise CatalogError(
            f"catalog member is not a label store (expected magic {STORE_MAGIC!r})"
        )
    pos = len(STORE_MAGIC)
    name_len, pos = decode_uvarint(prefix, pos)
    if pos + name_len > len(prefix):
        raise ValueError("header extends past prefix")
    scheme_name = prefix[pos : pos + name_len].decode("utf-8")
    pos += name_len
    params_len, pos = decode_uvarint(prefix, pos)
    if pos + params_len > len(prefix):
        raise ValueError("header extends past prefix")
    params = json.loads(prefix[pos : pos + params_len].decode("utf-8"))
    pos += params_len
    n, pos = decode_uvarint(prefix, pos)
    return scheme_name, params, n


class CatalogError(ValueError):
    """Raised when a catalog file is malformed or a member name is bad."""


class _LazyMember:
    """One not-yet-opened member: where its bytes live and how to get them.

    ``read()`` returns the whole blob; ``read_prefix(limit)`` returns at most
    ``limit`` leading bytes (enough for header peeks without pulling a large
    member off disk).
    """

    __slots__ = ("read", "read_prefix", "nbytes")

    def __init__(self, read, read_prefix, nbytes: int) -> None:
        self.read = read
        self.read_prefix = read_prefix
        self.nbytes = nbytes

    @classmethod
    def from_blob(cls, blob) -> "_LazyMember":
        """A lazy member backed by in-memory bytes."""
        return cls(lambda: blob, lambda limit: blob[:limit], len(blob))


class IndexCatalog:
    """An ordered, named collection of :class:`DistanceIndex` members.

    Members added through :meth:`add` are live indexes; members of a loaded
    catalog stay as unread byte ranges until first use.  Iteration and
    ``names()`` follow insertion/TOC order.
    """

    def __init__(self) -> None:
        self._members: dict[str, DistanceIndex | _LazyMember] = {}

    # -- membership ----------------------------------------------------------

    def add(self, name: str, index: DistanceIndex) -> None:
        """Register ``index`` under ``name`` (unique, non-empty)."""
        if not isinstance(name, str) or not name:
            raise CatalogError(f"member name must be a non-empty string, got {name!r}")
        if name in self._members:
            raise CatalogError(f"catalog already has a member named {name!r}")
        if not isinstance(index, DistanceIndex):
            raise CatalogError(
                f"member {name!r} must be a DistanceIndex, got {type(index).__name__}"
            )
        self._members[name] = index

    def remove(self, name: str) -> None:
        """Drop one member."""
        if name not in self._members:
            raise CatalogError(self._missing(name))
        del self._members[name]

    def names(self) -> list[str]:
        """Member names in catalog order."""
        return list(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(self._members)

    def _missing(self, name: str) -> str:
        return f"no index named {name!r} in catalog; members: {self.names()}"

    # -- member access -------------------------------------------------------

    def index(self, name: str) -> DistanceIndex:
        """The member index, opening it on first access."""
        member = self._members.get(name)
        if member is None:
            raise CatalogError(self._missing(name))
        if isinstance(member, _LazyMember):
            member = DistanceIndex.from_bytes(member.read())
            self._members[name] = member
        return member

    __getitem__ = index

    def is_open(self, name: str) -> bool:
        """Whether the member has been opened (parsed) yet."""
        member = self._members.get(name)
        if member is None:
            raise CatalogError(self._missing(name))
        return isinstance(member, DistanceIndex)

    # -- routed queries ------------------------------------------------------

    def query(self, name: str, u: int, v: int, *, raw: bool = False):
        """One query routed to the member named ``name``."""
        return self.index(name).query(u, v, raw=raw)

    def batch(self, name: str, pairs, *, raw: bool = False) -> list:
        """A batch of queries routed to one member."""
        return self.index(name).batch(pairs, raw=raw)

    def stats(self) -> dict:
        """Full per-member statistics (opens every member).

        For a cheap listing that keeps members closed use :meth:`describe`.
        """
        return {name: self.index(name).stats() for name in self._members}

    def describe(self) -> list[dict]:
        """One summary row per member **without** opening closed members.

        Closed members are described from a small prefix of their bytes
        (the ``LabelStore`` header: scheme spec and node count), so listing
        a huge forest file stays TOC-cheap.  Rows carry ``name``, ``spec``,
        ``kind``, ``n``, ``file_bytes`` and ``open``.
        """
        from repro.core.registry import SCHEME_CLASSES, format_spec

        rows = []
        for name, member in self._members.items():
            if isinstance(member, DistanceIndex):
                stats = member.stats()
                rows.append(
                    {
                        "name": name,
                        "spec": stats["spec"],
                        "kind": stats["kind"],
                        "n": stats["n"],
                        "file_bytes": stats["file_bytes"],
                        "open": True,
                    }
                )
                continue
            try:
                scheme_name, params, n = _peek_store_header(
                    member.read_prefix(_HEADER_PEEK_BYTES)
                )
            except ValueError:
                # header larger than the peek window (huge params JSON):
                # fall back to the full blob
                scheme_name, params, n = _peek_store_header(member.read())
            cls = SCHEME_CLASSES.get(scheme_name)
            rows.append(
                {
                    "name": name,
                    "spec": format_spec(scheme_name, params),
                    "kind": cls.kind if cls is not None else "?",
                    "n": n,
                    "file_bytes": member.nbytes,
                    "open": False,
                }
            )
        return rows

    # -- persistence ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise the catalog (format in the module docstring)."""
        blobs = []
        toc = [CATALOG_MAGIC, encode_uvarint(len(self._members))]
        for name, member in self._members.items():
            if isinstance(member, _LazyMember):
                blob = bytes(member.read())
                # re-anchor the member on the materialised bytes: its old
                # reader may point at file offsets that saving over the
                # source file is about to invalidate
                self._members[name] = _LazyMember.from_blob(blob)
            else:
                blob = member.to_bytes()
            encoded = name.encode("utf-8")
            toc.append(encode_uvarint(len(encoded)))
            toc.append(encoded)
            toc.append(encode_uvarint(len(blob)))
            blobs.append(blob)
        return b"".join(toc + blobs)

    def save(self, path: str | os.PathLike) -> int:
        """Write the catalog to ``path``; returns the bytes written."""
        blob = self.to_bytes()
        with open(path, "wb") as handle:
            handle.write(blob)
        return len(blob)

    @staticmethod
    def _parse_toc(header) -> tuple[list[tuple[str, int, int]], int]:
        """TOC entries as ``(name, offset, nbytes)`` plus the blob base offset."""
        if bytes(header[: len(CATALOG_MAGIC)]) != CATALOG_MAGIC:
            raise CatalogError(
                f"not an index catalog (expected magic {CATALOG_MAGIC!r})"
            )
        try:
            count, pos = decode_uvarint(header, len(CATALOG_MAGIC))
            entries: list[tuple[str, int, int]] = []
            offset = 0
            for _ in range(count):
                name_len, pos = decode_uvarint(header, pos)
                name = bytes(header[pos : pos + name_len]).decode("utf-8")
                if len(name.encode("utf-8")) != name_len:
                    raise ValueError("truncated member name")
                pos += name_len
                nbytes, pos = decode_uvarint(header, pos)
                entries.append((name, offset, nbytes))
                offset += nbytes
        except ValueError as error:
            raise CatalogError(f"corrupt catalog TOC: {error}") from error
        if len({name for name, _, _ in entries}) != len(entries):
            raise CatalogError("catalog TOC contains duplicate member names")
        return entries, pos

    @classmethod
    def from_bytes(cls, data) -> "IndexCatalog":
        """Parse a catalog image; members are opened lazily on first use.

        ``data`` may be any buffer-protocol object (``bytes``, a
        ``memoryview``, an ``mmap``); members stay zero-copy sub-views of
        it, and a member opened from a view is served without ever copying
        its payload (:meth:`LabelStore.from_bytes` wraps the slice as-is).
        """
        view = data if isinstance(data, memoryview) else memoryview(data)
        entries, base = cls._parse_toc(view)
        catalog = cls()
        for name, offset, nbytes in entries:
            start = base + offset
            if start + nbytes > len(view):
                raise CatalogError(f"member {name!r} extends past end of catalog")
            chunk = view[start : start + nbytes]
            catalog._members[name] = _LazyMember(
                lambda chunk=chunk: chunk,
                lambda limit, chunk=chunk: chunk[:limit],
                nbytes,
            )
        return catalog

    @classmethod
    def open_mmap(cls, path: str | os.PathLike) -> "IndexCatalog":
        """Open a catalog as one read-only mapping; members are sub-views.

        The container file is mapped once; every member's blob is a
        zero-copy slice of the mapping, so opening a member parses only its
        header/index while the payload stays page-cache-backed — N forked
        workers serving the same catalog share one physical copy of every
        member.
        """
        import mmap

        with open(path, "rb") as handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError) as error:
                raise CatalogError(
                    f"cannot mmap {os.fspath(path)!r}: {error}"
                ) from error
        return cls.from_bytes(memoryview(mapped))

    @classmethod
    def load(cls, path: str | os.PathLike, *, mmap: bool = False) -> "IndexCatalog":
        """Open a catalog file, reading only the TOC now.

        Each member's bytes are read from ``path`` (and parsed) the first
        time it is accessed, so opening a huge forest file is cheap.
        ``mmap=True`` maps the container once instead and serves every
        member as a zero-copy sub-view (:meth:`open_mmap`).
        """
        if mmap:
            return cls.open_mmap(path)
        with open(path, "rb") as handle:
            # the TOC is tiny (a few bytes per member); 64 KiB covers
            # thousands of members, and we retry with the full file if not
            header = handle.read(65536)
            try:
                entries, base = cls._parse_toc(header)
            except CatalogError:
                handle.seek(0)
                header = handle.read()
                entries, base = cls._parse_toc(header)
            size = os.fstat(handle.fileno()).st_size
        if entries and base + entries[-1][1] + entries[-1][2] > size:
            raise CatalogError(f"catalog file {path!r} is truncated")

        def reader(start: int, nbytes: int):
            def read_prefix(limit: int) -> bytes:
                wanted = min(limit, nbytes)
                with open(path, "rb") as handle:
                    handle.seek(start)
                    blob = handle.read(wanted)
                if len(blob) != wanted:
                    raise CatalogError(f"catalog file {path!r} is truncated")
                return blob

            return (lambda: read_prefix(nbytes)), read_prefix

        catalog = cls()
        for name, offset, nbytes in entries:
            read, read_prefix = reader(base + offset, nbytes)
            catalog._members[name] = _LazyMember(read, read_prefix, nbytes)
        return catalog

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"IndexCatalog(members={self.names()})"
