"""Typed query results: one shape for exact, bounded and approximate answers.

The raw ``scheme.query`` return value is family-specific — an exact distance,
a distance-or-``None`` cutoff answer, or a (1+eps)-approximation — which
forces callers into ``int | None | float`` guesswork.  :class:`QueryResult`
carries the value together with its semantics so call sites can branch on
flags instead of types:

* ``is_exact`` — the value is the true tree distance;
* ``within_bound`` — the scheme could answer at all (only ever ``False``
  for a k-distance scheme when the distance exceeds ``k``);
* ``ratio_bound`` — the guaranteed multiplicative bound: ``value`` lies in
  ``[d, ratio_bound * d]`` (``1.0`` when exact, ``None`` when unanswered).

:func:`result_wrapper` builds the per-family constructor once so the hot
query path pays one closure call per wrapped answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True, slots=True)
class QueryResult:
    """One distance answer plus the guarantees that come with it."""

    #: the answer: an exact or approximate distance, or ``None`` when a
    #: bounded scheme only knows "further than k"
    value: int | float | None
    #: whether ``value`` is the true tree distance
    is_exact: bool
    #: whether the scheme produced an answer (``False`` only for bounded
    #: schemes when the distance exceeds their cutoff ``k``)
    within_bound: bool
    #: multiplicative guarantee: ``value <= ratio_bound * d(u, v)``;
    #: ``1.0`` for exact answers, ``1 + eps`` for approximate ones,
    #: ``None`` when there is no answer
    ratio_bound: float | None

    def __bool__(self) -> bool:
        """Truthy iff the scheme produced an answer."""
        return self.within_bound

    def __repr__(self) -> str:
        if not self.within_bound:
            return "QueryResult(beyond bound)"
        tag = "exact" if self.is_exact else f"<= {self.ratio_bound}x"
        return f"QueryResult({self.value}, {tag})"


def result_wrapper(scheme) -> Callable[[object], QueryResult]:
    """The raw-answer -> :class:`QueryResult` converter for one scheme.

    Resolved once per index from ``scheme.kind`` so per-query wrapping is a
    single call with no dispatch.
    """
    kind = scheme.kind
    if kind == "exact":
        return lambda value: QueryResult(value, True, True, 1.0)
    if kind == "bounded":
        beyond = QueryResult(None, False, False, None)
        return lambda value: (
            beyond if value is None else QueryResult(value, True, True, 1.0)
        )
    if kind == "approximate":
        ratio = 1.0 + scheme.epsilon
        return lambda value: QueryResult(value, False, True, ratio)
    raise ValueError(f"unknown scheme kind {kind!r}")
