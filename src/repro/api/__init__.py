"""``repro.api`` — the canonical public API of the reproduction.

Everything a user of the library needs lives behind four names:

:class:`DistanceIndex`
    one handle per encoded tree: ``build(tree, scheme="freedman")``,
    ``open(path)``, ``save(path)``, ``query(u, v)``, ``batch(pairs)``,
    ``matrix(nodes)``, ``stats()``.  No labels, bit strings or scheme
    classes at the call site.

:class:`QueryResult`
    the typed answer every query returns — ``value`` plus ``is_exact``,
    ``within_bound`` and ``ratio_bound`` — so exact, k-distance and
    (1+eps)-approximate schemes share one result shape.  Hot paths pass
    ``raw=True`` to skip the wrapper.

:class:`IndexCatalog`
    many named indexes in one file with lazy per-member open:
    ``add(name, index)``, ``query(name, u, v)``, ``save``/``load``.

string scheme specs
    schemes are chosen by strings such as ``"freedman"``,
    ``"k-distance:k=4"`` or ``"approximate:epsilon=0.1"``;
    :func:`parse_spec` / :func:`format_spec` round-trip them and
    :data:`available_specs` lists every registered name.

The internal layers (:mod:`repro.core` schemes, :mod:`repro.store`) remain
importable for measurement and research code but are not part of this
surface; ``tests/test_public_api.py`` pins ``__all__`` exactly so changes
here are always deliberate.
"""

from __future__ import annotations

from repro.api.catalog import CATALOG_MAGIC, CatalogError, IndexCatalog
from repro.api.index import DistanceIndex
from repro.api.result import QueryResult
from repro.core.registry import (
    ALL_SCHEME_NAMES,
    SpecError,
    format_spec,
    make_scheme_from_spec,
    parse_spec,
    scheme_spec,
)


def available_specs() -> tuple[str, ...]:
    """Every registered scheme name, usable as (the start of) a spec string."""
    return ALL_SCHEME_NAMES


__all__ = [
    "DistanceIndex",
    "IndexCatalog",
    "QueryResult",
    "CatalogError",
    "SpecError",
    "parse_spec",
    "format_spec",
    "scheme_spec",
    "make_scheme_from_spec",
    "available_specs",
    "CATALOG_MAGIC",
]
