"""The always-available floor tier: the packed-Python paths themselves.

This backend accelerates nothing — every fused entry point returns ``None``
so callers use the existing word-level Python code — but it carries the
reference implementation of the parse checksum the differential suites and
the kernel benchmark compare the other tiers against.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 1469598103934665603
_FNV_PRIME = 1099511628211


def _kind(scheme) -> str | None:
    from repro.core.freedman import FreedmanScheme
    from repro.core.hld import HLDScheme

    if type(scheme) is HLDScheme:
        return "hld"
    if type(scheme) is FreedmanScheme:
        return "freedman"
    return None


def fold_checksum(scheme, labels) -> int | None:
    """FNV-1a-style fold over every decoded field of ``labels`` (in order).

    The C kernels compute the identical fold over their own decode
    (``repro_hld_checksum`` / ``repro_freedman_checksum``), so an equal
    checksum certifies field-for-field agreement between the decoders.
    Returns ``None`` for scheme families without a native decoder.
    """
    kind = _kind(scheme)
    if kind is None:
        return None
    h = _FNV_OFFSET
    if kind == "hld":
        for label in labels:
            h = ((h ^ label.root_distance) * _FNV_PRIME) & _MASK64
            h = ((h ^ label._count) * _FNV_PRIME) & _MASK64
            for path_id, exit_distance in zip(label.path_ids, label.exits):
                h = ((h ^ path_id) * _FNV_PRIME) & _MASK64
                h = ((h ^ exit_distance) * _FNV_PRIME) & _MASK64
        return h
    for label in labels:
        h = ((h ^ label.node_id) * _FNV_PRIME) & _MASK64
        h = ((h ^ label.root_distance) * _FNV_PRIME) & _MASK64
        h = ((h ^ label.domination) * _FNV_PRIME) & _MASK64
        h = ((h ^ label.light_depth) * _FNV_PRIME) & _MASK64
        for level in range(label.light_depth):
            h = ((h ^ len(label.codewords[level])) * _FNV_PRIME) & _MASK64
            h = ((h ^ label.codewords[level].to_int()) * _FNV_PRIME) & _MASK64
            h = ((h ^ label.light_weights[level]) * _FNV_PRIME) & _MASK64
            h = ((h ^ int(label.entry_skip[level])) * _FNV_PRIME) & _MASK64
            h = ((h ^ len(label.entry_kept[level])) * _FNV_PRIME) & _MASK64
            h = ((h ^ label.entry_kept[level].to_int()) * _FNV_PRIME) & _MASK64
            h = ((h ^ label.entry_pushed[level]) * _FNV_PRIME) & _MASK64
        for value in label.fragment_refs:
            h = ((h ^ value) * _FNV_PRIME) & _MASK64
        for value in label.fragment_distances:
            h = ((h ^ value) * _FNV_PRIME) & _MASK64
        for level in range(label.light_depth):
            accumulator = label.accumulators[level]
            h = ((h ^ len(accumulator)) * _FNV_PRIME) & _MASK64
            h = ((h ^ (accumulator.to_int() & _MASK64)) * _FNV_PRIME) & _MASK64
    return h


class PythonBackend:
    """The packed-Python floor: fused entry points decline, callers fall back."""

    name = "python"
    #: effectively infinite — the engine never routes through this backend
    min_batch = 1 << 62

    def tier_for(self, scheme, op: str = "batch_query") -> str:
        return "python"

    def batch_query(self, store, scheme, pairs, parsed=None):
        return None

    def matrix_flat(self, store, scheme, targets, labels=None):
        return None

    def varint_many(self, data, start, count):
        return None

    def parse_checksum(self, store, scheme, nodes):
        """The reference checksum, from the packed-Python ``parse_many``."""
        if not nodes:
            return None
        labels = scheme.parse_many(store, list(dict.fromkeys(nodes)))
        return fold_checksum(scheme, [labels[node] for node in nodes])
