/* Native decode/distance kernels for the repro label store.
 *
 * Compiled into a tiny shared library (no Python.h — loaded through cffi's
 * ABI mode, dlopen-style) and called with raw pointers into
 * ``LabelStore.buffers()``: the payload byte buffer, the byte-offset index
 * and the bit-length index.  Every routine returns 0 on success and 1 when
 * it meets anything it is not prepared to handle — unknown widths, corrupt
 * streams, values near the 64-bit limit.  The Python caller treats a
 * nonzero return as "fall back to the packed-Python path", which reproduces
 * the exact reference behaviour (including the exception raised for
 * genuinely corrupt labels).  The C side therefore never needs to be
 * bug-for-bug complete: it only needs to be *silent* about what it skips
 * and byte-identical on what it accepts.
 *
 * Bit layout contract (matching repro.encoding.bitio): MSB-first within the
 * packed stream; label i starts at bit offset offs[i] * 8 and is lens[i]
 * bits long.  Codes: unary 0^k 1; Elias gamma = unary(zeros) + zeros bits,
 * value ((1 << zeros) | rest) - 1; Elias delta = gamma(width - 1) + width-1
 * bits; Lemma 2.2 monotone = gamma(count), gamma(low_width), count packed
 * low parts, count unary-coded high-part differences.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define E_OK 0
#define E_FALLBACK 1

/* Arbitrary sanity ceilings: anything above falls back to Python (which
 * handles unbounded integers).  Chosen so every intermediate fits int64
 * with room to spare. */
#define MAX_COUNT (1u << 20)
#define MAX_VALUE_BITS 56

#define ABI_VERSION 3

int repro_kernels_abi(void) { return ABI_VERSION; }

/* -- bit reader ---------------------------------------------------------- */

typedef struct {
    const uint8_t *base;
    uint64_t pos;
    uint64_t end;
} br_t;

static inline int br_read(br_t *r, uint32_t width, uint64_t *out) {
    uint64_t pos = r->pos;
    uint64_t result = 0;
    uint32_t got = 0;
    if (width > 63 || pos + width > r->end) return E_FALLBACK;
    while (got < width) {
        uint64_t byte_i = pos >> 3;
        uint32_t bit_i = (uint32_t)(pos & 7);
        uint32_t avail = 8 - bit_i;
        uint32_t want = width - got;
        uint32_t take = want < avail ? want : avail;
        uint32_t chunk =
            (uint32_t)(r->base[byte_i] >> (avail - take)) & ((1u << take) - 1u);
        result = (result << take) | chunk;
        pos += take;
        got += take;
    }
    r->pos = pos;
    *out = result;
    return E_OK;
}

static inline int br_unary(br_t *r, uint64_t *zeros) {
    uint64_t pos = r->pos;
    uint64_t count = 0;
    while (pos < r->end) {
        uint32_t bit = (r->base[pos >> 3] >> (7 - (pos & 7))) & 1u;
        pos++;
        if (bit) {
            r->pos = pos;
            *zeros = count;
            return E_OK;
        }
        count++;
    }
    return E_FALLBACK;
}

static inline int br_gamma(br_t *r, uint64_t *out) {
    uint64_t zeros, rest = 0;
    if (br_unary(r, &zeros)) return E_FALLBACK;
    if (zeros > 62) return E_FALLBACK;
    if (zeros && br_read(r, (uint32_t)zeros, &rest)) return E_FALLBACK;
    *out = ((1ull << zeros) | rest) - 1;
    return E_OK;
}

static inline int br_delta(br_t *r, uint64_t *out) {
    uint64_t w, rest;
    if (br_gamma(r, &w)) return E_FALLBACK;
    if (w > 62) return E_FALLBACK;
    if (w == 0) {
        *out = 0;
        return E_OK;
    }
    if (br_read(r, (uint32_t)w, &rest)) return E_FALLBACK;
    *out = ((1ull << w) | rest) - 1;
    return E_OK;
}

/* -- growable uint64 vector ---------------------------------------------- */

typedef struct {
    uint64_t *data;
    size_t len;
    size_t cap;
} vec_t;

static int vec_reserve(vec_t *v, size_t extra) {
    size_t need = v->len + extra;
    size_t cap;
    uint64_t *grown;
    if (need <= v->cap) return E_OK;
    cap = v->cap ? v->cap : 256;
    while (cap < need) cap *= 2;
    grown = (uint64_t *)realloc(v->data, cap * sizeof(uint64_t));
    if (!grown) return E_FALLBACK;
    v->data = grown;
    v->cap = cap;
    return E_OK;
}

static void vec_free(vec_t *v) {
    free(v->data);
    v->data = NULL;
    v->len = v->cap = 0;
}

/* Lemma 2.2 monotone sequence: append the decoded values to ``out``. */
static int br_monotone(br_t *r, vec_t *out, uint32_t *count_out) {
    uint64_t count, low_width, high = 0;
    size_t base;
    uint64_t i;
    if (br_gamma(r, &count)) return E_FALLBACK;
    if (count > MAX_COUNT) return E_FALLBACK;
    *count_out = (uint32_t)count;
    if (count == 0) return E_OK;
    if (br_gamma(r, &low_width)) return E_FALLBACK;
    if (low_width > 62) return E_FALLBACK;
    base = out->len;
    if (vec_reserve(out, (size_t)count)) return E_FALLBACK;
    out->len += (size_t)count;
    for (i = 0; i < count; i++) {
        uint64_t low = 0;
        if (low_width && br_read(r, (uint32_t)low_width, &low)) return E_FALLBACK;
        out->data[base + i] = low;
    }
    for (i = 0; i < count; i++) {
        uint64_t zeros;
        if (br_unary(r, &zeros)) return E_FALLBACK;
        high += zeros;
        if (high >> (63 - low_width)) return E_FALLBACK;
        out->data[base + i] |= high << low_width;
    }
    return E_OK;
}

/* -- generic bulk primitives --------------------------------------------- */

/* ``count`` LEB128 varints starting at byte ``start``; mirrors
 * repro.encoding.varint.decode_uvarint including its 64-bit-shift cap. */
int repro_varint_many(const uint8_t *buf, uint64_t buf_len, uint64_t start,
                      uint64_t count, uint64_t *out, uint64_t *end_pos) {
    uint64_t pos = start;
    uint64_t i;
    for (i = 0; i < count; i++) {
        uint64_t value = 0;
        uint32_t shift = 0;
        for (;;) {
            uint8_t byte;
            if (pos >= buf_len) return E_FALLBACK;
            byte = buf[pos++];
            if (shift == 63 && (byte & 0x7Eu)) return E_FALLBACK;
            value |= ((uint64_t)(byte & 0x7Fu)) << shift;
            if (!(byte & 0x80u)) break;
            shift += 7;
            if (shift > 63) return E_FALLBACK;
        }
        out[i] = value;
    }
    *end_pos = pos;
    return E_OK;
}

/* ``count`` Elias gamma codes starting at bit ``bit_start``. */
int repro_gamma_many(const uint8_t *buf, uint64_t bit_start, uint64_t bit_end,
                     uint64_t count, uint64_t *out, uint64_t *end_bit) {
    br_t r = {buf, bit_start, bit_end};
    uint64_t i;
    for (i = 0; i < count; i++) {
        if (br_gamma(&r, &out[i])) return E_FALLBACK;
    }
    *end_bit = r.pos;
    return E_OK;
}

/* ``count`` unary codes starting at bit ``bit_start``. */
int repro_unary_many(const uint8_t *buf, uint64_t bit_start, uint64_t bit_end,
                     uint64_t count, uint64_t *out, uint64_t *end_bit) {
    br_t r = {buf, bit_start, bit_end};
    uint64_t i;
    for (i = 0; i < count; i++) {
        if (br_unary(&r, &out[i])) return E_FALLBACK;
    }
    *end_bit = r.pos;
    return E_OK;
}

/* -- hld-fixed ------------------------------------------------------------ */

typedef struct {
    uint64_t root_distance;
    uint32_t count;
    size_t level_start; /* base index into the shared ids/exits vectors */
} hld_label_t;

typedef struct {
    hld_label_t *labels;
    vec_t ids;
    vec_t exits;
    uint32_t id_width;
    uint32_t distance_width;
} hld_arena_t;

static void hld_arena_free(hld_arena_t *a) {
    free(a->labels);
    vec_free(&a->ids);
    vec_free(&a->exits);
}

/* Decode the labels of ``nodes`` (slot order) into the arena.  All labels
 * must share one (id_width, distance_width) header — a per-store invariant
 * of the encoder; anything else falls back. */
static int hld_decode_all(const uint8_t *payload, const uint64_t *offs,
                          const uint64_t *lens, int64_t n_total,
                          const int32_t *nodes, int64_t n_nodes,
                          hld_arena_t *a) {
    int64_t s;
    memset(a, 0, sizeof(*a));
    a->labels = (hld_label_t *)malloc((size_t)n_nodes * sizeof(hld_label_t));
    if (!a->labels) return E_FALLBACK;
    for (s = 0; s < n_nodes; s++) {
        int32_t node = nodes[s];
        br_t r;
        uint64_t idw, dw, count, rd;
        uint32_t level;
        hld_label_t *lab = &a->labels[s];
        if (node < 0 || node >= n_total) goto fail;
        r.base = payload;
        r.pos = offs[node] * 8;
        r.end = r.pos + lens[node];
        if (br_gamma(&r, &idw) || br_gamma(&r, &dw) || br_gamma(&r, &count))
            goto fail;
        if (idw == 0 || idw > MAX_VALUE_BITS || dw == 0 || dw > MAX_VALUE_BITS ||
            count > MAX_COUNT)
            goto fail;
        if (s == 0) {
            a->id_width = (uint32_t)idw;
            a->distance_width = (uint32_t)dw;
        } else if (a->id_width != (uint32_t)idw ||
                   a->distance_width != (uint32_t)dw) {
            goto fail;
        }
        if (br_read(&r, (uint32_t)dw, &rd)) goto fail;
        lab->root_distance = rd;
        lab->count = (uint32_t)count;
        lab->level_start = a->ids.len;
        if (vec_reserve(&a->ids, (size_t)count) ||
            vec_reserve(&a->exits, (size_t)count))
            goto fail;
        for (level = 0; level < (uint32_t)count; level++) {
            uint64_t path_id, exit_distance;
            if (br_read(&r, (uint32_t)idw, &path_id) ||
                br_read(&r, (uint32_t)dw, &exit_distance))
                goto fail;
            a->ids.data[a->ids.len++] = path_id;
            a->exits.data[a->exits.len++] = exit_distance;
        }
    }
    return E_OK;
fail:
    hld_arena_free(a);
    return E_FALLBACK;
}

/* Deepest-common-heavy-path distance; err set on foreign-tree pairs. */
static inline int64_t hld_dist(const hld_arena_t *a, int64_t u, int64_t v,
                               int *err) {
    const hld_label_t *lu = &a->labels[u], *lv = &a->labels[v];
    const uint64_t *iu = a->ids.data + lu->level_start;
    const uint64_t *iv = a->ids.data + lv->level_start;
    uint32_t n = lu->count < lv->count ? lu->count : lv->count;
    uint32_t t = 0;
    uint64_t eu, ev, nca;
    while (t < n && iu[t] == iv[t]) t++;
    if (t == 0) {
        *err = 1;
        return 0;
    }
    eu = a->exits.data[lu->level_start + t - 1];
    ev = a->exits.data[lv->level_start + t - 1];
    nca = eu < ev ? eu : ev;
    return (int64_t)(lu->root_distance + lv->root_distance) - 2 * (int64_t)nca;
}

int repro_hld_batch(const uint8_t *payload, const uint64_t *offs,
                    const uint64_t *lens, int64_t n_total, const int32_t *nodes,
                    int64_t n_nodes, const int32_t *ui, const int32_t *vi,
                    int64_t n_pairs, int64_t *out) {
    hld_arena_t a;
    int64_t p;
    int err = 0;
    if (n_nodes <= 0) return E_FALLBACK;
    if (hld_decode_all(payload, offs, lens, n_total, nodes, n_nodes, &a))
        return E_FALLBACK;
    for (p = 0; p < n_pairs; p++) {
        int32_t u = ui[p], v = vi[p];
        if (u < 0 || u >= n_nodes || v < 0 || v >= n_nodes) {
            err = 1;
            break;
        }
        out[p] = hld_dist(&a, u, v, &err);
        if (err) break;
    }
    hld_arena_free(&a);
    return err ? E_FALLBACK : E_OK;
}

int repro_hld_matrix(const uint8_t *payload, const uint64_t *offs,
                     const uint64_t *lens, int64_t n_total,
                     const int32_t *nodes, int64_t n_nodes, int64_t *out) {
    hld_arena_t a;
    int64_t i, j;
    int err = 0;
    if (n_nodes <= 0) return E_FALLBACK;
    if (hld_decode_all(payload, offs, lens, n_total, nodes, n_nodes, &a))
        return E_FALLBACK;
    for (i = 0; i < n_nodes && !err; i++) {
        out[i * n_nodes + i] = hld_dist(&a, i, i, &err);
        for (j = i + 1; j < n_nodes && !err; j++) {
            int64_t d = hld_dist(&a, i, j, &err);
            out[i * n_nodes + j] = d;
            out[j * n_nodes + i] = d;
        }
    }
    hld_arena_free(&a);
    return err ? E_FALLBACK : E_OK;
}

/* FNV-1a-style fold over the decoded fields, in node order — the Python
 * tiers compute the identical fold over parse_many labels, so equal
 * checksums certify the decoders agree on every field of every label. */
int repro_hld_checksum(const uint8_t *payload, const uint64_t *offs,
                       const uint64_t *lens, int64_t n_total,
                       const int32_t *nodes, int64_t n_nodes, uint64_t *out) {
    hld_arena_t a;
    uint64_t h = 1469598103934665603ull;
    const uint64_t prime = 1099511628211ull;
    int64_t s;
    uint32_t level;
    if (n_nodes <= 0) return E_FALLBACK;
    if (hld_decode_all(payload, offs, lens, n_total, nodes, n_nodes, &a))
        return E_FALLBACK;
    for (s = 0; s < n_nodes; s++) {
        const hld_label_t *lab = &a.labels[s];
        h = (h ^ lab->root_distance) * prime;
        h = (h ^ lab->count) * prime;
        for (level = 0; level < lab->count; level++) {
            h = (h ^ a.ids.data[lab->level_start + level]) * prime;
            h = (h ^ a.exits.data[lab->level_start + level]) * prime;
        }
    }
    hld_arena_free(&a);
    *out = h;
    return E_OK;
}

/* -- freedman ------------------------------------------------------------- */

typedef struct {
    uint64_t node_id;
    uint64_t root_distance;
    uint64_t domination;
    uint32_t depth;
    size_t level_start;     /* base into the per-level vectors */
    size_t frag_ref_start;  /* base into frag_refs */
    uint32_t frag_ref_count;
    size_t frag_dist_start; /* base into frag_dists */
    uint32_t frag_dist_count;
} fr_label_t;

typedef struct {
    fr_label_t *labels;
    vec_t cw_val;    /* per level: codeword bits as an integer */
    vec_t cw_len;    /* per level: codeword length */
    vec_t lw;        /* per level: light weight */
    vec_t skip;      /* per level: entry skipped flag */
    vec_t kept_val;  /* per level: truncated entry bits */
    vec_t kept_len;  /* per level: truncated entry length */
    vec_t pushed;    /* per level: bits pushed to the accumulator */
    vec_t acc_off;   /* per level: absolute bit offset of the accumulator */
    vec_t acc_len;   /* per level: accumulator length */
    vec_t frag_refs;
    vec_t frag_dists;
} fr_arena_t;

static void fr_arena_free(fr_arena_t *a) {
    free(a->labels);
    vec_free(&a->cw_val);
    vec_free(&a->cw_len);
    vec_free(&a->lw);
    vec_free(&a->skip);
    vec_free(&a->kept_val);
    vec_free(&a->kept_len);
    vec_free(&a->pushed);
    vec_free(&a->acc_off);
    vec_free(&a->acc_len);
    vec_free(&a->frag_refs);
    vec_free(&a->frag_dists);
}

static int fr_decode_all(const uint8_t *payload, const uint64_t *offs,
                         const uint64_t *lens, int64_t n_total,
                         const int32_t *nodes, int64_t n_nodes,
                         fr_arena_t *a) {
    int64_t s;
    memset(a, 0, sizeof(*a));
    a->labels = (fr_label_t *)malloc((size_t)n_nodes * sizeof(fr_label_t));
    if (!a->labels) return E_FALLBACK;
    for (s = 0; s < n_nodes; s++) {
        int32_t node = nodes[s];
        br_t r;
        uint64_t depth, value;
        uint32_t level, count;
        fr_label_t *lab = &a->labels[s];
        if (node < 0 || node >= n_total) goto fail;
        r.base = payload;
        r.pos = offs[node] * 8;
        r.end = r.pos + lens[node];
        if (br_delta(&r, &lab->node_id)) goto fail;
        if (br_delta(&r, &lab->root_distance)) goto fail;
        if (br_delta(&r, &lab->domination)) goto fail;
        if (lab->root_distance >> MAX_VALUE_BITS) goto fail;
        if (br_gamma(&r, &depth)) goto fail;
        if (depth > MAX_COUNT) goto fail;
        lab->depth = (uint32_t)depth;
        lab->level_start = a->cw_val.len;
        if (vec_reserve(&a->cw_val, (size_t)depth) ||
            vec_reserve(&a->cw_len, (size_t)depth) ||
            vec_reserve(&a->lw, (size_t)depth) ||
            vec_reserve(&a->skip, (size_t)depth) ||
            vec_reserve(&a->kept_val, (size_t)depth) ||
            vec_reserve(&a->kept_len, (size_t)depth) ||
            vec_reserve(&a->pushed, (size_t)depth) ||
            vec_reserve(&a->acc_off, (size_t)depth) ||
            vec_reserve(&a->acc_len, (size_t)depth))
            goto fail;
        for (level = 0; level < (uint32_t)depth; level++) {
            uint64_t len;
            if (br_gamma(&r, &len) || len > 63) goto fail;
            if (br_read(&r, (uint32_t)len, &value)) goto fail;
            a->cw_len.data[a->cw_len.len++] = len;
            a->cw_val.data[a->cw_val.len++] = value;
        }
        for (level = 0; level < (uint32_t)depth; level++) {
            if (br_gamma(&r, &value) || value >> MAX_VALUE_BITS) goto fail;
            a->lw.data[a->lw.len++] = value;
        }
        lab->frag_ref_start = a->frag_refs.len;
        if (br_monotone(&r, &a->frag_refs, &count)) goto fail;
        lab->frag_ref_count = count;
        lab->frag_dist_start = a->frag_dists.len;
        if (br_monotone(&r, &a->frag_dists, &count)) goto fail;
        lab->frag_dist_count = count;
        for (level = 0; level < (uint32_t)depth; level++) {
            uint64_t bit;
            br_t *rp = &r;
            if (rp->pos >= rp->end) goto fail;
            bit = (rp->base[rp->pos >> 3] >> (7 - (rp->pos & 7))) & 1u;
            rp->pos++;
            a->skip.data[a->skip.len++] = bit;
            if (bit) {
                a->kept_val.data[a->kept_val.len++] = 0;
                a->kept_len.data[a->kept_len.len++] = 0;
                a->pushed.data[a->pushed.len++] = 0;
            } else {
                uint64_t len, pushed;
                if (br_gamma(&r, &len) || len > MAX_VALUE_BITS) goto fail;
                if (br_read(&r, (uint32_t)len, &value)) goto fail;
                if (br_gamma(&r, &pushed) || pushed > MAX_VALUE_BITS) goto fail;
                if (len + pushed > MAX_VALUE_BITS) goto fail;
                a->kept_len.data[a->kept_len.len++] = len;
                a->kept_val.data[a->kept_val.len++] = value;
                a->pushed.data[a->pushed.len++] = pushed;
            }
        }
        for (level = 0; level < (uint32_t)depth; level++) {
            uint64_t len;
            if (br_gamma(&r, &len)) goto fail;
            if (r.pos + len > r.end) goto fail;
            a->acc_off.data[a->acc_off.len++] = r.pos;
            a->acc_len.data[a->acc_len.len++] = len;
            r.pos += len;
        }
    }
    return E_OK;
fail:
    fr_arena_free(a);
    return E_FALLBACK;
}

/* Lemma 3.1 query: critical level from the light codes, dominating side
 * from the postorder domination numbers, entry reconstructed from the
 * dominating side's truncated bits plus the dominated side's accumulator. */
static inline int64_t fr_dist(const fr_arena_t *a, const uint8_t *payload,
                              int64_t u, int64_t v, int *err) {
    const fr_label_t *lu = &a->labels[u], *lv = &a->labels[v];
    const fr_label_t *dom, *sub;
    size_t du, dv, dd, ds;
    uint32_t n, level;
    uint64_t value, pushed, ref, reference;
    int64_t nca;
    if (lu->node_id == lv->node_id) return 0;
    n = lu->depth < lv->depth ? lu->depth : lv->depth;
    du = lu->level_start;
    dv = lv->level_start;
    level = 0;
    while (level < n && a->cw_len.data[du + level] == a->cw_len.data[dv + level] &&
           a->cw_val.data[du + level] == a->cw_val.data[dv + level])
        level++;
    if (lu->domination < lv->domination) {
        dom = lu;
        sub = lv;
    } else {
        dom = lv;
        sub = lu;
    }
    if (level >= dom->depth || level >= sub->depth) goto bad;
    dd = dom->level_start;
    ds = sub->level_start;
    if (a->skip.data[dd + level]) goto bad;
    value = a->kept_val.data[dd + level];
    pushed = a->pushed.data[dd + level];
    if (pushed) {
        uint64_t start = a->acc_len.data[dd + level];
        uint64_t sub_len = a->acc_len.data[ds + level];
        uint64_t segment;
        br_t r;
        if (start + pushed > sub_len) goto bad;
        if (a->kept_len.data[dd + level] + pushed > MAX_VALUE_BITS) goto bad;
        r.base = payload;
        r.pos = a->acc_off.data[ds + level] + start;
        r.end = a->acc_off.data[ds + level] + sub_len;
        if (br_read(&r, (uint32_t)pushed, &segment)) goto bad;
        value = (value << pushed) | segment;
    }
    ref = a->frag_refs.data[dd + level];
    if (ref >= dom->frag_dist_count) goto bad;
    reference = a->frag_dists.data[dom->frag_dist_start + ref];
    if (reference >> MAX_VALUE_BITS) goto bad;
    nca = (int64_t)(reference + value) - (int64_t)a->lw.data[dd + level];
    return (int64_t)(lu->root_distance + lv->root_distance) - 2 * nca;
bad:
    *err = 1;
    return 0;
}

int repro_freedman_batch(const uint8_t *payload, const uint64_t *offs,
                         const uint64_t *lens, int64_t n_total,
                         const int32_t *nodes, int64_t n_nodes,
                         const int32_t *ui, const int32_t *vi, int64_t n_pairs,
                         int64_t *out) {
    fr_arena_t a;
    int64_t p;
    int err = 0;
    if (n_nodes <= 0) return E_FALLBACK;
    if (fr_decode_all(payload, offs, lens, n_total, nodes, n_nodes, &a))
        return E_FALLBACK;
    for (p = 0; p < n_pairs; p++) {
        int32_t u = ui[p], v = vi[p];
        if (u < 0 || u >= n_nodes || v < 0 || v >= n_nodes) {
            err = 1;
            break;
        }
        out[p] = fr_dist(&a, payload, u, v, &err);
        if (err) break;
    }
    fr_arena_free(&a);
    return err ? E_FALLBACK : E_OK;
}

int repro_freedman_matrix(const uint8_t *payload, const uint64_t *offs,
                          const uint64_t *lens, int64_t n_total,
                          const int32_t *nodes, int64_t n_nodes, int64_t *out) {
    fr_arena_t a;
    int64_t i, j;
    int err = 0;
    if (n_nodes <= 0) return E_FALLBACK;
    if (fr_decode_all(payload, offs, lens, n_total, nodes, n_nodes, &a))
        return E_FALLBACK;
    for (i = 0; i < n_nodes && !err; i++) {
        out[i * n_nodes + i] = fr_dist(&a, payload, i, i, &err);
        for (j = i + 1; j < n_nodes && !err; j++) {
            int64_t d = fr_dist(&a, payload, i, j, &err);
            out[i * n_nodes + j] = d;
            out[j * n_nodes + i] = d;
        }
    }
    fr_arena_free(&a);
    return err ? E_FALLBACK : E_OK;
}

/* Same field fold as repro_hld_checksum, over the Freedman grammar.  The
 * accumulators are folded as (length, low 64 value bits) — the only fields
 * a >64-bit value can reach. */
int repro_freedman_checksum(const uint8_t *payload, const uint64_t *offs,
                            const uint64_t *lens, int64_t n_total,
                            const int32_t *nodes, int64_t n_nodes,
                            uint64_t *out) {
    fr_arena_t a;
    uint64_t h = 1469598103934665603ull;
    const uint64_t prime = 1099511628211ull;
    int64_t s;
    uint32_t i;
    if (n_nodes <= 0) return E_FALLBACK;
    if (fr_decode_all(payload, offs, lens, n_total, nodes, n_nodes, &a))
        return E_FALLBACK;
    for (s = 0; s < n_nodes; s++) {
        const fr_label_t *lab = &a.labels[s];
        size_t base = lab->level_start;
        h = (h ^ lab->node_id) * prime;
        h = (h ^ lab->root_distance) * prime;
        h = (h ^ lab->domination) * prime;
        h = (h ^ lab->depth) * prime;
        for (i = 0; i < lab->depth; i++) {
            h = (h ^ a.cw_len.data[base + i]) * prime;
            h = (h ^ a.cw_val.data[base + i]) * prime;
            h = (h ^ a.lw.data[base + i]) * prime;
            h = (h ^ a.skip.data[base + i]) * prime;
            h = (h ^ a.kept_len.data[base + i]) * prime;
            h = (h ^ a.kept_val.data[base + i]) * prime;
            h = (h ^ a.pushed.data[base + i]) * prime;
        }
        for (i = 0; i < lab->frag_ref_count; i++)
            h = (h ^ a.frag_refs.data[lab->frag_ref_start + i]) * prime;
        for (i = 0; i < lab->frag_dist_count; i++)
            h = (h ^ a.frag_dists.data[lab->frag_dist_start + i]) * prime;
        for (i = 0; i < lab->depth; i++) {
            uint64_t len = a.acc_len.data[base + i];
            uint64_t low = 0;
            br_t r;
            r.base = payload;
            r.end = a.acc_off.data[base + i] + len;
            if (len > 63) {
                r.pos = r.end - 64;
                /* low 64 bits = last 64 bits of the accumulator stream */
                {
                    uint64_t hi, lo;
                    r.pos = r.end - 64;
                    if (br_read(&r, 32, &hi) || br_read(&r, 32, &lo)) {
                        fr_arena_free(&a);
                        return E_FALLBACK;
                    }
                    low = (hi << 32) | lo;
                }
            } else if (len) {
                r.pos = r.end - len;
                if (br_read(&r, (uint32_t)len, &low)) {
                    fr_arena_free(&a);
                    return E_FALLBACK;
                }
            }
            h = (h ^ len) * prime;
            h = (h ^ low) * prime;
        }
    }
    fr_arena_free(&a);
    *out = h;
    return E_OK;
}
