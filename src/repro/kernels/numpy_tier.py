"""The numpy middle tier: vectorised hld-fixed batch/matrix distance.

hld-fixed is the one scheme whose decoded labels are fixed-width arrays
(per-level path ids and exit distances), so its query loop vectorises
cleanly: pad every label's id row to a rectangle with a per-slot sentinel,
find the first mismatching level with one ``argmax`` over the comparison
mask, gather the exits at the level below it and finish with the
``rd(u) + rd(v) - 2 min(exit)`` formula — all without per-pair Python.

Parsing still happens in packed Python (there is nothing fixed-width about
the serialised form), so this tier accelerates the O(pairs) / O(n²) part
only; the native tier accelerates both.  Like every kernel backend, any
input outside the supported envelope (mixed widths, very wide fields,
foreign-tree pairs) returns ``None`` and the caller falls back.
"""

from __future__ import annotations

import numpy as np

from repro.core.hld import HLDScheme
from repro.kernels.python_tier import fold_checksum

#: widest field the int64 tableau handles without overflow risk
_MAX_WIDTH = 48
#: per-slot id padding: above any real path id, distinct per slot so two
#: different slots always mismatch by the end of the shorter real row
_PAD_BASE = 1 << 50
#: matrix rows vectorised per block (bounds the (rows, m, levels) mask)
_ROW_BLOCK = 64


class NumpyBackend:
    """Vectorised hld-fixed queries over labels parsed by the Python tier."""

    name = "numpy"
    #: below this many pairs the tableau build beats the vectorisation win
    min_batch = 64

    def tier_for(self, scheme, op: str = "batch_query") -> str:
        return "numpy" if type(scheme) is HLDScheme else "python"

    # -- label tableau -------------------------------------------------------

    @staticmethod
    def _tableau(labels):
        """Pack labels into ``(ids, exits, root_distances, counts)`` arrays."""
        first = labels[0]
        id_width = first.id_width
        distance_width = first.distance_width
        if id_width > _MAX_WIDTH or distance_width > _MAX_WIDTH:
            return None
        m = len(labels)
        counts = np.empty(m, dtype=np.int64)
        root_distances = np.empty(m, dtype=np.int64)
        for i, label in enumerate(labels):
            if (
                label.id_width != id_width
                or label.distance_width != distance_width
            ):
                return None
            counts[i] = label._count
            root_distances[i] = label.root_distance
        max_count = int(counts.max())
        if max_count == 0 or max_count > 1 << 12:
            return None
        ids = np.empty((m, max_count), dtype=np.int64)
        exits = np.zeros((m, max_count), dtype=np.int64)
        for i, label in enumerate(labels):
            count = int(counts[i])
            if count:
                ids[i, :count] = label.path_ids
                exits[i, :count] = label.exits
            ids[i, count:] = _PAD_BASE + i
        return ids, exits, root_distances, counts

    def _labels_for(self, store, scheme, nodes, parsed):
        if parsed is not None:
            try:
                return [parsed[node] for node in nodes]
            except KeyError:
                return None
        by_node = scheme.parse_many(store, list(dict.fromkeys(nodes)))
        return [by_node[node] for node in nodes]

    # -- fused entry points --------------------------------------------------

    def batch_query(self, store, scheme, pairs, parsed=None):
        if type(scheme) is not HLDScheme or not pairs:
            return None
        nodes = list(dict.fromkeys(node for pair in pairs for node in pair))
        labels = self._labels_for(store, scheme, nodes, parsed)
        if labels is None:
            return None
        tableau = self._tableau(labels)
        if tableau is None:
            return None
        ids, exits, root_distances, counts = tableau
        slot = {node: i for i, node in enumerate(nodes)}
        n_pairs = len(pairs)
        ui = np.fromiter((slot[u] for u, _ in pairs), dtype=np.int64, count=n_pairs)
        vi = np.fromiter((slot[v] for _, v in pairs), dtype=np.int64, count=n_pairs)
        ids_u = ids[ui]
        ids_v = ids[vi]
        mismatch = ids_u != ids_v
        any_mismatch = mismatch.any(axis=1)
        # first differing level; rows with none (u == v slot) use min(count):
        # the per-slot pads guarantee distinct slots mismatch by then
        first = np.where(
            any_mismatch, mismatch.argmax(axis=1), np.minimum(counts[ui], counts[vi])
        )
        deepest = first - 1
        if (deepest < 0).any():
            return None  # foreign-tree pair: Python path raises the ValueError
        exit_u = np.take_along_axis(exits[ui], deepest[:, None], axis=1)[:, 0]
        exit_v = np.take_along_axis(exits[vi], deepest[:, None], axis=1)[:, 0]
        result = (
            root_distances[ui] + root_distances[vi] - 2 * np.minimum(exit_u, exit_v)
        )
        return result.tolist()

    def matrix_flat(self, store, scheme, targets, labels=None):
        if type(scheme) is not HLDScheme or not targets:
            return None
        if labels is None:
            labels = self._labels_for(store, scheme, list(targets), None)
        tableau = self._tableau(labels)
        if tableau is None:
            return None
        ids, exits, root_distances, counts = tableau
        m = len(labels)
        flat: list[int] = []
        column_index = np.arange(m)[None, :]
        for start in range(0, m, _ROW_BLOCK):
            stop = min(start + _ROW_BLOCK, m)
            mismatch = ids[start:stop, None, :] != ids[None, :, :]
            any_mismatch = mismatch.any(axis=2)
            first = np.where(
                any_mismatch,
                mismatch.argmax(axis=2),
                np.minimum(counts[start:stop, None], counts[None, :]),
            )
            deepest = first - 1
            if (deepest < 0).any():
                return None
            exit_rows = np.take_along_axis(exits[start:stop], deepest, axis=1)
            exit_cols = exits[column_index, deepest]
            block = (
                root_distances[start:stop, None]
                + root_distances[None, :]
                - 2 * np.minimum(exit_rows, exit_cols)
            )
            flat.extend(block.reshape(-1).tolist())
        return flat

    # -- parity helpers ------------------------------------------------------

    def varint_many(self, data, start, count):
        return None

    def parse_checksum(self, store, scheme, nodes):
        """Checksum over this tier's parse supply (the packed-Python parser)."""
        if not nodes:
            return None
        labels = scheme.parse_many(store, list(dict.fromkeys(nodes)))
        return fold_checksum(scheme, [labels[node] for node in nodes])
