"""Tiered decode/distance kernels: native C → numpy → packed Python.

The query path's hot loops (``parse_many`` word scans, batched distance,
matrix fill) have three interchangeable implementations:

- **native** — ``_kernels.c`` compiled at build/first-use and loaded via
  cffi (:mod:`repro.kernels.native`); fused decode+distance for hld-fixed
  and Freedman labels straight from ``LabelStore.buffers()``.
- **numpy** — vectorised hld-fixed queries over Python-parsed labels
  (:mod:`repro.kernels.numpy_tier`).
- **python** — the existing packed word-level paths, always available
  (:mod:`repro.kernels.python_tier`).

Availability is probed once per process (quisk-style graceful degradation:
a tier that fails to build/import is recorded and skipped, never fatal) and
the best available tier is selected.  ``REPRO_KERNELS=native|numpy|python``
forces a tier; if the forced tier is unavailable the next one down is used
and the probe records why.  Every backend accelerates only what it
supports — a fused call returning ``None`` sends the caller down the
packed-Python path, so results (and error behaviour) are identical across
tiers by construction, which the differential suites assert.
"""

from __future__ import annotations

import os

ENV_VAR = "REPRO_KERNELS"
TIER_ORDER = ("native", "numpy", "python")

_state: dict = {"probe": None, "backends": {}}


def reset() -> None:
    """Forget the cached probe/backend (tests re-probe after env changes)."""
    _state["probe"] = None
    _state["backends"] = {}


def _probe_tier(tier: str):
    """Try to construct one tier's backend: ``(info_dict, backend_or_None)``."""
    if tier == "python":
        from repro.kernels.python_tier import PythonBackend

        return {"available": True, "detail": "packed word-level paths"}, PythonBackend()
    if tier == "numpy":
        try:
            from repro.kernels.numpy_tier import NumpyBackend
            import numpy

            return (
                {"available": True, "detail": f"numpy {numpy.__version__}"},
                NumpyBackend(),
            )
        except Exception as error:
            return {"available": False, "detail": str(error)}, None
    try:
        from repro.kernels.native import load

        backend = load()
        return {"available": True, "detail": backend.path}, backend
    except Exception as error:
        return {"available": False, "detail": str(error)}, None


def probe(full: bool = False) -> dict:
    """Availability of every tier plus the selected backend name.

    With ``full=False`` (the serving default) tiers below a forced
    ``REPRO_KERNELS`` choice are skipped — forcing ``python`` must not pay
    a compile attempt.  ``full=True`` (the CLI diagnostic) probes all
    tiers regardless.
    """
    cached = _state["probe"]
    if cached is not None and (not full or cached["full"]):
        return cached
    requested = (os.environ.get(ENV_VAR) or "").strip().lower() or None
    note = None
    if requested == "auto":
        requested = None
    elif requested is not None and requested not in TIER_ORDER:
        note = f"unknown {ENV_VAR}={requested!r}, using automatic selection"
        requested = None
    floor = TIER_ORDER.index(requested) if requested else 0
    tiers: dict[str, dict] = {}
    backends: dict[str, object] = {}
    for index, tier in enumerate(TIER_ORDER):
        if not full and index < floor:
            tiers[tier] = {
                "available": None,
                "detail": f"not probed ({ENV_VAR}={requested})",
            }
            continue
        info, backend = _probe_tier(tier)
        tiers[tier] = info
        if backend is not None:
            backends[tier] = backend
    selected = None
    for index, tier in enumerate(TIER_ORDER):
        if index >= floor and tiers[tier].get("available"):
            selected = tier
            break
    if requested is not None and selected != requested:
        note = (
            f"{ENV_VAR}={requested} unavailable "
            f"({tiers[requested]['detail']}), degraded to {selected}"
        )
    result = {
        "selected": selected,
        "requested": requested,
        "env_var": ENV_VAR,
        "tiers": tiers,
        "note": note,
        "full": full or floor == 0,
    }
    _state["probe"] = result
    _state["backends"] = backends
    return result


def backend():
    """The selected backend object (probing on first use)."""
    probed = _state["probe"]
    if probed is None:
        probed = probe()
    return _state["backends"][probed["selected"]]


def backend_name() -> str:
    """Name of the selected tier: ``native``, ``numpy`` or ``python``."""
    return backend().name


def get_backend(tier: str):
    """A specific tier's backend, or ``None`` when unavailable (diagnostics)."""
    probe(full=True)
    return _state["backends"].get(tier)
