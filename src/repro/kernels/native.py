"""The native tier: ``_kernels.c`` compiled and loaded through cffi.

Loading follows the quisk pattern (SNIPPETS.md Snippet 1): the shared
library is a pure accelerator, never a dependency.  ``load()`` either
returns a working :class:`NativeBackend` or raises :class:`KernelError`
with the reason — missing cffi, no C compiler, a failed build, a corrupt
or ABI-incompatible library — and the dispatch layer degrades to the numpy
or packed-Python tier.

The library is compiled at first use (``cc -O2 -shared -fPIC``) into a
cache directory, named by a hash of the C source so stale builds are never
picked up after the source changes.  ``python setup.py build_py`` attempts
the same build at package-build time (see ``setup.py``), which simply
pre-populates the in-package cache.

Environment knobs:

- ``REPRO_KERNELS_LIB``: load exactly this shared library (testing hook —
  pointing it at a corrupt file exercises graceful degradation).
- ``REPRO_KERNELS_CACHE``: directory for compiled libraries (default: the
  package directory when writable, else a per-user temp directory).
- ``CC``: the compiler to use (default: ``cc``, then ``gcc``, ``clang``).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile

#: bumped in ``_kernels.c`` whenever a signature changes; a library that
#: reports anything else is stale or foreign and is rejected
ABI_VERSION = 3

_CDEF = """
int repro_kernels_abi(void);
int repro_varint_many(const uint8_t *buf, uint64_t buf_len, uint64_t start,
                      uint64_t count, uint64_t *out, uint64_t *end_pos);
int repro_gamma_many(const uint8_t *buf, uint64_t bit_start, uint64_t bit_end,
                     uint64_t count, uint64_t *out, uint64_t *end_bit);
int repro_unary_many(const uint8_t *buf, uint64_t bit_start, uint64_t bit_end,
                     uint64_t count, uint64_t *out, uint64_t *end_bit);
int repro_hld_batch(const uint8_t *payload, const uint64_t *offs,
                    const uint64_t *lens, int64_t n_total, const int32_t *nodes,
                    int64_t n_nodes, const int32_t *ui, const int32_t *vi,
                    int64_t n_pairs, int64_t *out);
int repro_hld_matrix(const uint8_t *payload, const uint64_t *offs,
                     const uint64_t *lens, int64_t n_total,
                     const int32_t *nodes, int64_t n_nodes, int64_t *out);
int repro_hld_checksum(const uint8_t *payload, const uint64_t *offs,
                       const uint64_t *lens, int64_t n_total,
                       const int32_t *nodes, int64_t n_nodes, uint64_t *out);
int repro_freedman_batch(const uint8_t *payload, const uint64_t *offs,
                         const uint64_t *lens, int64_t n_total,
                         const int32_t *nodes, int64_t n_nodes,
                         const int32_t *ui, const int32_t *vi, int64_t n_pairs,
                         int64_t *out);
int repro_freedman_matrix(const uint8_t *payload, const uint64_t *offs,
                          const uint64_t *lens, int64_t n_total,
                          const int32_t *nodes, int64_t n_nodes, int64_t *out);
int repro_freedman_checksum(const uint8_t *payload, const uint64_t *offs,
                            const uint64_t *lens, int64_t n_total,
                            const int32_t *nodes, int64_t n_nodes,
                            uint64_t *out);
"""

#: guard against absurd matrices: m*m int64 results; above this the Python
#: path is just as memory-bound and the fused fill buys nothing
_MAX_MATRIX_SIDE = 8192


class KernelError(RuntimeError):
    """The native tier could not be built or loaded."""


def source_path() -> str:
    """Path of the bundled C source."""
    return os.path.join(os.path.dirname(__file__), "_kernels.c")


def _source_digest() -> str:
    with open(source_path(), "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()[:16]


def _compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _cache_dirs() -> list[str]:
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return [override]
    return [
        os.path.join(os.path.dirname(__file__), "_build"),
        os.path.join(
            tempfile.gettempdir(), f"repro-kernels-{os.getuid() if hasattr(os, 'getuid') else 0}"
        ),
    ]


def _lib_suffix() -> str:
    return ".dll" if sys.platform.startswith("win") else ".so"


def ensure_built(verbose: bool = False) -> str:
    """Compile ``_kernels.c`` if needed; return the shared library path.

    Raises :class:`KernelError` when no compiler is available or the build
    fails.  Already-built libraries (matching the current source hash) are
    returned without invoking the compiler.
    """
    name = f"_repro_kernels_{_source_digest()}{_lib_suffix()}"
    candidates = _cache_dirs()
    for directory in candidates:
        path = os.path.join(directory, name)
        if os.path.exists(path):
            return path
    compiler = _compiler()
    if compiler is None:
        raise KernelError("no C compiler found (tried $CC, cc, gcc, clang)")
    last_error: Exception | None = None
    for directory in candidates:
        path = os.path.join(directory, name)
        try:
            os.makedirs(directory, exist_ok=True)
            # compile to a temp name, then atomically rename: concurrent
            # builders race benignly
            scratch = path + f".tmp{os.getpid()}"
            command = [
                compiler,
                "-O2",
                "-shared",
                "-fPIC",
                "-o",
                scratch,
                source_path(),
            ]
            result = subprocess.run(
                command, capture_output=True, text=True, timeout=120
            )
            if result.returncode != 0:
                raise KernelError(
                    f"{compiler} failed ({result.returncode}): "
                    f"{result.stderr.strip()[:500]}"
                )
            os.replace(scratch, path)
            if verbose:
                print(f"built {path}")
            return path
        except KernelError:
            raise
        except OSError as error:
            last_error = error
            continue
    raise KernelError(f"no writable cache directory for the kernel build: {last_error}")


def load():
    """Build (if needed), dlopen and sanity-check the native library.

    Returns a ready :class:`NativeBackend`; raises :class:`KernelError` on
    any failure, leaving the caller free to degrade.
    """
    try:
        from cffi import FFI
    except ImportError as error:  # pragma: no cover - cffi is baked in
        raise KernelError(f"cffi unavailable: {error}") from error
    override = os.environ.get("REPRO_KERNELS_LIB")
    path = override if override else ensure_built()
    ffi = FFI()
    ffi.cdef(_CDEF)
    try:
        lib = ffi.dlopen(path)
    except OSError as error:
        raise KernelError(f"cannot load {path}: {error}") from error
    try:
        abi = lib.repro_kernels_abi()
    except Exception as error:  # pragma: no cover - symbol lookup failure
        raise KernelError(f"{path} has no usable ABI entry point: {error}") from error
    if abi != ABI_VERSION:
        raise KernelError(
            f"{path} reports kernel ABI {abi}, this build needs {ABI_VERSION}"
        )
    return NativeBackend(ffi, lib, path)


class NativeBackend:
    """Fused C kernels over ``LabelStore.buffers()`` data.

    Every public method returns ``None`` for anything the C side does not
    support (scheme family, value ranges, corrupt streams) — the caller
    falls back to the packed-Python path, which reproduces the reference
    behaviour exactly, exceptions included.
    """

    name = "native"
    #: below this many pairs the per-call marshalling overhead beats the win
    min_batch = 16

    def __init__(self, ffi, lib, path: str) -> None:
        self.ffi = ffi
        self.lib = lib
        self.path = path

    # -- scheme dispatch -----------------------------------------------------

    @staticmethod
    def _kind(scheme) -> str | None:
        # exact type checks: a subclass may override ``distance``/``query``
        # semantics, which the C side knows nothing about
        from repro.core.freedman import FreedmanScheme
        from repro.core.hld import HLDScheme

        if type(scheme) is HLDScheme:
            return "hld"
        if type(scheme) is FreedmanScheme:
            return "freedman"
        return None

    def tier_for(self, scheme, op: str = "batch_query") -> str:
        return "native" if self._kind(scheme) else "python"

    # -- store marshalling ---------------------------------------------------

    def _store_arrays(self, store):
        """Per-store C views of payload/offsets/lengths, built once.

        A real :class:`LabelStore` hands out ``array('Q')`` index sequences
        and a (possibly ``mmap``-backed) payload view — all three are mapped
        in place with ``ffi.from_buffer``, so the native tier runs straight
        off the original storage.  Duck-typed stores returning plain lists
        fall back to a one-time ``ffi.new`` copy.
        """
        cached = getattr(store, "_repro_kernel_arrays", None)
        if cached is not None:
            return cached
        view, offsets, lengths = store.buffers()
        ffi = self.ffi
        payload = (
            ffi.from_buffer("uint8_t[]", view)
            if len(view)
            else ffi.new("uint8_t[]", 1)
        )

        def index_array(sequence):
            if len(sequence):
                try:
                    return ffi.from_buffer("uint64_t[]", sequence)
                except TypeError:
                    return ffi.new("uint64_t[]", list(sequence))
            return ffi.new("uint64_t[]", 1)

        offs = index_array(offsets)
        lens = index_array(lengths)
        arrays = (payload, offs, lens, len(lengths))
        try:
            store._repro_kernel_arrays = arrays
        except AttributeError:  # a store type with __slots__: rebuild per call
            pass
        return arrays

    # -- fused entry points --------------------------------------------------

    def batch_query(self, store, scheme, pairs, parsed=None):
        """Distances for ``pairs`` straight from the packed store, or ``None``."""
        kind = self._kind(scheme)
        if kind is None or not pairs:
            return None
        n_total = store.n
        if n_total >= 1 << 31:
            return None
        slots: dict[int, int] = {}
        nodes: list[int] = []
        for pair in pairs:
            for node in pair:
                if node not in slots:
                    if not isinstance(node, int) or not 0 <= node < n_total:
                        return None
                    slots[node] = len(nodes)
                    nodes.append(node)
        payload, offs, lens, _ = self._store_arrays(store)
        ffi = self.ffi
        node_arr = ffi.new("int32_t[]", nodes)
        ui = ffi.new("int32_t[]", [slots[u] for u, _ in pairs])
        vi = ffi.new("int32_t[]", [slots[v] for _, v in pairs])
        out = ffi.new("int64_t[]", len(pairs))
        fn = (
            self.lib.repro_hld_batch if kind == "hld" else self.lib.repro_freedman_batch
        )
        rc = fn(
            payload, offs, lens, n_total, node_arr, len(nodes), ui, vi, len(pairs), out
        )
        if rc:
            return None
        return ffi.unpack(out, len(pairs))

    def matrix_flat(self, store, scheme, targets, labels=None):
        """Flat row-major all-pairs matrix over ``targets``, or ``None``."""
        kind = self._kind(scheme)
        size = len(targets)
        if kind is None or size == 0 or size > _MAX_MATRIX_SIDE:
            return None
        n_total = store.n
        if n_total >= 1 << 31:
            return None
        for node in targets:
            if not isinstance(node, int) or not 0 <= node < n_total:
                return None
        payload, offs, lens, _ = self._store_arrays(store)
        ffi = self.ffi
        node_arr = ffi.new("int32_t[]", list(targets))
        out = ffi.new("int64_t[]", size * size)
        fn = (
            self.lib.repro_hld_matrix
            if kind == "hld"
            else self.lib.repro_freedman_matrix
        )
        rc = fn(payload, offs, lens, n_total, node_arr, size, out)
        if rc:
            return None
        return ffi.unpack(out, size * size)

    def parse_checksum(self, store, scheme, nodes):
        """Field fold over the decoded labels of ``nodes``, or ``None``.

        Matches :func:`repro.kernels.python_tier.fold_checksum` bit for bit;
        equal checksums certify the C decoder read every field identically.
        """
        kind = self._kind(scheme)
        if kind is None or not nodes:
            return None
        n_total = store.n
        if n_total >= 1 << 31:
            return None
        for node in nodes:
            if not isinstance(node, int) or not 0 <= node < n_total:
                return None
        payload, offs, lens, _ = self._store_arrays(store)
        ffi = self.ffi
        node_arr = ffi.new("int32_t[]", list(nodes))
        out = ffi.new("uint64_t*")
        fn = (
            self.lib.repro_hld_checksum
            if kind == "hld"
            else self.lib.repro_freedman_checksum
        )
        rc = fn(payload, offs, lens, n_total, node_arr, len(nodes), out)
        if rc:
            return None
        return int(out[0])

    # -- bulk codec primitives ----------------------------------------------

    def varint_many(self, data, start, count):
        """Decode ``count`` LEB128 varints; ``(values, end_offset)`` or ``None``."""
        if count >= 1 << 31:
            return None
        ffi = self.ffi
        buf = ffi.from_buffer("uint8_t[]", data) if len(data) else ffi.new("uint8_t[]", 1)
        out = ffi.new("uint64_t[]", max(count, 1))
        end = ffi.new("uint64_t*")
        rc = self.lib.repro_varint_many(buf, len(data), start, count, out, end)
        if rc:
            return None
        return ffi.unpack(out, count), int(end[0])

    def gamma_many(self, data, bit_start, bit_end, count):
        """Decode ``count`` Elias gamma codes; ``(values, end_bit)`` or ``None``."""
        ffi = self.ffi
        buf = ffi.from_buffer("uint8_t[]", data) if len(data) else ffi.new("uint8_t[]", 1)
        out = ffi.new("uint64_t[]", max(count, 1))
        end = ffi.new("uint64_t*")
        rc = self.lib.repro_gamma_many(buf, bit_start, bit_end, count, out, end)
        if rc:
            return None
        return ffi.unpack(out, count), int(end[0])

    def unary_many(self, data, bit_start, bit_end, count):
        """Decode ``count`` unary codes; ``(values, end_bit)`` or ``None``."""
        ffi = self.ffi
        buf = ffi.from_buffer("uint8_t[]", data) if len(data) else ffi.new("uint8_t[]", 1)
        out = ffi.new("uint64_t[]", max(count, 1))
        end = ffi.new("uint64_t*")
        rc = self.lib.repro_unary_many(buf, bit_start, bit_end, count, out, end)
        if rc:
            return None
        return ffi.unpack(out, count), int(end[0])
