"""Shared hypothesis strategies and representative trees for the test suite.

The strategies used to live in ``tests/conftest.py`` and were imported with
``from conftest import ...``, which breaks as soon as pytest's rootdir puts a
different ``conftest`` module first on ``sys.path`` (the benchmark harness has
its own).  They are ordinary library code, so they live here as a proper
importable module: ``from repro.testing import parent_array_trees``.

Importing this module requires ``hypothesis``; the rest of the library does
not, so the dependency stays test-only.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.generators.random_trees import (
    random_binary_tree,
    random_caterpillar,
    random_prufer_tree,
    random_recursive_tree,
)
from repro.generators.structured import (
    balanced_binary_tree,
    broom_tree,
    caterpillar_tree,
    path_tree,
    spider_tree,
    star_tree,
)
from repro.trees.tree import RootedTree

__all__ = [
    "parent_array_trees",
    "weighted_trees",
    "monotone_sequences",
    "STRUCTURED_FAMILIES",
]


@st.composite
def parent_array_trees(draw, max_nodes: int = 40) -> RootedTree:
    """Arbitrary rooted trees drawn as increasing parent arrays."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    parents: list[int | None] = [None]
    for node in range(1, n):
        parents.append(draw(st.integers(min_value=0, max_value=node - 1)))
    return RootedTree(parents)


@st.composite
def weighted_trees(draw, max_nodes: int = 30, max_weight: int = 4) -> RootedTree:
    """Arbitrary rooted trees with small non-negative edge weights."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    parents: list[int | None] = [None]
    weights = [0]
    for node in range(1, n):
        parents.append(draw(st.integers(min_value=0, max_value=node - 1)))
        weights.append(draw(st.integers(min_value=0, max_value=max_weight)))
    return RootedTree(parents, weights)


@st.composite
def monotone_sequences(draw, max_length: int = 40, max_value: int = 500) -> list[int]:
    """Non-decreasing integer sequences."""
    values = draw(
        st.lists(st.integers(min_value=0, max_value=max_value), max_size=max_length)
    )
    return sorted(values)


# small representative trees used by many plain (non-hypothesis) tests
STRUCTURED_FAMILIES = {
    "single": lambda: RootedTree([None]),
    "pair": lambda: RootedTree([None, 0]),
    "path-17": lambda: path_tree(17),
    "star-17": lambda: star_tree(17),
    "caterpillar-20": lambda: caterpillar_tree(20),
    "balanced-31": lambda: balanced_binary_tree(31),
    "broom-24": lambda: broom_tree(24),
    "spider-22": lambda: spider_tree(22, legs=4),
    "random-33": lambda: random_prufer_tree(33, seed=5),
    "random-binary-29": lambda: random_binary_tree(29, seed=3),
    "random-recursive-41": lambda: random_recursive_tree(41, seed=9),
    "random-caterpillar-27": lambda: random_caterpillar(27, seed=11),
}
