"""External-memory store building: encode 10⁷⁺-node trees without the RAM.

The in-memory pipeline (``LabelStore.encode_tree(...).save(path)``)
materialises every label object, every packed chunk and the joined payload
at once — three full copies of the artefact before a byte reaches disk.
:func:`build_store_streaming` produces the **byte-identical** file while
holding only:

* the scheme's shared precompute plus *one* label at a time
  (``scheme.encode_stream``, overridden for real streaming by HLD and
  Freedman);
* one fixed-size packed run buffer (``run_bytes``, default 32 MiB), spilled
  to a temp file whenever full;
* the bit-length index as an ``array('Q')`` — 8 bytes per node, the one
  piece the file format forces us to keep (every varint length precedes the
  payload on disk).

The merge step then writes the header + varint index and streams the
spilled runs into place.  Output equality with ``LabelStore.to_bytes()`` is
pinned by ``tests/test_scale.py`` and re-checked at scale by
``benchmarks/bench_scale.py``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from array import array

from repro.encoding.varint import encode_uvarint
from repro.scale.memory import current_rss_bytes, peak_rss_bytes
from repro.store.label_store import STORE_MAGIC, StoreError

#: payload bytes buffered in memory before spilling a run to disk
DEFAULT_RUN_BYTES = 32 << 20

#: copy buffer for the run merge
_COPY_CHUNK = 1 << 20

#: varints joined per write while emitting the bit-length index
_VARINT_BATCH = 1 << 16


def write_store_header(handle, scheme_name: str, scheme_params: dict, bit_lengths) -> int:
    """Write the RLS1 header + varint index to ``handle``; returns the bytes.

    Byte-for-byte the prefix ``LabelStore.to_bytes()`` emits, produced
    without a store object so the streaming builder can write it from the
    accumulated index alone.
    """
    import json

    name = scheme_name.encode("utf-8")
    params = json.dumps(scheme_params, sort_keys=True).encode("utf-8")
    written = handle.write(
        b"".join(
            (
                STORE_MAGIC,
                encode_uvarint(len(name)),
                name,
                encode_uvarint(len(params)),
                params,
                encode_uvarint(len(bit_lengths)),
            )
        )
    )
    batch: list[bytes] = []
    for bits in bit_lengths:
        batch.append(encode_uvarint(bits))
        if len(batch) >= _VARINT_BATCH:
            written += handle.write(b"".join(batch))
            batch.clear()
    if batch:
        written += handle.write(b"".join(batch))
    return written


def build_store_streaming(
    scheme,
    tree,
    path: str | os.PathLike,
    *,
    run_bytes: int = DEFAULT_RUN_BYTES,
    tmp_dir: str | None = None,
    progress=None,
    progress_every: int = 65536,
) -> dict:
    """Encode ``tree`` with ``scheme`` straight to the store file at ``path``.

    Labels stream from ``scheme.encode_stream`` in node order; packed bytes
    accumulate in a ``run_bytes``-sized buffer that spills to temp files
    (``tmp_dir``, default: alongside ``path``), and the final merge writes
    the header + varint index followed by the runs — byte-identical to
    ``LabelStore.encode_tree(scheme, tree).save(path)``.

    ``progress(done, total)`` is called every ``progress_every`` labels and
    once at the end.  Returns a stats dict: node/byte counts, spilled run
    count, wall-clock seconds and the process RSS self-check
    (``peak_rss_bytes`` is the *process* high-water mark — run the builder
    in a fresh process, as ``benchmarks/bench_scale.py`` does, for a clean
    comparison against the in-memory pipeline).
    """
    if run_bytes < 1 << 16:
        raise ValueError("run_bytes must be at least 64 KiB")
    n = tree.n
    path = os.fspath(path)
    started = time.perf_counter()
    rss_before = current_rss_bytes()

    lengths = array("Q")
    run = bytearray()
    run_paths: list[str] = []
    spill_dir = tempfile.mkdtemp(
        prefix="repro-scale-", dir=tmp_dir or (os.path.dirname(path) or ".")
    )

    def spill() -> None:
        descriptor, run_path = tempfile.mkstemp(dir=spill_dir, suffix=".run")
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(run)
        run_paths.append(run_path)
        run.clear()

    try:
        produced = 0
        for label in scheme.encode_stream(tree):
            bits = label.to_bits()
            lengths.append(len(bits))
            run += bits.to_bytes()
            if len(run) >= run_bytes:
                spill()
            produced += 1
            if progress is not None and produced % progress_every == 0:
                progress(produced, n)
        if produced != n:
            raise StoreError(
                f"scheme {scheme.name!r} streamed {produced} labels "
                f"for a {n}-node tree"
            )

        with open(path, "wb") as out:
            header_bytes = write_store_header(
                out, scheme.name, scheme.params(), lengths
            )
            payload_bytes = 0
            for run_path in run_paths:
                with open(run_path, "rb") as source:
                    shutil.copyfileobj(source, out, _COPY_CHUNK)
                    payload_bytes += source.tell()
                os.unlink(run_path)
            if run:
                payload_bytes += out.write(run)
                run.clear()
    finally:
        shutil.rmtree(spill_dir, ignore_errors=True)

    if progress is not None:
        progress(n, n)
    expected_payload = sum((bits + 7) // 8 for bits in lengths)
    if payload_bytes != expected_payload:
        raise StoreError(
            f"streamed payload is {payload_bytes} bytes but the index "
            f"describes {expected_payload}"
        )
    return {
        "scheme": scheme.name,
        "n": n,
        "path": path,
        "header_bytes": header_bytes,
        "payload_bytes": payload_bytes,
        "file_bytes": header_bytes + payload_bytes,
        "runs_spilled": len(run_paths),
        "run_bytes": run_bytes,
        "seconds": round(time.perf_counter() - started, 3),
        "rss_before_bytes": rss_before,
        "rss_after_bytes": current_rss_bytes(),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def build_store_in_memory(scheme, tree, path: str | os.PathLike) -> dict:
    """The materialise-everything baseline, with the same stats shape.

    ``LabelStore.encode_tree(...).save(path)`` — the pipeline the streaming
    builder is measured against (and the one the CI scale gate proves
    cannot run under the address-space cap the streaming builder can).
    """
    from repro.store.label_store import LabelStore

    path = os.fspath(path)
    started = time.perf_counter()
    rss_before = current_rss_bytes()
    store = LabelStore.encode_tree(scheme, tree)
    written = store.save(path)
    return {
        "scheme": scheme.name,
        "n": store.n,
        "path": path,
        "payload_bytes": store.payload_bytes,
        "file_bytes": written,
        "runs_spilled": 0,
        "seconds": round(time.perf_counter() - started, 3),
        "rss_before_bytes": rss_before,
        "rss_after_bytes": current_rss_bytes(),
        "peak_rss_bytes": peak_rss_bytes(),
    }
