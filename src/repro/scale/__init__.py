"""Beyond-RAM scale: external-memory building and memory accounting.

This subsystem is the build-side complement of the store layer's mmap
support.  Together they close the loop for trees that dwarf main memory:

* **build** (:mod:`repro.scale.build`): :func:`build_store_streaming`
  encodes a tree straight to the on-disk :class:`~repro.store.LabelStore`
  format — one label in flight, fixed-size packed runs spilled to temp
  files, then a header + run merge — byte-identical to
  ``LabelStore.encode_tree(...).save(path)`` at a fraction of the RSS.
  Exposed on the CLI as ``repro-labels build --streaming``.
* **serve** (:meth:`repro.store.LabelStore.open_mmap`,
  ``DistanceIndex.open(path, mmap=True)``, ``repro-labels serve --mmap``):
  the resulting file is queried through a read-only mapping, so the
  resident cost is page-cache occupancy shared across every worker of a
  pre-forked fleet.
* **memory** (:mod:`repro.scale.memory`): the RSS probes behind the
  builder's self-check and the serve layer's STATS, plus the
  address-space cap the CI scale gate uses to prove (not just measure)
  the streaming builder's footprint.

``benchmarks/bench_scale.py`` records the whole story — build time, peak
RSS vs the in-memory baseline, bytes per node, and cold-vs-warm mmap query
throughput — into ``BENCH_scale.json``.
"""

from repro.scale.build import (
    DEFAULT_RUN_BYTES,
    build_store_in_memory,
    build_store_streaming,
    write_store_header,
)
from repro.scale.memory import cap_address_space, current_rss_bytes, peak_rss_bytes

__all__ = [
    "DEFAULT_RUN_BYTES",
    "build_store_in_memory",
    "build_store_streaming",
    "write_store_header",
    "cap_address_space",
    "current_rss_bytes",
    "peak_rss_bytes",
]
