"""Process-memory accounting for the beyond-RAM serving and build paths.

Three small primitives, shared by the streaming builder's peak-RSS
self-check, the serve layer's STATS payload (resident bytes next to the
payload size shows whether an mmap-backed worker is actually serving from
page cache) and the CI scale gate (an address-space cap the in-memory
builder cannot satisfy):

* :func:`current_rss_bytes` — the process's resident set right now;
* :func:`peak_rss_bytes` — the high-water mark since process start;
* :func:`cap_address_space` — ``resource.setrlimit(RLIMIT_AS, ...)``,
  the knob the scale smoke test uses to *prove* the streaming builder
  needs less memory instead of merely measuring it.

Everything degrades to ``0`` / no-op on platforms without ``/proc`` or
``resource`` rather than failing — memory numbers are diagnostics, never
correctness.
"""

from __future__ import annotations

import os

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss_bytes() -> int:
    """Resident-set size of this process in bytes (0 when unknowable).

    Reads ``/proc/self/statm`` (Linux); the second field is resident pages.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return 0


def peak_rss_bytes() -> int:
    """Peak resident-set size since process start, in bytes (0 unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalised to bytes.
    """
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak if sys.platform == "darwin" else peak * 1024
    except (ImportError, OSError, ValueError):
        return 0


def cap_address_space(limit_bytes: int) -> bool:
    """Hard-cap this process's virtual address space; ``True`` on success.

    Allocations beyond the cap raise ``MemoryError`` (or ``mmap`` failures),
    which is exactly the behaviour the scale smoke gate relies on: under a
    cap sized well below the payload, the in-memory builder dies while the
    streaming builder — whose working set is one run buffer plus the
    bit-length index — completes.  Read-only ``mmap`` of a large store file
    still counts against ``RLIMIT_AS``, so the cap must leave room for the
    mapping itself (page-cache residency is not the same as address space).
    """
    try:
        import resource

        resource.setrlimit(resource.RLIMIT_AS, (limit_bytes, limit_bytes))
        return True
    except (ImportError, OSError, ValueError):
        return False
