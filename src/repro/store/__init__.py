"""Packed label stores and the batch query engine (internal layer).

.. note::
   This package is the **internal** serving layer behind the public
   :mod:`repro.api` façade.  Application code should use
   :meth:`repro.api.DistanceIndex.build` / ``open`` / ``query`` instead of
   constructing :class:`LabelStore` and :class:`QueryEngine` directly; the
   classes here remain importable for measurement and research code and
   their file format is the one ``DistanceIndex.save`` writes.

The layer turns the labels a scheme assigns into a single shippable
artefact and answers queries from that artefact alone — the workflow the
paper's model implies (distribute the labels, discard the tree).

:class:`LabelStore`
    every node label packed into one contiguous byte buffer with an offset
    index, zero-copy ``memoryview`` slicing and ``save``/``load`` for
    on-disk persistence.  ``total_label_bits``/``file_bytes`` measure the
    *total* space of an encoding, complementing the per-label maxima the
    paper bounds.

:class:`QueryEngine`
    answers distance queries against a store through the unified
    ``scheme.query`` interface, caching parsed labels (LRU) and providing
    ``batch_distance``/``distance_matrix`` fast paths that parse each label
    once per batch instead of once per query.  Two serving-layer hooks ride
    on it: an opt-in hot-pair response cache (``pair_cache_size`` /
    ``enable_pair_cache``) that answers repeated ``{u, v}`` pairs without
    touching the labels, and the executor-safe ``matrix_into`` flat-matrix
    path the network server offloads MATRIX requests through.

Binary format (version 1)
-------------------------

All integers are LEB128 varints (:func:`repro.encoding.varint.encode_uvarint`),
so every field is byte-aligned and the payload can be sliced without
copying::

    magic       4 bytes   b"RLS1"
    scheme      uvarint length + that many bytes of UTF-8 scheme name
    params      uvarint length + that many bytes of canonical JSON
                (sorted keys) holding the scheme's constructor parameters
    n           uvarint   number of labels; nodes are 0 .. n-1
    bit_lens    n uvarints, the exact bit length of each label
    payload     concatenation of the packed labels, in node order;
                label i occupies ceil(bit_lens[i] / 8) bytes, MSB-first,
                zero-padded at the end of its last byte

Byte offsets into the payload are reconstructed from ``bit_lens`` at load
time, so the index costs one varint per label on disk while lookups stay
O(1) in memory.

mmap safety
-----------

The format is deliberately **mmap-safe**: nothing in it requires
materialising the file in anonymous memory.

* every field is byte-aligned (varints, then whole-byte label slots), so
  labels are plain ``buffer[a:b]`` slices — no bit-level fixups on load;
* the header and index are a strict *prefix*; after one sequential decode
  pass the payload is addressed purely by computed offsets, so only the
  pages a query touches are ever faulted in;
* labels are read-only after encode — a private (copy-on-write) mapping
  never dirties a page, and N forked serving workers share **one**
  physical copy of the payload through the OS page cache.

``LabelStore.open_mmap(path)`` / ``DistanceIndex.open(path, mmap=True)``
serve straight from such a mapping (``LabelStore.from_bytes`` accepts any
buffer object without an upfront copy); ``repro.scale.build`` writes this
exact layout streamingly for trees whose label sets exceed RAM.  The
catalog container (``repro.api.IndexCatalog``) stores members
back-to-back, so each member's store is itself a zero-copy sub-view of
one mapped file.
"""

from repro.store.label_store import STORE_MAGIC, LabelStore, StoreError
from repro.store.query_engine import QueryEngine

__all__ = ["LabelStore", "QueryEngine", "StoreError", "STORE_MAGIC"]
