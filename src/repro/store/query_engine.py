"""Query serving on top of a :class:`repro.store.LabelStore`.

The engine is decoder-only: it sees packed bits, never the tree.  Parsing a
label (bit string -> label object) dominates CPython query cost, so the
engine keeps a bounded LRU cache of parsed labels and offers batch entry
points that parse each distinct endpoint exactly once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from repro.store.label_store import LabelStore


class QueryEngine:
    """Answers queries from a packed store through ``scheme.query``.

    ``scheme`` may be omitted, in which case it is rebuilt from the spec the
    store carries.  The semantics of one query result follow the scheme's
    family (``scheme.kind``): an exact distance, a distance-or-``None``
    bounded answer, or a (1+eps)-approximation.
    """

    def __init__(self, store: LabelStore, scheme=None, cache_size: int = 4096) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        self.store = store
        self.scheme = scheme if scheme is not None else store.make_scheme()
        self._cache: OrderedDict[int, object] = OrderedDict()
        self._cache_size = cache_size
        #: parsed-label cache statistics, exposed for benchmarks and tuning
        self.cache_hits = 0
        self.cache_misses = 0

    @classmethod
    def from_labels(cls, scheme, labels: dict[int, object], **kwargs) -> "QueryEngine":
        """Pack ``labels`` into a fresh store and serve it."""
        return cls(LabelStore.from_labels(scheme, labels), scheme=scheme, **kwargs)

    @classmethod
    def encode_tree(cls, scheme, tree, **kwargs) -> "QueryEngine":
        """Encode ``tree``, pack the labels and serve them."""
        return cls(LabelStore.encode_tree(scheme, tree), scheme=scheme, **kwargs)

    @property
    def n(self) -> int:
        """Number of queryable nodes."""
        return self.store.n

    # -- label parsing -------------------------------------------------------

    def parsed_label(self, node: int):
        """The parsed label of ``node``, LRU-cached."""
        cache = self._cache
        if node in cache:
            cache.move_to_end(node)
            self.cache_hits += 1
            return cache[node]
        self.cache_misses += 1
        label = self.scheme.parse(self.store.label_bits(node))
        cache[node] = label
        if len(cache) > self._cache_size:
            cache.popitem(last=False)
        return label

    def _parse_batch(self, nodes: Iterable[int]) -> dict[int, object]:
        """Parse each distinct node once, reusing (and warming) the cache."""
        parsed: dict[int, object] = {}
        for node in nodes:
            if node not in parsed:
                parsed[node] = self.parsed_label(node)
        return parsed

    # -- queries -------------------------------------------------------------

    def query(self, u: int, v: int):
        """One query; result semantics follow ``scheme.kind``."""
        return self.scheme.query(self.parsed_label(u), self.parsed_label(v))

    def distance(self, u: int, v: int):
        """Alias of :meth:`query` for the common exact-scheme case."""
        return self.query(u, v)

    def batch_query(self, pairs: Sequence[tuple[int, int]]) -> list:
        """Answer many queries, parsing each distinct endpoint once."""
        parsed = self._parse_batch(node for pair in pairs for node in pair)
        query = self.scheme.query
        return [query(parsed[u], parsed[v]) for u, v in pairs]

    def batch_distance(self, pairs: Sequence[tuple[int, int]]) -> list:
        """Alias of :meth:`batch_query` for the common exact-scheme case."""
        return self.batch_query(pairs)

    def distance_matrix(self, nodes: Sequence[int] | None = None) -> list[list]:
        """All pairwise answers over ``nodes`` (default: every node).

        Each label is parsed once; the matrix is symmetric for every scheme
        in this library but is computed entry-by-entry all the same, so the
        engine stays agnostic of the scheme's internals.

        When the target set is larger than the cache, labels are parsed into
        a local list that bypasses the LRU entirely: inserting them would
        evict every warm entry without any of the parses ever being a cache
        hit, and later misses on the evicted nodes would be counted twice.
        Cached labels are still reused (without promotion).
        """
        targets = list(range(self.store.n)) if nodes is None else list(nodes)
        if len(targets) <= self._cache_size:
            parsed = [self.parsed_label(node) for node in targets]
        else:
            cache = self._cache
            parse = self.scheme.parse
            label_bits = self.store.label_bits
            local: dict[int, object] = {}
            parsed = []
            for node in targets:
                label = cache.get(node)
                if label is not None:
                    self.cache_hits += 1
                elif node in local:
                    label = local[node]
                else:
                    self.cache_misses += 1
                    label = parse(label_bits(node))
                    local[node] = label
                parsed.append(label)
        query = self.scheme.query
        return [[query(a, b) for b in parsed] for a in parsed]

    # -- cache management ----------------------------------------------------

    def cache_info(self) -> dict:
        """Hit/miss counters and current occupancy of the parsed-label cache."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "size": len(self._cache),
            "max_size": self._cache_size,
        }

    def clear_cache(self) -> None:
        """Drop all parsed labels (counters included)."""
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0
