"""Query serving on top of a :class:`repro.store.LabelStore`.

The engine is decoder-only: it sees packed bits, never the tree.  Parsing a
label (packed word -> label object) dominates CPython query cost, so the
engine keeps a bounded LRU cache of parsed labels and offers batch entry
points that parse each distinct endpoint exactly once.

The batch supply path is zero-string end to end: the store yields
``(node, packed_value, bit_length)`` words (:meth:`LabelStore.label_words`)
and the scheme's ``parse_many`` turns them into label objects — no
character-per-bit strings, and for schemes with a word-level parser no
intermediate :class:`~repro.encoding.bitio.Bits` either.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from repro import kernels
from repro.store.label_store import LabelStore

#: cache-miss sentinel: one ``dict.get`` resolves hit-or-miss without a
#: second ``in`` lookup (``None`` is not usable — it is a valid label value
#: only in theory, but the sentinel also guards against that)
_MISSING = object()


class QueryEngine:
    """Answers queries from a packed store through ``scheme.query``.

    ``scheme`` may be omitted, in which case it is rebuilt from the spec the
    store carries.  The semantics of one query result follow the scheme's
    family (``scheme.kind``): an exact distance, a distance-or-``None``
    bounded answer, or a (1+eps)-approximation.
    """

    def __init__(
        self,
        store: LabelStore,
        scheme=None,
        cache_size: int = 4096,
        pair_cache_size: int = 0,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        if pair_cache_size < 0:
            raise ValueError("pair_cache_size must be non-negative")
        self.store = store
        self.scheme = scheme if scheme is not None else store.make_scheme()
        self._cache: OrderedDict[int, object] = OrderedDict()
        self._cache_size = cache_size
        #: parsed-label cache statistics, exposed for benchmarks and tuning
        self.cache_hits = 0
        self.cache_misses = 0
        # -- hot-pair response cache (opt-in) ----------------------------
        # Keyed by (min(u, v), max(u, v)): every scheme family here answers
        # symmetrically, so one entry serves both orientations.  Disabled by
        # default — in-process batch callers rarely repeat exact pairs — and
        # switched on by the network server, whose Zipf-shaped traffic
        # repeats a hot pair set heavily.
        self._pair_cache: OrderedDict[tuple[int, int], object] = OrderedDict()
        self._pair_cache_size = pair_cache_size
        self.pair_hits = 0
        self.pair_misses = 0

    @classmethod
    def from_labels(cls, scheme, labels: dict[int, object], **kwargs) -> "QueryEngine":
        """Pack ``labels`` into a fresh store and serve it."""
        return cls(LabelStore.from_labels(scheme, labels), scheme=scheme, **kwargs)

    @classmethod
    def encode_tree(cls, scheme, tree, **kwargs) -> "QueryEngine":
        """Encode ``tree``, pack the labels and serve them."""
        return cls(LabelStore.encode_tree(scheme, tree), scheme=scheme, **kwargs)

    @property
    def n(self) -> int:
        """Number of queryable nodes."""
        return self.store.n

    # -- label parsing -------------------------------------------------------

    def parsed_label(self, node: int):
        """The parsed label of ``node``, LRU-cached."""
        cache = self._cache
        label = cache.get(node, _MISSING)
        if label is not _MISSING:
            cache.move_to_end(node)
            self.cache_hits += 1
            return label
        self.cache_misses += 1
        label = self.scheme.parse(self.store.label_bits(node))
        cache[node] = label
        if len(cache) > self._cache_size:
            cache.popitem(last=False)
        return label

    def _parse_batch(self, nodes: Iterable[int]) -> dict[int, object]:
        """Parse each distinct node once, reusing (and warming) the cache.

        Per-node LRU bookkeeping is skipped: every requested node is being
        collected into the returned local dict anyway, so cache hits are
        plain lookups (no recency promotion) and freshly parsed labels are
        inserted in bulk, with a single eviction sweep at the end.
        """
        parsed: dict[int, object] = {}
        cache_get = self._cache.get
        hits = 0
        missing: list[int] = []
        for node in dict.fromkeys(nodes):  # C-speed, order-preserving dedup
            label = cache_get(node, _MISSING)
            if label is not _MISSING:
                hits += 1
                parsed[node] = label
            else:
                missing.append(node)
        self.cache_hits += hits
        if missing:
            self.cache_misses += len(missing)
            fresh = self.scheme.parse_many(self.store, missing)
            parsed.update(fresh)
            cache = self._cache
            cache.update(fresh)
            if len(cache) > self._cache_size:
                pop = cache.popitem
                for _ in range(len(cache) - self._cache_size):
                    pop(last=False)
        return parsed

    # -- queries -------------------------------------------------------------

    def query(self, u: int, v: int):
        """One query; result semantics follow ``scheme.kind``."""
        if self._pair_cache_size:
            pair_cache = self._pair_cache
            key = (u, v) if u <= v else (v, u)
            answer = pair_cache.get(key, _MISSING)
            if answer is not _MISSING:
                pair_cache.move_to_end(key)
                self.pair_hits += 1
                return answer
            self.pair_misses += 1
            answer = self.scheme.query(self.parsed_label(u), self.parsed_label(v))
            pair_cache[key] = answer
            if len(pair_cache) > self._pair_cache_size:
                pair_cache.popitem(last=False)
            return answer
        return self.scheme.query(self.parsed_label(u), self.parsed_label(v))

    def distance(self, u: int, v: int):
        """Alias of :meth:`query` for the common exact-scheme case."""
        return self.query(u, v)

    def batch_query(self, pairs: Sequence[tuple[int, int]]) -> list:
        """Answer many queries, parsing each distinct endpoint once.

        With the hot-pair cache enabled, cached pairs are answered without
        touching the label layer at all and only the remaining pairs go
        through the batched parse.

        Large batches route through the active kernel backend
        (:mod:`repro.kernels`) when it supports the scheme: the parse/cache
        bookkeeping above is identical either way (so counters, warming and
        eviction match the packed-Python path exactly), only the per-pair
        query loop is fused.  A backend that declines (``None``) falls
        through to the Python loop.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        if self._pair_cache_size:
            return self._batch_query_cached(pairs)
        us, vs = zip(*pairs)
        parsed = self._parse_batch(us + vs)
        backend = kernels.backend()
        if len(pairs) >= backend.min_batch:
            fused = backend.batch_query(self.store, self.scheme, pairs, parsed=parsed)
            if fused is not None:
                return fused
        query = self.scheme.query
        return [query(parsed[u], parsed[v]) for u, v in pairs]

    def _batch_query_cached(self, pairs: list[tuple[int, int]]) -> list:
        """The :meth:`batch_query` body when the hot-pair cache is on.

        A pair repeated inside one batch is computed once; hit/miss
        accounting matches the one-lookup-per-request semantics the server's
        STATS report (a within-batch repeat of a missing pair counts as a
        hit — it was served from the freshly cached answer).
        """
        pair_cache = self._pair_cache
        promote = pair_cache.move_to_end
        answered: dict[tuple[int, int], object] = {}
        keys: list[tuple[int, int]] = []
        missing: list[tuple[int, int]] = []
        hits = 0
        for u, v in pairs:
            key = (u, v) if u <= v else (v, u)
            keys.append(key)
            if key in answered:
                hits += 1
                continue
            cached = pair_cache.get(key, _MISSING)
            if cached is not _MISSING:
                # promote on hit: the server's coalescer only ever queries
                # through this path, so skipping promotion here would turn
                # the "LRU" into insertion-order FIFO and churn the hot set
                promote(key)
                hits += 1
                answered[key] = cached
            else:
                missing.append(key)
                answered[key] = _MISSING  # placeholder: computed below
        self.pair_hits += hits
        if missing:
            self.pair_misses += len(missing)
            us, vs = zip(*missing)
            parsed = self._parse_batch(us + vs)
            backend = kernels.backend()
            fused = (
                backend.batch_query(self.store, self.scheme, missing, parsed=parsed)
                if len(missing) >= backend.min_batch
                else None
            )
            if fused is not None:
                for key, answer in zip(missing, fused):
                    answered[key] = answer
            else:
                query = self.scheme.query
                for key in missing:
                    answered[key] = query(parsed[key[0]], parsed[key[1]])
            pair_cache.update((key, answered[key]) for key in missing)
            overflow = len(pair_cache) - self._pair_cache_size
            if overflow > 0:
                pop = pair_cache.popitem
                for _ in range(overflow):
                    pop(last=False)
        return [answered[key] for key in keys]

    def batch_distance(self, pairs: Sequence[tuple[int, int]]) -> list:
        """Alias of :meth:`batch_query` for the common exact-scheme case."""
        return self.batch_query(pairs)

    def distance_matrix(
        self,
        nodes: Sequence[int] | None = None,
        assume_symmetric: bool = True,
    ) -> list[list]:
        """All pairwise answers over ``nodes`` (default: every node).

        Every scheme in this library answers symmetrically, so by default
        only the upper triangle is computed and the lower triangle is
        mirrored — roughly halving matrix time.  Pass
        ``assume_symmetric=False`` to force the full entry-by-entry
        computation (e.g. for a custom scheme with asymmetric semantics).

        Each label is parsed once.  When the target set is larger than the
        cache, labels are parsed into a local list that bypasses the LRU
        entirely: inserting them would evict every warm entry without any of
        the parses ever being a cache hit, and later misses on the evicted
        nodes would be counted twice.  Cached labels are still reused
        (without promotion).
        """
        targets = list(range(self.store.n)) if nodes is None else list(nodes)
        if len(targets) <= self._cache_size:
            by_node = self._parse_batch(targets)
            parsed = [by_node[node] for node in targets]
        else:
            cache_get = self._cache.get
            seen: set[int] = set()
            missing: list[int] = []
            for node in targets:
                if cache_get(node, _MISSING) is _MISSING and node not in seen:
                    missing.append(node)
                    seen.add(node)
            local: dict[int, object] = {}
            if missing:
                self.cache_misses += len(missing)
                local = self.scheme.parse_many(self.store, missing)
            parsed = []
            for node in targets:
                label = cache_get(node, _MISSING)
                if label is not _MISSING:
                    self.cache_hits += 1
                else:
                    label = local[node]
                parsed.append(label)
        query = self.scheme.query
        if not assume_symmetric:
            return [[query(a, b) for b in parsed] for a in parsed]
        size = len(parsed)
        if size >= 2:
            # fused O(n²) fill; the parse/cache bookkeeping above already
            # matched the Python path, so only the loop below is replaced
            flat = kernels.backend().matrix_flat(
                self.store, self.scheme, targets, labels=parsed
            )
            if flat is not None:
                return [flat[row * size : (row + 1) * size] for row in range(size)]
        matrix: list[list] = [[0] * size for _ in range(size)]
        for i in range(size):
            label_i = parsed[i]
            row = matrix[i]
            row[i] = query(label_i, label_i)
            for j in range(i + 1, size):
                answer = query(label_i, parsed[j])
                row[j] = answer
                matrix[j][i] = answer
        return matrix

    def matrix_into(
        self,
        nodes: Sequence[int] | None = None,
        out: list | None = None,
        assume_symmetric: bool = True,
    ) -> list:
        """All pairwise answers over ``nodes``, flat row-major, executor-safe.

        This is the entry point the network server offloads MATRIX requests
        to a worker thread through, so unlike :meth:`distance_matrix` it
        **never mutates the engine**: parsed labels come from read-only
        cache lookups (no LRU promotion, no insertion, no counter updates)
        with misses parsed into a local dict, and the result is appended to
        ``out`` (or a fresh list) as one flat row-major sequence — exactly
        the shape the wire protocol carries, skipping the row-list build and
        re-flatten.  Safe to run concurrently with event-loop queries on
        another thread; the trade-off is that a matrix never warms any
        cache.
        """
        targets = list(range(self.store.n)) if nodes is None else list(nodes)
        if assume_symmetric and len(targets) >= 2:
            # fused kernel fill: reads only the immutable store (not even
            # the cache), so the never-mutates contract holds trivially; a
            # backend that declines falls through to the Python path (which
            # also raises the proper error for out-of-range targets)
            flat_fused = kernels.backend().matrix_flat(
                self.store, self.scheme, targets
            )
            if flat_fused is not None:
                if out is None:
                    return list(flat_fused)
                out.extend(flat_fused)
                return out
        cache_get = self._cache.get
        # one cache lookup per distinct node: the event loop may evict
        # entries concurrently, so a second lookup could miss where the
        # first hit — every label is captured at its first sighting
        by_node: dict[int, object] = {}
        missing: list[int] = []
        for node in dict.fromkeys(targets):
            label = cache_get(node, _MISSING)
            if label is _MISSING:
                missing.append(node)
            else:
                by_node[node] = label
        if missing:
            by_node.update(self.scheme.parse_many(self.store, missing))
        parsed = [by_node[node] for node in targets]
        flat = [] if out is None else out
        query = self.scheme.query
        size = len(parsed)
        if not assume_symmetric:
            for label_i in parsed:
                for label_j in parsed:
                    flat.append(query(label_i, label_j))
            return flat
        # upper triangle once, mirrored through a local row matrix
        rows: list[list] = [[0] * size for _ in range(size)]
        for i in range(size):
            label_i = parsed[i]
            row = rows[i]
            row[i] = query(label_i, label_i)
            for j in range(i + 1, size):
                answer = query(label_i, parsed[j])
                row[j] = answer
                rows[j][i] = answer
        for row in rows:
            flat.extend(row)
        return flat

    # -- cache management ----------------------------------------------------

    def enable_pair_cache(self, size: int) -> None:
        """Switch the hot-pair response cache on (or resize it).

        The network server calls this on lazily opened catalog members, so
        the cache can be a serving-layer decision without threading a
        constructor argument through every open path.  Shrinking evicts
        oldest entries; ``size=0`` disables and clears.
        """
        if size < 0:
            raise ValueError("pair cache size must be non-negative")
        self._pair_cache_size = size
        overflow = len(self._pair_cache) - size
        if overflow > 0:
            pop = self._pair_cache.popitem
            for _ in range(overflow):
                pop(last=False)

    def pair_cache_info(self) -> dict:
        """Hit/miss counters and occupancy of the hot-pair response cache."""
        lookups = self.pair_hits + self.pair_misses
        return {
            "enabled": bool(self._pair_cache_size),
            "hits": self.pair_hits,
            "misses": self.pair_misses,
            "hit_rate": round(self.pair_hits / lookups, 4) if lookups else 0.0,
            "size": len(self._pair_cache),
            "max_size": self._pair_cache_size,
        }

    def cache_info(self) -> dict:
        """Hit/miss counters and current occupancy of the parsed-label cache.

        ``hit_rate`` is the lifetime fraction of lookups served from the
        cache (0.0 before any lookup) — the steady-state serving signal the
        network server reports per member and the warm-cache benchmark
        records.  ``backend`` is the kernel tier answering this engine's
        batched queries (``native``/``numpy``/``python``; see
        :mod:`repro.kernels`) — per scheme, so an engine whose scheme has no
        native kernel honestly reports ``python`` even when the native tier
        is loaded.
        """
        lookups = self.cache_hits + self.cache_misses
        info = {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "hit_rate": round(self.cache_hits / lookups, 4) if lookups else 0.0,
            "size": len(self._cache),
            "max_size": self._cache_size,
            "backend": kernels.backend().tier_for(self.scheme),
        }
        if self._pair_cache_size:
            info["pair_cache"] = self.pair_cache_info()
        return info

    def clear_cache(self) -> None:
        """Drop all parsed labels and cached pair answers (counters included)."""
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self._pair_cache.clear()
        self.pair_hits = 0
        self.pair_misses = 0
