"""The packed label store: one buffer, an offset index, save/load.

See the package docstring of :mod:`repro.store` for the binary format.
"""

from __future__ import annotations

import json
import os

from repro.encoding.bitio import Bits
from repro.encoding.varint import decode_uvarint, encode_uvarint

#: magic prefix of a serialised store, "Repro Label Store v1"
STORE_MAGIC = b"RLS1"


class StoreError(ValueError):
    """Raised when a store file is malformed or inconsistent."""


class LabelStore:
    """All labels of one encoded tree, packed into a contiguous buffer.

    A store is immutable once built.  It knows which scheme produced it
    (``scheme_name`` + ``scheme_params``, the spec resolved back through
    :func:`repro.core.registry.make_any_scheme`) but holds no parsed labels
    and no tree — only bits.
    """

    def __init__(
        self,
        scheme_name: str,
        scheme_params: dict,
        bit_lengths: list[int],
        payload: bytes,
    ) -> None:
        self.scheme_name = scheme_name
        self.scheme_params = dict(scheme_params)
        self._bit_lengths = list(bit_lengths)
        self._payload = bytes(payload)
        self._view = memoryview(self._payload)

        offsets = [0]
        for bits in self._bit_lengths:
            if bits < 0:
                raise StoreError("negative label bit length")
            offsets.append(offsets[-1] + (bits + 7) // 8)
        if offsets[-1] != len(self._payload):
            raise StoreError(
                f"payload is {len(self._payload)} bytes but the index "
                f"describes {offsets[-1]}"
            )
        self._offsets = offsets

    # -- construction --------------------------------------------------------

    @classmethod
    def from_labels(cls, scheme, labels: dict[int, object]) -> "LabelStore":
        """Pack the labels ``scheme.encode`` produced for nodes ``0..n-1``."""
        n = len(labels)
        if set(labels) != set(range(n)):
            raise StoreError("labels must be keyed by the nodes 0..n-1")
        bit_lengths: list[int] = []
        chunks: list[bytes] = []
        for node in range(n):
            bits = labels[node].to_bits()
            bit_lengths.append(len(bits))
            chunks.append(bits.to_bytes())
        return cls(
            scheme_name=scheme.name,
            scheme_params=scheme.params(),
            bit_lengths=bit_lengths,
            payload=b"".join(chunks),
        )

    @classmethod
    def encode_tree(cls, scheme, tree) -> "LabelStore":
        """Encode ``tree`` with ``scheme`` and pack the result."""
        return cls.from_labels(scheme, scheme.encode(tree))

    # -- lookups -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._bit_lengths)

    @property
    def n(self) -> int:
        """Number of stored labels (nodes are ``0..n-1``)."""
        return len(self._bit_lengths)

    def bit_length(self, node: int) -> int:
        """Exact size of one label in bits."""
        self._check_node(node)
        return self._bit_lengths[node]

    def raw(self, node: int) -> memoryview:
        """Zero-copy view of one label's packed bytes."""
        self._check_node(node)
        return self._view[self._offsets[node] : self._offsets[node + 1]]

    def label_bits(self, node: int) -> Bits:
        """One label as a packed :class:`Bits` value.

        The stored bytes become the packed integer directly
        (:meth:`Bits.from_bytes` on a zero-copy ``memoryview`` slice) — no
        ``'0'``/``'1'`` character round-trip happens anywhere on this path.
        """
        self._check_node(node)
        return Bits.from_bytes(self.raw(node), self._bit_lengths[node])

    def label_words(self, nodes):
        """Yield ``(node, packed_value, bit_length)`` for many labels.

        This is the innermost supply loop of batched serving: each label's
        bytes are turned into one big integer (the representation
        :class:`~repro.encoding.bitio.BitReader` and the word-level parsers
        consume) with no intermediate objects at all.
        """
        view = self._view
        offsets = self._offsets
        lengths = self._bit_lengths
        total = len(lengths)
        from_bytes = int.from_bytes
        for node in nodes:
            if not 0 <= node < total:
                raise StoreError(f"node {node} out of range [0, {total})")
            bits = lengths[node]
            if bits:
                start = offsets[node]
                count = (bits + 7) >> 3
                value = from_bytes(
                    view[start : start + count], "big"
                ) >> ((count << 3) - bits)
            else:
                value = 0
            yield node, value, bits

    def buffers(self) -> tuple[memoryview, list[int], list[int]]:
        """The raw packed representation: ``(view, byte_offsets, bit_lengths)``.

        Label ``i`` occupies ``view[byte_offsets[i]:byte_offsets[i + 1]]``
        and is ``bit_lengths[i]`` bits long.  Word-level bulk parsers
        (``scheme.parse_many`` overrides) read labels straight from these
        buffers; everything is read-only.
        """
        return self._view, self._offsets, self._bit_lengths

    def iter_bits(self):
        """All labels in node order."""
        for node in range(self.n):
            yield self.label_bits(node)

    def make_scheme(self):
        """Rebuild the scheme that produced this store (registry lookup)."""
        from repro.core.registry import make_any_scheme

        return make_any_scheme(self.scheme_name, **self.scheme_params)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self._bit_lengths):
            raise StoreError(f"node {node} out of range [0, {len(self._bit_lengths)})")

    # -- space accounting ----------------------------------------------------

    @property
    def total_label_bits(self) -> int:
        """Sum of the exact label sizes (the honest space measure)."""
        return sum(self._bit_lengths)

    @property
    def payload_bytes(self) -> int:
        """Bytes of packed label payload (labels padded to byte boundaries)."""
        return len(self._payload)

    @property
    def max_label_bits(self) -> int:
        """Largest stored label, in bits (the quantity the paper bounds)."""
        return max(self._bit_lengths, default=0)

    @property
    def file_bytes(self) -> int:
        """Size of the serialised store, header and index included.

        Computed arithmetically — no serialisation happens here.
        """
        name = self.scheme_name.encode("utf-8")
        params = json.dumps(self.scheme_params, sort_keys=True).encode("utf-8")
        return (
            len(STORE_MAGIC)
            + len(encode_uvarint(len(name)))
            + len(name)
            + len(encode_uvarint(len(params)))
            + len(params)
            + len(encode_uvarint(self.n))
            + sum(len(encode_uvarint(bits)) for bits in self._bit_lengths)
            + len(self._payload)
        )

    # -- persistence ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise the store (see the format in the package docstring)."""
        name = self.scheme_name.encode("utf-8")
        params = json.dumps(self.scheme_params, sort_keys=True).encode("utf-8")
        parts = [
            STORE_MAGIC,
            encode_uvarint(len(name)),
            name,
            encode_uvarint(len(params)),
            params,
            encode_uvarint(self.n),
        ]
        parts.extend(encode_uvarint(bits) for bits in self._bit_lengths)
        parts.append(self._payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data) -> "LabelStore":
        """Parse a store serialised by :meth:`to_bytes`."""
        data = bytes(data)
        if data[: len(STORE_MAGIC)] != STORE_MAGIC:
            raise StoreError(
                f"not a label store (expected magic {STORE_MAGIC!r})"
            )
        pos = len(STORE_MAGIC)
        try:
            name_len, pos = decode_uvarint(data, pos)
            name = data[pos : pos + name_len].decode("utf-8")
            pos += name_len
            params_len, pos = decode_uvarint(data, pos)
            params = json.loads(data[pos : pos + params_len].decode("utf-8"))
            pos += params_len
            n, pos = decode_uvarint(data, pos)
            bit_lengths = None
            if n >= 256:
                # bulk index decode through the native kernel tier when it
                # is loaded; a decline (unavailable, or a stream the C side
                # refuses) falls back to the Python loop, which raises the
                # proper error for genuinely corrupt input
                from repro import kernels

                decoded = kernels.backend().varint_many(data, pos, n)
                if decoded is not None:
                    values, pos = decoded
                    bit_lengths = list(values)
            if bit_lengths is None:
                bit_lengths = []
                for _ in range(n):
                    bits, pos = decode_uvarint(data, pos)
                    bit_lengths.append(bits)
        except ValueError as error:
            raise StoreError(f"corrupt store header: {error}") from error
        payload = data[pos:]
        return cls(name, params, bit_lengths, payload)

    def save(self, path: str | os.PathLike) -> int:
        """Write the store to ``path``; returns the number of bytes written."""
        blob = self.to_bytes()
        with open(path, "wb") as handle:
            handle.write(blob)
        return len(blob)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "LabelStore":
        """Read a store written by :meth:`save`."""
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LabelStore(scheme={self.scheme_name!r}, n={self.n}, "
            f"total_bits={self.total_label_bits})"
        )
