"""The packed label store: one buffer, an offset index, save/load.

See the package docstring of :mod:`repro.store` for the binary format.

A store never copies the payload it is handed: ``__init__`` wraps any
buffer-protocol object (``bytes``, ``bytearray``, ``memoryview``,
``mmap.mmap``) in a ``memoryview`` and keeps a reference to the backing
object, so :meth:`LabelStore.from_bytes` over a catalog slice and
:meth:`LabelStore.open_mmap` over a mapped file both serve straight from
the original storage.  The offset index is reconstructed at load time into
compact ``array('Q')`` words (8 bytes per label instead of a Python ``int``
object each), which is what keeps a 10⁷-label index affordable.
"""

from __future__ import annotations

import json
import os
from array import array

from repro.encoding.bitio import Bits
from repro.encoding.varint import decode_uvarint, encode_uvarint

#: magic prefix of a serialised store, "Repro Label Store v1"
STORE_MAGIC = b"RLS1"


class StoreError(ValueError):
    """Raised when a store file is malformed or inconsistent."""


def _as_byte_view(payload) -> memoryview:
    """A flat read-only byte view of any buffer-protocol object."""
    view = payload if isinstance(payload, memoryview) else memoryview(payload)
    if view.format != "B" or view.ndim != 1:
        view = view.cast("B")
    return view.toreadonly()


class LabelStore:
    """All labels of one encoded tree, packed into a contiguous buffer.

    A store is immutable once built.  It knows which scheme produced it
    (``scheme_name`` + ``scheme_params``, the spec resolved back through
    :func:`repro.core.registry.make_any_scheme`) but holds no parsed labels
    and no tree — only bits.
    """

    def __init__(
        self,
        scheme_name: str,
        scheme_params: dict,
        bit_lengths,
        payload,
    ) -> None:
        self.scheme_name = scheme_name
        self.scheme_params = dict(scheme_params)
        # the payload is *wrapped*, never copied: the memoryview pins the
        # backing object (bytes, a catalog slice, an mmap) for its lifetime
        self._backing = payload
        self._view = _as_byte_view(payload)

        lengths = array("Q")
        offsets = array("Q", (0,))
        total = 0
        try:
            for bits in bit_lengths:
                lengths.append(bits)
                total += (bits + 7) // 8
                offsets.append(total)
        except (OverflowError, TypeError) as error:
            raise StoreError(f"negative or invalid label bit length: {error}") from error
        if total != self._view.nbytes:
            raise StoreError(
                f"payload is {self._view.nbytes} bytes but the index "
                f"describes {total}"
            )
        self._bit_lengths = lengths
        self._offsets = offsets

    # -- construction --------------------------------------------------------

    @classmethod
    def from_labels(cls, scheme, labels: dict[int, object]) -> "LabelStore":
        """Pack the labels ``scheme.encode`` produced for nodes ``0..n-1``."""
        n = len(labels)
        if set(labels) != set(range(n)):
            raise StoreError("labels must be keyed by the nodes 0..n-1")
        bit_lengths: list[int] = []
        chunks: list[bytes] = []
        for node in range(n):
            bits = labels[node].to_bits()
            bit_lengths.append(len(bits))
            chunks.append(bits.to_bytes())
        return cls(
            scheme_name=scheme.name,
            scheme_params=scheme.params(),
            bit_lengths=bit_lengths,
            payload=b"".join(chunks),
        )

    @classmethod
    def encode_tree(cls, scheme, tree) -> "LabelStore":
        """Encode ``tree`` with ``scheme`` and pack the result."""
        return cls.from_labels(scheme, scheme.encode(tree))

    # -- lookups -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._bit_lengths)

    @property
    def n(self) -> int:
        """Number of stored labels (nodes are ``0..n-1``)."""
        return len(self._bit_lengths)

    def bit_length(self, node: int) -> int:
        """Exact size of one label in bits."""
        self._check_node(node)
        return self._bit_lengths[node]

    def raw(self, node: int) -> memoryview:
        """Zero-copy view of one label's packed bytes."""
        self._check_node(node)
        return self._view[self._offsets[node] : self._offsets[node + 1]]

    def label_bits(self, node: int) -> Bits:
        """One label as a packed :class:`Bits` value.

        The stored bytes become the packed integer directly
        (:meth:`Bits.from_bytes` on a zero-copy ``memoryview`` slice) — no
        ``'0'``/``'1'`` character round-trip happens anywhere on this path.
        """
        self._check_node(node)
        return Bits.from_bytes(self.raw(node), self._bit_lengths[node])

    def label_words(self, nodes):
        """Yield ``(node, packed_value, bit_length)`` for many labels.

        This is the innermost supply loop of batched serving: each label's
        bytes are turned into one big integer (the representation
        :class:`~repro.encoding.bitio.BitReader` and the word-level parsers
        consume) with no intermediate objects at all.
        """
        view = self._view
        offsets = self._offsets
        lengths = self._bit_lengths
        total = len(lengths)
        from_bytes = int.from_bytes
        for node in nodes:
            if not 0 <= node < total:
                raise StoreError(f"node {node} out of range [0, {total})")
            bits = lengths[node]
            if bits:
                start = offsets[node]
                count = (bits + 7) >> 3
                value = from_bytes(
                    view[start : start + count], "big"
                ) >> ((count << 3) - bits)
            else:
                value = 0
            yield node, value, bits

    def buffers(self):
        """The raw packed representation: ``(view, byte_offsets, bit_lengths)``.

        Label ``i`` occupies ``view[byte_offsets[i]:byte_offsets[i + 1]]``
        and is ``bit_lengths[i]`` bits long.  Word-level bulk parsers
        (``scheme.parse_many`` overrides) read labels straight from these
        buffers; everything is read-only.  The index sequences are
        ``array('Q')`` values — indexable like lists, and buffer-protocol
        objects the native kernel tier maps without copying.
        """
        return self._view, self._offsets, self._bit_lengths

    def iter_bits(self):
        """All labels in node order."""
        for node in range(self.n):
            yield self.label_bits(node)

    def make_scheme(self):
        """Rebuild the scheme that produced this store (registry lookup)."""
        from repro.core.registry import make_any_scheme

        return make_any_scheme(self.scheme_name, **self.scheme_params)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self._bit_lengths):
            raise StoreError(f"node {node} out of range [0, {len(self._bit_lengths)})")

    # -- space accounting ----------------------------------------------------

    @property
    def total_label_bits(self) -> int:
        """Sum of the exact label sizes (the honest space measure)."""
        return sum(self._bit_lengths)

    @property
    def payload_bytes(self) -> int:
        """Bytes of packed label payload (labels padded to byte boundaries)."""
        return self._view.nbytes

    @property
    def max_label_bits(self) -> int:
        """Largest stored label, in bits (the quantity the paper bounds)."""
        return max(self._bit_lengths, default=0)

    @property
    def mmap_backed(self) -> bool:
        """Whether the payload is served from a memory-mapped file."""
        import mmap

        return isinstance(self._backing, mmap.mmap) or (
            isinstance(self._backing, memoryview)
            and isinstance(self._backing.obj, mmap.mmap)
        )

    @property
    def file_bytes(self) -> int:
        """Size of the serialised store, header and index included.

        Computed arithmetically — no serialisation happens here.
        """
        name = self.scheme_name.encode("utf-8")
        params = json.dumps(self.scheme_params, sort_keys=True).encode("utf-8")
        return (
            len(STORE_MAGIC)
            + len(encode_uvarint(len(name)))
            + len(name)
            + len(encode_uvarint(len(params)))
            + len(params)
            + len(encode_uvarint(self.n))
            + sum(len(encode_uvarint(bits)) for bits in self._bit_lengths)
            + self._view.nbytes
        )

    # -- persistence ---------------------------------------------------------

    def header_bytes(self) -> bytes:
        """The serialised header + varint index (everything before the payload)."""
        name = self.scheme_name.encode("utf-8")
        params = json.dumps(self.scheme_params, sort_keys=True).encode("utf-8")
        parts = [
            STORE_MAGIC,
            encode_uvarint(len(name)),
            name,
            encode_uvarint(len(params)),
            params,
            encode_uvarint(self.n),
        ]
        parts.extend(encode_uvarint(bits) for bits in self._bit_lengths)
        return b"".join(parts)

    def to_bytes(self) -> bytes:
        """Serialise the store (see the format in the package docstring)."""
        return self.header_bytes() + bytes(self._view)

    @classmethod
    def from_bytes(cls, data) -> "LabelStore":
        """Parse a store serialised by :meth:`to_bytes`.

        ``data`` may be any buffer-protocol object; nothing is copied.  The
        header is decoded in place and the payload stays a zero-copy view of
        ``data``, which the returned store keeps alive — the path an
        :class:`~repro.api.IndexCatalog` member slice and an ``mmap``-backed
        file both take.
        """
        view = _as_byte_view(data)
        if bytes(view[: len(STORE_MAGIC)]) != STORE_MAGIC:
            raise StoreError(
                f"not a label store (expected magic {STORE_MAGIC!r})"
            )
        pos = len(STORE_MAGIC)
        try:
            name_len, pos = decode_uvarint(view, pos)
            name = bytes(view[pos : pos + name_len]).decode("utf-8")
            pos += name_len
            params_len, pos = decode_uvarint(view, pos)
            params = json.loads(bytes(view[pos : pos + params_len]).decode("utf-8"))
            pos += params_len
            n, pos = decode_uvarint(view, pos)
            bit_lengths = None
            if n >= 256:
                # bulk index decode through the native kernel tier when it
                # is loaded; a decline (unavailable, or a stream the C side
                # refuses) falls back to the Python loop, which raises the
                # proper error for genuinely corrupt input
                from repro import kernels

                decoded = kernels.backend().varint_many(view, pos, n)
                if decoded is not None:
                    values, pos = decoded
                    bit_lengths = values
            if bit_lengths is None:
                bit_lengths = []
                for _ in range(n):
                    bits, pos = decode_uvarint(view, pos)
                    bit_lengths.append(bits)
        except ValueError as error:
            raise StoreError(f"corrupt store header: {error}") from error
        return cls(name, params, bit_lengths, view[pos:])

    def save(self, path: str | os.PathLike) -> int:
        """Write the store to ``path``; returns the number of bytes written."""
        header = self.header_bytes()
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(self._view)
        return len(header) + self._view.nbytes

    @classmethod
    def load(cls, path: str | os.PathLike) -> "LabelStore":
        """Read a store written by :meth:`save` into memory."""
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())

    @classmethod
    def open_mmap(cls, path: str | os.PathLike) -> "LabelStore":
        """Open a store file as a read-only memory mapping (zero-copy).

        Only the header and the varint index are parsed into memory; the
        payload stays a view of the mapping, so resident memory is whatever
        the page cache keeps warm — and N processes opening the same file
        (the pre-forked serving fleet) share **one** physical copy.  The
        returned store holds the mapping open for its lifetime.
        """
        import mmap

        with open(path, "rb") as handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError) as error:
                raise StoreError(f"cannot mmap {os.fspath(path)!r}: {error}") from error
        return cls.from_bytes(memoryview(mapped))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LabelStore(scheme={self.scheme_name!r}, n={self.n}, "
            f"total_bits={self.total_label_bits})"
        )
