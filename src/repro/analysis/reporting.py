"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Iterable


def format_table(rows: Iterable[dict], columns: list[str] | None = None) -> str:
    """Render a list of dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)

    def cell(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    widths = {
        column: max(len(column), *(len(cell(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(cell(row.get(column)).ljust(widths[column]) for column in columns)
        for row in rows
    ]
    return "\n".join([header, separator, *body])


def format_comparison(measured: float, reference: float, label: str) -> str:
    """One-line 'measured vs reference' summary."""
    ratio = measured / reference if reference else float("inf")
    return f"{label}: measured={measured:.1f} reference={reference:.1f} ratio={ratio:.2f}"
