"""Measurement harness: label sizes, query latency, experiment drivers.

The functions here are shared between the pytest-benchmark harnesses in
``benchmarks/``, the CLI (``repro-labels``) and the numbers recorded in
EXPERIMENTS.md, so that every reported figure comes from one code path.
"""

from repro.analysis.label_stats import LabelMeasurement, measure_scheme
from repro.analysis.experiments import (
    run_fig1_heavy_paths,
    run_fig2_hm_trees,
    run_fig4_universal_tree,
    run_fig5_regular_trees,
    run_table1_approx,
    run_table1_exact,
    run_table1_kdistance,
)
from repro.analysis.reporting import format_table

__all__ = [
    "LabelMeasurement",
    "measure_scheme",
    "run_table1_exact",
    "run_table1_kdistance",
    "run_table1_approx",
    "run_fig1_heavy_paths",
    "run_fig2_hm_trees",
    "run_fig4_universal_tree",
    "run_fig5_regular_trees",
    "format_table",
]
