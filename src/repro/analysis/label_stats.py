"""Per-scheme measurement: label sizes, encode time, query time, correctness.

All three scheme families are measured by one code path built on the unified
``scheme.query`` interface; only the per-family answer check differs.  Every
measurement also packs the labels into a :class:`repro.store.LabelStore` to
report *total* encoded space (store file bytes and summed label bits), the
honest counterpart of the per-label maxima the paper bounds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.store.label_store import LabelStore
from repro.trees.tree import RootedTree


@dataclass
class LabelMeasurement:
    """Outcome of measuring one scheme on one tree."""

    scheme: str
    family: str
    n: int
    max_bits: int
    average_bits: float
    total_bits: int
    store_bytes: int
    core_max_bits: int | None
    encode_seconds: float
    query_microseconds: float
    queries_checked: int
    mismatches: int
    extra: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat dictionary for table formatting."""
        row = {
            "scheme": self.scheme,
            "family": self.family,
            "n": self.n,
            "max_bits": self.max_bits,
            "avg_bits": round(self.average_bits, 1),
            "total_bits": self.total_bits,
            "store_bytes": self.store_bytes,
            "core_max_bits": self.core_max_bits,
            "encode_s": round(self.encode_seconds, 3),
            "query_us": round(self.query_microseconds, 2),
            "mismatches": self.mismatches,
        }
        row.update(self.extra)
        return row


def _measure(
    scheme,
    tree: RootedTree,
    pairs: list[tuple[int, int]],
    family: str,
    oracle: TreeDistanceOracle | None,
    display_name: str,
    check: Callable[[object, int], bool],
    extra: dict | None = None,
) -> LabelMeasurement:
    """Shared measurement core: encode, pack, time queries, verify answers.

    ``check(answer, exact)`` decides whether one ``scheme.query`` answer is
    acceptable against the oracle's exact distance.
    """
    if oracle is None:
        oracle = TreeDistanceOracle(tree)

    start = time.perf_counter()
    labels = scheme.encode(tree)
    encode_seconds = time.perf_counter() - start

    sizes = [label.bit_length() for label in labels.values()]
    core_sizes = [
        label.distance_array_bits()
        for label in labels.values()
        if hasattr(label, "distance_array_bits")
    ]
    store = LabelStore.from_labels(scheme, labels)

    mismatches = 0
    start = time.perf_counter()
    for u, v in pairs:
        answer = scheme.query(labels[u], labels[v])
        if not check(answer, oracle.distance(u, v)):
            mismatches += 1
    elapsed = time.perf_counter() - start

    return LabelMeasurement(
        scheme=display_name,
        family=family,
        n=tree.n,
        max_bits=max(sizes),
        average_bits=sum(sizes) / len(sizes),
        total_bits=store.total_label_bits,
        store_bytes=store.file_bytes,
        core_max_bits=max(core_sizes) if core_sizes else None,
        encode_seconds=encode_seconds,
        query_microseconds=(elapsed / max(len(pairs), 1)) * 1e6,
        queries_checked=len(pairs),
        mismatches=mismatches,
        extra=extra or {},
    )


def measure_scheme(
    scheme,
    tree: RootedTree,
    pairs: list[tuple[int, int]],
    family: str = "?",
    oracle: TreeDistanceOracle | None = None,
) -> LabelMeasurement:
    """Encode a tree, measure label sizes and time/verify the queries."""
    return _measure(
        scheme,
        tree,
        pairs,
        family,
        oracle,
        display_name=scheme.name,
        check=lambda answer, exact: answer == exact,
    )


def measure_bounded_scheme(
    scheme,
    tree: RootedTree,
    pairs: list[tuple[int, int]],
    family: str = "?",
    oracle: TreeDistanceOracle | None = None,
) -> LabelMeasurement:
    """Like :func:`measure_scheme` but for k-distance schemes."""
    k = scheme.k
    return _measure(
        scheme,
        tree,
        pairs,
        family,
        oracle,
        display_name=f"{scheme.name}(k={k})",
        check=lambda answer, exact: answer == (exact if exact <= k else None),
        extra={"k": k},
    )


def measure_approximate_scheme(
    scheme,
    tree: RootedTree,
    pairs: list[tuple[int, int]],
    family: str = "?",
    oracle: TreeDistanceOracle | None = None,
) -> LabelMeasurement:
    """Like :func:`measure_scheme` but for (1+eps)-approximate schemes."""
    worst = {"ratio": 1.0}

    def check(answer, exact) -> bool:
        if exact == 0:
            return answer == 0
        ratio = answer / exact
        worst["ratio"] = max(worst["ratio"], ratio)
        return 1.0 - 1e-9 <= ratio <= 1.0 + scheme.epsilon + 1e-9

    measurement = _measure(
        scheme,
        tree,
        pairs,
        family,
        oracle,
        display_name=f"{scheme.name}(eps={scheme.epsilon})",
        check=check,
        extra={"eps": scheme.epsilon},
    )
    measurement.extra["worst_ratio"] = round(worst["ratio"], 4)
    return measurement


def measure_store_throughput(
    scheme,
    tree: RootedTree,
    pairs: list[tuple[int, int]],
) -> dict:
    """Compare per-pair ``query_from_bits`` against a batched façade run.

    Returns a row with both throughputs and the speedup; used by the
    ``bench_query_time`` benchmark and the CLI ``query`` command.
    ``scheme`` is a spec string or a live scheme instance.
    """
    from repro.api import DistanceIndex

    index = DistanceIndex.build(tree, scheme)
    scheme, store = index.scheme, index.store

    start = time.perf_counter()
    single = [
        scheme.query_from_bits(store.label_bits(u), store.label_bits(v))
        for u, v in pairs
    ]
    single_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = index.batch(pairs, raw=True)
    batch_seconds = time.perf_counter() - start

    if single != batched:
        raise AssertionError("batched answers disagree with per-pair answers")
    return {
        "scheme": index.spec,
        "n": tree.n,
        "pairs": len(pairs),
        "single_qps": len(pairs) / single_seconds if single_seconds else float("inf"),
        "batch_qps": len(pairs) / batch_seconds if batch_seconds else float("inf"),
        "speedup": single_seconds / batch_seconds if batch_seconds else float("inf"),
        "store_bytes": store.file_bytes,
    }
