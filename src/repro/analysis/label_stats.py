"""Per-scheme measurement: label sizes, encode time, query time, correctness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.trees.tree import RootedTree


@dataclass
class LabelMeasurement:
    """Outcome of measuring one scheme on one tree."""

    scheme: str
    family: str
    n: int
    max_bits: int
    average_bits: float
    core_max_bits: int | None
    encode_seconds: float
    query_microseconds: float
    queries_checked: int
    mismatches: int
    extra: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat dictionary for table formatting."""
        row = {
            "scheme": self.scheme,
            "family": self.family,
            "n": self.n,
            "max_bits": self.max_bits,
            "avg_bits": round(self.average_bits, 1),
            "core_max_bits": self.core_max_bits,
            "encode_s": round(self.encode_seconds, 3),
            "query_us": round(self.query_microseconds, 2),
            "mismatches": self.mismatches,
        }
        row.update(self.extra)
        return row


def measure_scheme(
    scheme,
    tree: RootedTree,
    pairs: list[tuple[int, int]],
    family: str = "?",
    oracle: TreeDistanceOracle | None = None,
) -> LabelMeasurement:
    """Encode a tree, measure label sizes and time/verify the queries."""
    if oracle is None:
        oracle = TreeDistanceOracle(tree)

    start = time.perf_counter()
    labels = scheme.encode(tree)
    encode_seconds = time.perf_counter() - start

    sizes = [label.bit_length() for label in labels.values()]
    core_sizes = [
        label.distance_array_bits()
        for label in labels.values()
        if hasattr(label, "distance_array_bits")
    ]

    mismatches = 0
    start = time.perf_counter()
    for u, v in pairs:
        answer = scheme.distance(labels[u], labels[v])
        if answer != oracle.distance(u, v):
            mismatches += 1
    elapsed = time.perf_counter() - start

    return LabelMeasurement(
        scheme=scheme.name,
        family=family,
        n=tree.n,
        max_bits=max(sizes),
        average_bits=sum(sizes) / len(sizes),
        core_max_bits=max(core_sizes) if core_sizes else None,
        encode_seconds=encode_seconds,
        query_microseconds=(elapsed / max(len(pairs), 1)) * 1e6,
        queries_checked=len(pairs),
        mismatches=mismatches,
    )


def measure_bounded_scheme(
    scheme,
    tree: RootedTree,
    pairs: list[tuple[int, int]],
    family: str = "?",
    oracle: TreeDistanceOracle | None = None,
) -> LabelMeasurement:
    """Like :func:`measure_scheme` but for k-distance schemes."""
    if oracle is None:
        oracle = TreeDistanceOracle(tree)

    start = time.perf_counter()
    labels = scheme.encode(tree)
    encode_seconds = time.perf_counter() - start
    sizes = [label.bit_length() for label in labels.values()]

    mismatches = 0
    start = time.perf_counter()
    for u, v in pairs:
        answer = scheme.bounded_distance(labels[u], labels[v])
        exact = oracle.distance(u, v)
        expected = exact if exact <= scheme.k else None
        if answer != expected:
            mismatches += 1
    elapsed = time.perf_counter() - start

    return LabelMeasurement(
        scheme=f"{scheme.name}(k={scheme.k})",
        family=family,
        n=tree.n,
        max_bits=max(sizes),
        average_bits=sum(sizes) / len(sizes),
        core_max_bits=None,
        encode_seconds=encode_seconds,
        query_microseconds=(elapsed / max(len(pairs), 1)) * 1e6,
        queries_checked=len(pairs),
        mismatches=mismatches,
        extra={"k": scheme.k},
    )


def measure_approximate_scheme(
    scheme,
    tree: RootedTree,
    pairs: list[tuple[int, int]],
    family: str = "?",
    oracle: TreeDistanceOracle | None = None,
) -> LabelMeasurement:
    """Like :func:`measure_scheme` but for (1+eps)-approximate schemes."""
    if oracle is None:
        oracle = TreeDistanceOracle(tree)

    start = time.perf_counter()
    labels = scheme.encode(tree)
    encode_seconds = time.perf_counter() - start
    sizes = [label.bit_length() for label in labels.values()]

    mismatches = 0
    worst_ratio = 1.0
    start = time.perf_counter()
    for u, v in pairs:
        answer = scheme.approximate_distance(labels[u], labels[v])
        exact = oracle.distance(u, v)
        if exact == 0:
            if answer != 0:
                mismatches += 1
            continue
        ratio = answer / exact
        worst_ratio = max(worst_ratio, ratio)
        if not (1.0 - 1e-9 <= ratio <= 1.0 + scheme.epsilon + 1e-9):
            mismatches += 1
    elapsed = time.perf_counter() - start

    return LabelMeasurement(
        scheme=f"{scheme.name}(eps={scheme.epsilon})",
        family=family,
        n=tree.n,
        max_bits=max(sizes),
        average_bits=sum(sizes) / len(sizes),
        core_max_bits=None,
        encode_seconds=encode_seconds,
        query_microseconds=(elapsed / max(len(pairs), 1)) * 1e6,
        queries_checked=len(pairs),
        mismatches=mismatches,
        extra={"eps": scheme.epsilon, "worst_ratio": round(worst_ratio, 4)},
    )
