"""Experiment drivers, one per row of the DESIGN.md per-experiment index.

Each function returns a list of flat row dictionaries; the benchmarks wrap
them in pytest-benchmark fixtures, the CLI prints them with
:func:`repro.analysis.reporting.format_table`, and EXPERIMENTS.md records a
reference run.
"""

from __future__ import annotations

import math
import random

from repro.analysis.label_stats import (
    measure_approximate_scheme,
    measure_bounded_scheme,
    measure_scheme,
    measure_store_throughput,
)
from repro.core.freedman import FreedmanScheme
from repro.core.kdistance import KDistanceScheme
from repro.core.level_ancestor import LevelAncestorScheme
from repro.core.registry import make_scheme_from_spec
from repro.generators.workloads import make_tree, random_pairs
from repro.lowerbounds.bounds import (
    alstrup_upper_bound_bits,
    approx_bound_bits,
    exact_lower_bound_bits,
    exact_upper_bound_bits,
    kdistance_large_bound_bits,
    kdistance_small_upper_bound_bits,
)
from repro.lowerbounds.hm_trees import (
    build_hm_tree,
    lemma_2_3_bound_bits,
    random_hm_parameters,
    subdivide_to_unweighted,
)
from repro.lowerbounds.regular_trees import (
    build_regular_tree,
    common_labels_upper_bound,
    exact_pairwise_common_sum,
    lemma_4_1_total_bound,
    regular_tree_leaf_count,
)
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.universal.goldberg import goldberg_livshits_log2_size, lemma_3_6_size_bound
from repro.universal.universal_tree import universal_tree_for_small_n

#: default exact schemes as spec strings (see :func:`repro.core.registry.parse_spec`)
DEFAULT_EXACT_SCHEMES = (
    "freedman",
    "alstrup",
    "hld-fixed",
    "separator",
)


def _make(scheme):
    """Resolve one schemes-list entry: spec string, factory or instance."""
    if isinstance(scheme, str):
        return make_scheme_from_spec(scheme)
    return scheme() if callable(scheme) else scheme


def run_table1_exact(
    sizes: list[int] | None = None,
    families: list[str] | None = None,
    queries: int = 200,
    seed: int = 0,
    schemes=DEFAULT_EXACT_SCHEMES,
) -> list[dict]:
    """Experiment T1-exact: measured label sizes of the exact schemes."""
    sizes = sizes or [256, 1024, 4096]
    families = families or ["random", "caterpillar", "balanced_binary"]
    rows: list[dict] = []
    for family in families:
        for n in sizes:
            tree = make_tree(family, n, seed)
            oracle = TreeDistanceOracle(tree)
            pairs = random_pairs(tree, queries, seed)
            for entry in schemes:
                scheme = _make(entry)
                measurement = measure_scheme(scheme, tree, pairs, family, oracle)
                row = measurement.as_row()
                row["paper_upper_quarter"] = round(exact_upper_bound_bits(n), 1)
                row["paper_upper_half"] = round(alstrup_upper_bound_bits(n), 1)
                row["paper_lower"] = round(exact_lower_bound_bits(n), 1)
                rows.append(row)
    return rows


def run_table1_kdistance(
    sizes: list[int] | None = None,
    ks: list[int] | None = None,
    family: str = "random",
    queries: int = 200,
    seed: int = 0,
) -> list[dict]:
    """Experiment T1-kdist-small / T1-kdist-large."""
    sizes = sizes or [1024, 4096]
    rows: list[dict] = []
    for n in sizes:
        tree = make_tree(family, n, seed)
        oracle = TreeDistanceOracle(tree)
        pairs = random_pairs(tree, queries, seed)
        log_n = math.log2(n)
        k_values = ks or [1, 2, 4, 8, int(log_n), 4 * int(log_n), 16 * int(log_n)]
        for k in k_values:
            scheme = _make(f"k-distance:k={k}")
            measurement = measure_bounded_scheme(scheme, tree, pairs, family, oracle)
            row = measurement.as_row()
            if k < log_n:
                row["paper_bound"] = round(kdistance_small_upper_bound_bits(n, k), 1)
                row["regime"] = "k<log n"
            else:
                row["paper_bound"] = round(kdistance_large_bound_bits(n, k), 1)
                row["regime"] = "k>=log n"
            rows.append(row)
    return rows


def run_table1_approx(
    sizes: list[int] | None = None,
    epsilons: list[float] | None = None,
    family: str = "random",
    queries: int = 200,
    seed: int = 0,
) -> list[dict]:
    """Experiment T1-approx: (1+eps)-approximate label sizes and stretch."""
    sizes = sizes or [1024, 4096]
    epsilons = epsilons or [1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125]
    rows: list[dict] = []
    for n in sizes:
        tree = make_tree(family, n, seed)
        oracle = TreeDistanceOracle(tree)
        pairs = random_pairs(tree, queries, seed)
        for eps in epsilons:
            scheme = _make(f"approximate:epsilon={eps!r}")
            measurement = measure_approximate_scheme(scheme, tree, pairs, family, oracle)
            row = measurement.as_row()
            row["paper_bound"] = round(approx_bound_bits(n, eps), 1)
            rows.append(row)
    return rows


def run_store_throughput(
    sizes: list[int] | None = None,
    schemes=DEFAULT_EXACT_SCHEMES,
    family: str = "random",
    queries: int = 2000,
    seed: int = 0,
) -> list[dict]:
    """Experiment Q-store: batched engine queries vs per-pair bit parsing.

    Every row compares ``QueryEngine.batch_query`` (parse each label once
    per batch) against ``scheme.query_from_bits`` (parse per query) on the
    same packed :class:`repro.store.LabelStore`.
    """
    sizes = sizes or [1024]
    rows: list[dict] = []
    for n in sizes:
        tree = make_tree(family, n, seed)
        pairs = random_pairs(tree, queries, seed)
        for entry in schemes:
            row = measure_store_throughput(_make(entry), tree, pairs)
            row["family"] = family
            row["single_qps"] = round(row["single_qps"], 1)
            row["batch_qps"] = round(row["batch_qps"], 1)
            row["speedup"] = round(row["speedup"], 2)
            rows.append(row)
    return rows


def run_fig1_heavy_paths(
    sizes: list[int] | None = None,
    families: list[str] | None = None,
    seed: int = 0,
) -> list[dict]:
    """Experiment F1-hld: structural bounds of the decomposition and C(T)."""
    sizes = sizes or [256, 1024, 4096, 16384]
    families = families or ["random", "path", "star", "caterpillar", "balanced_binary"]
    rows: list[dict] = []
    for family in families:
        for n in sizes:
            tree = make_tree(family, n, seed)
            decomposition = HeavyPathDecomposition(tree)
            collapsed = CollapsedTree(decomposition)
            rows.append(
                {
                    "family": family,
                    "n": n,
                    "heavy_paths": decomposition.path_count(),
                    "max_light_depth": decomposition.max_light_depth(),
                    "collapsed_height": collapsed.height(),
                    "log2_n": round(math.log2(n), 2),
                }
            )
    return rows


def run_fig2_hm_trees(
    hs: list[int] | None = None,
    ms: list[int] | None = None,
    seed: int = 0,
) -> list[dict]:
    """Experiment F2-hm: measured labels on subdivided (h, M)-trees vs Lemma 2.3."""
    hs = hs or [2, 3, 4, 5]
    ms = ms or [4, 16, 64]
    rows: list[dict] = []
    for h in hs:
        for M in ms:
            parameters = random_hm_parameters(h, M, seed)
            instance = build_hm_tree(h, M, parameters)
            unweighted, image = subdivide_to_unweighted(instance.tree)
            scheme = FreedmanScheme()
            labels = scheme.encode(unweighted)
            leaf_nodes = [image[leaf] for leaf in instance.leaves]
            max_bits = max(labels[node].bit_length() for node in leaf_nodes)
            oracle = TreeDistanceOracle(unweighted)
            rng = random.Random(seed)
            mismatches = 0
            for _ in range(100):
                u, v = rng.choice(leaf_nodes), rng.choice(leaf_nodes)
                if scheme.distance(labels[u], labels[v]) != oracle.distance(u, v):
                    mismatches += 1
            rows.append(
                {
                    "h": h,
                    "M": M,
                    "weighted_nodes": instance.tree.n,
                    "unweighted_nodes": unweighted.n,
                    "leaf_label_max_bits": max_bits,
                    "lemma_2_3_lower_bits": round(lemma_2_3_bound_bits(h, M), 1),
                    "mismatches": mismatches,
                }
            )
    return rows


def run_fig4_universal_tree(max_n: int = 6) -> list[dict]:
    """Experiment F4-universal: Lemma 3.6 construction sizes vs the bounds."""
    rows: list[dict] = []
    scheme = LevelAncestorScheme()
    for n in range(2, max_n + 1):
        result = universal_tree_for_small_n(n, scheme)
        # the label length over all trees on <= n nodes
        max_label_bits = 0
        from repro.universal.universal_tree import all_rooted_trees_up_to

        for tree in all_rooted_trees_up_to(n):
            labels = scheme.encode(tree)
            max_label_bits = max(
                max_label_bits, max(l.bit_length() for l in labels.values())
            )
        rows.append(
            {
                "n": n,
                "labels_observed": result.label_count,
                "universal_tree_size": result.tree.n,
                "cycles_cut": result.cycles_cut,
                "lemma_3_6_bound": lemma_3_6_size_bound(max_label_bits),
                "max_parent_label_bits": max_label_bits,
                "goldberg_livshits_log2": round(goldberg_livshits_log2_size(n), 2),
            }
        )
    return rows


def run_fig5_regular_trees(
    h: int = 2, d: int = 2, ks: list[int] | None = None
) -> list[dict]:
    """Experiment F5-regular: Lemma 4.1 counting plus labels on an instance."""
    ks = ks or [1, 2]
    rows: list[dict] = []
    for k in ks:
        x = [1 + (i % h) for i in range(k)]
        tree = build_regular_tree(x, h, d)
        scheme = KDistanceScheme(2 * k)
        labels = scheme.encode(tree)
        max_bits = max(label.bit_length() for label in labels.values())
        rows.append(
            {
                "k": k,
                "h": h,
                "d": d,
                "leaves": regular_tree_leaf_count(h, d, k),
                "nodes": tree.n,
                "kdistance_label_max_bits": max_bits,
                "lemma_4_1_bound": round(lemma_4_1_total_bound(h, d, k), 1),
                "exact_pairwise_sum": exact_pairwise_common_sum(h, d, k),
                "single_pair_bound": common_labels_upper_bound(x, x, h, d),
            }
        )
    return rows
