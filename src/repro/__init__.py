"""repro — reproduction of "Optimal Distance Labeling Schemes for Trees".

Freedman, Gawrychowski, Nicholson, Weimann (PODC 2017, arXiv:1608.00212).

The canonical public API lives in :mod:`repro.api` and is re-exported here:
one :class:`DistanceIndex` handle per encoded tree, string scheme specs,
typed :class:`QueryResult` answers and the multi-tree :class:`IndexCatalog`.

Quick start::

    from repro import DistanceIndex, random_prufer_tree

    tree = random_prufer_tree(1000, seed=7)
    index = DistanceIndex.build(tree, "freedman")
    print(index.query(3, 42).value)       # exact tree distance
    index.save("labels.bin")              # ship the labels, discard the tree

Research surface (stable, but secondary to :mod:`repro.api`):

* :class:`repro.trees.RootedTree` and the builders in :mod:`repro.trees`;
* the scheme classes in :mod:`repro.core` (:class:`FreedmanScheme` is the
  paper's 1/4 log² n contribution) for direct label-level experiments;
* the lower-bound instance families in :mod:`repro.lowerbounds`;
* the measurement harness in :mod:`repro.analysis`;
* the packed-store internals in :mod:`repro.store` (wrapped by
  :class:`DistanceIndex`; ``repro-labels encode`` / ``query`` / ``catalog``
  on the command line).

Importing ``LabelStore`` / ``QueryEngine`` from the top level is deprecated;
use :class:`repro.api.DistanceIndex` (or :mod:`repro.store` directly in
measurement code).
"""

import warnings

from repro.api import (
    DistanceIndex,
    IndexCatalog,
    QueryResult,
    SpecError,
    available_specs,
    format_spec,
    make_scheme_from_spec,
    parse_spec,
    scheme_spec,
)
from repro.core import (
    AdjacencyScheme,
    AlstrupScheme,
    ApproximateScheme,
    FreedmanScheme,
    HLDScheme,
    KDistanceScheme,
    LevelAncestorScheme,
    NaiveListScheme,
    SeparatorScheme,
    make_any_scheme,
    make_scheme,
)
from repro.generators import (
    balanced_binary_tree,
    caterpillar_tree,
    path_tree,
    random_prufer_tree,
    star_tree,
)
from repro.oracles import TreeDistanceOracle
from repro.trees import RootedTree, tree_from_edges, tree_from_parents

__version__ = "1.1.0"

#: pre-façade names kept importable as thin deprecation shims
_DEPRECATED = {
    "LabelStore": ("repro.store", "repro.api.DistanceIndex"),
    "QueryEngine": ("repro.store", "repro.api.DistanceIndex"),
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        module, replacement = _DEPRECATED[name]
        warnings.warn(
            f"importing {name} from 'repro' is deprecated; use {replacement} "
            f"(or {module}.{name} in internal/measurement code)",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    # canonical API (repro.api)
    "DistanceIndex",
    "IndexCatalog",
    "QueryResult",
    "SpecError",
    "parse_spec",
    "format_spec",
    "scheme_spec",
    "make_scheme_from_spec",
    "available_specs",
    # trees and oracles
    "RootedTree",
    "tree_from_parents",
    "tree_from_edges",
    "TreeDistanceOracle",
    # scheme classes (research surface)
    "FreedmanScheme",
    "AlstrupScheme",
    "HLDScheme",
    "SeparatorScheme",
    "NaiveListScheme",
    "KDistanceScheme",
    "ApproximateScheme",
    "AdjacencyScheme",
    "LevelAncestorScheme",
    "make_scheme",
    "make_any_scheme",
    # deprecated shims (emit DeprecationWarning on access)
    "LabelStore",
    "QueryEngine",
    # tree generators
    "random_prufer_tree",
    "path_tree",
    "star_tree",
    "caterpillar_tree",
    "balanced_binary_tree",
    "__version__",
]
