"""repro — reproduction of "Optimal Distance Labeling Schemes for Trees".

Freedman, Gawrychowski, Nicholson, Weimann (PODC 2017, arXiv:1608.00212).

Public API highlights
---------------------

* :class:`repro.trees.RootedTree` and the builders in :mod:`repro.trees`;
* the exact schemes :class:`repro.core.FreedmanScheme` (the paper's
  1/4 log² n contribution), :class:`repro.core.AlstrupScheme` (1/2 log² n),
  :class:`repro.core.HLDScheme`, :class:`repro.core.SeparatorScheme`;
* the bounded scheme :class:`repro.core.KDistanceScheme` (Section 4);
* the approximate scheme :class:`repro.core.ApproximateScheme` (Section 5);
* the level-ancestor scheme :class:`repro.core.LevelAncestorScheme` and the
  universal-tree construction of Lemma 3.6 in :mod:`repro.universal`;
* the lower-bound instance families in :mod:`repro.lowerbounds`;
* the measurement harness in :mod:`repro.analysis`;
* the packed :class:`repro.store.LabelStore` and batch
  :class:`repro.store.QueryEngine` serving layer (``repro-labels encode`` /
  ``repro-labels query`` on the command line).

Quick start::

    from repro import FreedmanScheme, random_prufer_tree

    tree = random_prufer_tree(1000, seed=7)
    scheme = FreedmanScheme()
    labels = scheme.encode(tree)
    print(scheme.distance(labels[3], labels[42]))
"""

from repro.core import (
    AdjacencyScheme,
    AlstrupScheme,
    ApproximateScheme,
    FreedmanScheme,
    HLDScheme,
    KDistanceScheme,
    LevelAncestorScheme,
    NaiveListScheme,
    SeparatorScheme,
)
from repro.generators import (
    balanced_binary_tree,
    caterpillar_tree,
    path_tree,
    random_prufer_tree,
    star_tree,
)
from repro.core import make_any_scheme, make_scheme
from repro.oracles import TreeDistanceOracle
from repro.store import LabelStore, QueryEngine
from repro.trees import RootedTree, tree_from_edges, tree_from_parents

__version__ = "1.0.0"

__all__ = [
    "RootedTree",
    "tree_from_parents",
    "tree_from_edges",
    "TreeDistanceOracle",
    "FreedmanScheme",
    "AlstrupScheme",
    "HLDScheme",
    "SeparatorScheme",
    "NaiveListScheme",
    "KDistanceScheme",
    "ApproximateScheme",
    "AdjacencyScheme",
    "LevelAncestorScheme",
    "LabelStore",
    "QueryEngine",
    "make_scheme",
    "make_any_scheme",
    "random_prufer_tree",
    "path_tree",
    "star_tree",
    "caterpillar_tree",
    "balanced_binary_tree",
    "__version__",
]
