"""Tests for the packed label store and the batch query engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.analysis.label_stats import measure_store_throughput
from repro.core.approximate import ApproximateScheme
from repro.core.freedman import FreedmanScheme
from repro.core.kdistance import KDistanceScheme
from repro.core.registry import SCHEMES, make_any_scheme
from repro.encoding.bitio import BitError, Bits
from repro.encoding.varint import decode_uvarint, encode_uvarint
from repro.generators.workloads import make_tree, random_pairs
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.store import STORE_MAGIC, LabelStore, QueryEngine, StoreError
from repro.testing import parent_array_trees

# every registered scheme as a (factory, kind) pair: the full exact registry
# (ablation aliases included) plus one bounded and one approximate instance
ALL_REGISTERED = [
    *[(name, factory, "exact") for name, factory in sorted(SCHEMES.items())],
    ("k-distance", lambda: KDistanceScheme(4), "bounded"),
    ("approximate", lambda: ApproximateScheme(0.5), "approximate"),
]


def expected_answer(kind, scheme, exact):
    """The acceptable answer(s) for one query given the oracle distance."""
    if kind == "exact":
        return lambda answer: answer == exact
    if kind == "bounded":
        return lambda answer: answer == (exact if exact <= scheme.k else None)
    return lambda answer: (
        answer == 0
        if exact == 0
        else exact - 1e-9 <= answer <= (1 + scheme.epsilon) * exact + 1e-9
    )


class TestByteCodes:
    @given(st.integers(min_value=0, max_value=2**60))
    def test_uvarint_roundtrip(self, value):
        blob = encode_uvarint(value)
        decoded, pos = decode_uvarint(blob)
        assert decoded == value
        assert pos == len(blob)

    def test_uvarint_stream(self):
        blob = b"".join(encode_uvarint(v) for v in [0, 1, 127, 128, 300, 2**40])
        pos, values = 0, []
        while pos < len(blob):
            value, pos = decode_uvarint(blob, pos)
            values.append(value)
        assert values == [0, 1, 127, 128, 300, 2**40]

    def test_uvarint_truncated(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80")

    @given(st.text(alphabet="01", max_size=70))
    def test_bits_pack_roundtrip(self, data):
        bits = Bits(data)
        assert Bits.from_bytes(bits.to_bytes(), len(bits)) == bits

    def test_bits_from_memoryview(self):
        packed = Bits("10110011101").to_bytes()
        assert Bits.from_bytes(memoryview(packed), 11) == Bits("10110011101")

    def test_bits_unpack_short_buffer(self):
        with pytest.raises(BitError):
            Bits.from_bytes(b"\xff", 9)


class TestLabelStoreRoundTrip:
    @pytest.mark.parametrize("name,factory,kind", ALL_REGISTERED)
    def test_encode_save_load_query(self, tmp_path, name, factory, kind):
        """The satellite round trip: encode -> save -> load -> query."""
        scheme = factory()
        tree = make_tree("random", 80, seed=11)
        oracle = TreeDistanceOracle(tree)
        labels = scheme.encode(tree)
        store = LabelStore.from_labels(scheme, labels)

        path = tmp_path / f"{name}.bin"
        written = store.save(path)
        assert written == path.stat().st_size == store.file_bytes

        loaded = LabelStore.load(path)
        assert loaded.n == tree.n
        assert loaded.scheme_name == scheme.name
        assert loaded.scheme_params == scheme.params()
        for node in tree.nodes():
            assert loaded.label_bits(node) == labels[node].to_bits()
            assert loaded.bit_length(node) == labels[node].bit_length()

        engine = QueryEngine(loaded)
        for u, v in random_pairs(tree, 60, seed=4):
            check = expected_answer(kind, scheme, oracle.distance(u, v))
            assert check(engine.query(u, v))

    def test_space_accounting(self):
        scheme = FreedmanScheme()
        tree = make_tree("random", 60, seed=2)
        labels = scheme.encode(tree)
        store = LabelStore.from_labels(scheme, labels)
        assert store.total_label_bits == sum(l.bit_length() for l in labels.values())
        assert store.max_label_bits == max(l.bit_length() for l in labels.values())
        assert store.payload_bytes == sum(
            (l.bit_length() + 7) // 8 for l in labels.values()
        )
        assert store.file_bytes > store.payload_bytes  # header + index

    def test_raw_is_zero_copy(self):
        scheme = FreedmanScheme()
        store = LabelStore.encode_tree(scheme, make_tree("random", 30, seed=5))
        view = store.raw(7)
        assert isinstance(view, memoryview)
        assert Bits.from_bytes(view, store.bit_length(7)) == store.label_bits(7)

    def test_iter_bits_matches_lookups(self):
        store = LabelStore.encode_tree(FreedmanScheme(), make_tree("path", 12))
        assert list(store.iter_bits()) == [store.label_bits(i) for i in range(store.n)]

    def test_single_node_tree(self, tmp_path):
        from repro.trees.tree import RootedTree

        store = LabelStore.encode_tree(FreedmanScheme(), RootedTree([None]))
        path = tmp_path / "one.bin"
        store.save(path)
        loaded = LabelStore.load(path)
        assert QueryEngine(loaded).query(0, 0) == 0


class TestLabelStoreErrors:
    def test_bad_magic(self):
        with pytest.raises(StoreError):
            LabelStore.from_bytes(b"NOPE" + b"\x00" * 16)

    def test_truncated_header(self):
        blob = LabelStore.encode_tree(FreedmanScheme(), make_tree("path", 8)).to_bytes()
        with pytest.raises(StoreError):
            LabelStore.from_bytes(blob[: len(STORE_MAGIC) + 2])

    def test_payload_index_mismatch(self):
        with pytest.raises(StoreError):
            LabelStore("freedman", {}, [9], b"\x00")  # 9 bits need 2 bytes

    def test_bad_label_keys(self):
        scheme = FreedmanScheme()
        labels = scheme.encode(make_tree("path", 5))
        labels[99] = labels.pop(0)
        with pytest.raises(StoreError):
            LabelStore.from_labels(scheme, labels)

    def test_node_out_of_range(self):
        store = LabelStore.encode_tree(FreedmanScheme(), make_tree("path", 5))
        with pytest.raises(StoreError):
            store.label_bits(5)

    def test_unknown_scheme_spec(self):
        with pytest.raises(KeyError):
            make_any_scheme("no-such-scheme")

    def test_alias_rejects_params(self):
        with pytest.raises(ValueError):
            make_any_scheme("freedman-no-fragments", k=3)


class TestQueryEngine:
    def test_batch_matches_single(self):
        tree = make_tree("random", 120, seed=9)
        engine = QueryEngine.encode_tree(FreedmanScheme(), tree)
        pairs = random_pairs(tree, 150, seed=1)
        assert engine.batch_distance(pairs) == [engine.query(u, v) for u, v in pairs]

    def test_batch_parses_each_label_once(self):
        tree = make_tree("random", 50, seed=3)
        engine = QueryEngine.encode_tree(FreedmanScheme(), tree, cache_size=4096)
        pairs = random_pairs(tree, 300, seed=2)
        engine.batch_query(pairs)
        distinct = {node for pair in pairs for node in pair}
        assert engine.cache_misses == len(distinct)

    def test_lru_eviction(self):
        tree = make_tree("path", 40)
        engine = QueryEngine.encode_tree(FreedmanScheme(), tree, cache_size=4)
        for node in range(10):
            engine.parsed_label(node)
        info = engine.cache_info()
        assert info["size"] == 4 and info["misses"] == 10
        engine.parsed_label(9)  # most recent entry is still cached
        assert engine.cache_hits == 1
        engine.clear_cache()
        assert engine.cache_info() == {
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
            "size": 0,
            "max_size": 4,
            "backend": kernels.backend().tier_for(engine.scheme),
        }

    def test_distance_matrix_matches_oracle(self):
        tree = make_tree("random", 40, seed=6)
        oracle = TreeDistanceOracle(tree)
        engine = QueryEngine.encode_tree(FreedmanScheme(), tree)
        assert engine.distance_matrix() == oracle.distance_matrix()
        nodes = [3, 17, 0, 29]
        assert engine.distance_matrix(nodes) == oracle.distance_matrix(nodes)

    def test_big_matrix_does_not_thrash_cache(self):
        """A matrix call larger than the cache must not evict warm entries."""
        tree = make_tree("random", 40, seed=6)
        oracle = TreeDistanceOracle(tree)
        engine = QueryEngine.encode_tree(FreedmanScheme(), tree, cache_size=8)

        for node in range(8):  # warm the cache to capacity
            engine.parsed_label(node)
        warm = dict(engine._cache)
        engine.cache_hits = engine.cache_misses = 0

        assert engine.distance_matrix() == oracle.distance_matrix()
        # the warm entries survived (same parsed objects, no eviction) ...
        assert dict(engine._cache) == warm
        # ... were reused by the matrix ...
        assert engine.cache_hits == 8
        # ... and the other labels were each parsed exactly once
        assert engine.cache_misses == tree.n - 8
        # follow-up queries on warm nodes still hit
        engine.query(0, 7)
        assert engine.cache_misses == tree.n - 8

    def test_big_matrix_parses_duplicates_once(self):
        tree = make_tree("path", 30)
        oracle = TreeDistanceOracle(tree)
        engine = QueryEngine.encode_tree(FreedmanScheme(), tree, cache_size=2)
        nodes = [5, 6, 7, 5, 6, 7, 8]  # duplicates beyond cache capacity
        assert engine.distance_matrix(nodes) == oracle.distance_matrix(nodes)
        assert engine.cache_misses == 4  # distinct nodes only

    def test_small_matrix_still_warms_cache(self):
        tree = make_tree("path", 20)
        engine = QueryEngine.encode_tree(FreedmanScheme(), tree, cache_size=64)
        engine.distance_matrix([1, 2, 3])
        assert engine.cache_info()["size"] == 3
        engine.distance_matrix([1, 2, 3])
        assert engine.cache_hits == 3

    def test_scheme_rebuilt_from_store_spec(self):
        tree = make_tree("random", 60, seed=8)
        store = LabelStore.encode_tree(KDistanceScheme(3), tree)
        engine = QueryEngine(LabelStore.from_bytes(store.to_bytes()))
        assert isinstance(engine.scheme, KDistanceScheme)
        assert engine.scheme.k == 3

    def test_cache_size_validation(self):
        store = LabelStore.encode_tree(FreedmanScheme(), make_tree("path", 4))
        with pytest.raises(ValueError):
            QueryEngine(store, cache_size=0)

    def test_throughput_measurement_consistency(self):
        tree = make_tree("random", 64, seed=4)
        row = measure_store_throughput(FreedmanScheme(), tree, random_pairs(tree, 50, 1))
        assert row["pairs"] == 50 and row["speedup"] > 0


class TestBatchAgainstOracleHypothesis:
    """Satellite: ``batch_distance`` vs the oracle on random trees."""

    @settings(max_examples=25, deadline=None)
    @given(parent_array_trees(max_nodes=24))
    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_exact_schemes(self, name, tree):
        engine = QueryEngine.encode_tree(SCHEMES[name](), tree)
        oracle = TreeDistanceOracle(tree)
        pairs = [(u, v) for u in tree.nodes() for v in tree.nodes()]
        assert engine.batch_distance(pairs) == oracle.batch_distance(pairs)

    @settings(max_examples=25, deadline=None)
    @given(parent_array_trees(max_nodes=20), st.integers(min_value=1, max_value=6))
    def test_bounded_scheme(self, tree, k):
        engine = QueryEngine.encode_tree(KDistanceScheme(k), tree)
        oracle = TreeDistanceOracle(tree)
        pairs = [(u, v) for u in tree.nodes() for v in tree.nodes()]
        expected = [d if d <= k else None for d in oracle.batch_distance(pairs)]
        assert engine.batch_query(pairs) == expected

    @settings(max_examples=25, deadline=None)
    @given(parent_array_trees(max_nodes=20))
    def test_approximate_scheme(self, tree):
        epsilon = 0.5
        engine = QueryEngine.encode_tree(ApproximateScheme(epsilon), tree)
        oracle = TreeDistanceOracle(tree)
        pairs = [(u, v) for u in tree.nodes() for v in tree.nodes()]
        for (u, v), answer in zip(pairs, engine.batch_query(pairs)):
            exact = oracle.distance(u, v)
            if exact == 0:
                assert answer == 0
            else:
                assert exact - 1e-9 <= answer <= (1 + epsilon) * exact + 1e-9
