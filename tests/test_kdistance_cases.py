"""Query-configuration coverage for the k-distance decoder (DESIGN.md §8).

Each test constructs a tree in which a specific decoder branch must fire and
verifies the answer against the oracle.  The branches follow the case
analysis of Section 4.3: matched nearest common significant ancestor
(same/different child), ancestor queries, the mixed top case with and
without a capped alpha, the both-top case with and without Lemma 4.5, the
root-heavy-path case, and the "further than k" outcomes.
"""

from __future__ import annotations

from repro.core.kdistance import COMPACT, KDistanceScheme
from repro.generators.structured import path_tree, star_tree
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.trees.tree import RootedTree


def check_all_pairs(tree: RootedTree, k: int, mode: str | None = None) -> KDistanceScheme:
    scheme = KDistanceScheme(k) if mode is None else KDistanceScheme(k, mode=mode)
    oracle = TreeDistanceOracle(tree)
    labels = scheme.encode(tree)
    for u in tree.nodes():
        for v in tree.nodes():
            expected = oracle.distance(u, v)
            expected = expected if expected <= k else None
            got = scheme.bounded_distance(labels[u], labels[v])
            assert got == expected, (u, v, expected, got)
    return scheme


class TestCase1IdenticalNodes:
    def test_zero_distance(self):
        tree = path_tree(10)
        scheme = KDistanceScheme(2)
        labels = scheme.encode(tree)
        assert scheme.bounded_distance(labels[4], labels[4]) == 0


class TestCase2MatchedSameChild:
    def test_fig6_configuration(self):
        """u and v hang off the same heavy path below a common significant
        ancestor (the Figure 6 picture)."""
        #        0
        #        |
        #        1            (heavy path 0-1-2-3)
        #       / \
        #      2   4          4 and the subtree below it are light
        #      |   |
        #      3   5
        tree = RootedTree([None, 0, 1, 2, 1, 4])
        check_all_pairs(tree, k=4)


class TestCase3MatchedDifferentChildren:
    def test_nca_is_the_common_significant_ancestor(self):
        """u and v sit in different light subtrees of the same node."""
        #          0
        #        / | \
        #       1  2  3       (star-ish: every child is light except one)
        #       |     |
        #       4     5
        tree = RootedTree([None, 0, 0, 0, 1, 3])
        check_all_pairs(tree, k=4)

    def test_star(self):
        check_all_pairs(star_tree(12), k=2)


class TestCase4AncestorQueries:
    def test_ancestor_within_k(self):
        tree = path_tree(12)
        check_all_pairs(tree, k=6)

    def test_ancestor_beyond_k(self):
        tree = path_tree(12)
        scheme = KDistanceScheme(3)
        labels = scheme.encode(tree)
        assert scheme.bounded_distance(labels[0], labels[11]) is None


class TestCase5MixedTop:
    def test_one_side_top_other_not(self):
        """A long heavy path: one endpoint hangs deep on the path (its top
        significant ancestor is on the path, far from the head), the other
        hangs near the head (its chain still reaches above the head)."""
        n = 40
        parents: list[int | None] = [None] + [i for i in range(n - 1)]  # path 0..39
        # a pendant node hanging near the bottom (deep, alpha gets capped)
        parents.append(35)  # node 40
        # a pendant node hanging near the top (its chain covers the head)
        parents.append(2)  # node 41
        tree = RootedTree(parents)
        check_all_pairs(tree, k=5, mode=COMPACT)

    def test_capped_alpha_forces_far_answer(self):
        n = 60
        parents: list[int | None] = [None] + [i for i in range(n - 1)]
        parents.append(55)  # node 60 deep pendant
        parents.append(1)   # node 61 shallow pendant
        tree = RootedTree(parents)
        scheme = KDistanceScheme(4, mode=COMPACT)
        labels = scheme.encode(tree)
        oracle = TreeDistanceOracle(tree)
        assert oracle.distance(60, 61) > 4
        assert scheme.bounded_distance(labels[60], labels[61]) is None


class TestCase6And7BothTops:
    def test_both_tops_uncapped(self):
        """Two pendants near the head of a short heavy path."""
        parents: list[int | None] = [None, 0, 1, 2, 3, 4]
        parents.append(1)  # node 6
        parents.append(3)  # node 7
        tree = RootedTree(parents)
        check_all_pairs(tree, k=5, mode=COMPACT)

    def test_both_tops_capped_lemma_4_5(self):
        """Deep path, small k: both alphas are capped so the decoder must use
        the position-mod-k and 2-approximation tables of Lemma 4.5."""
        tree = path_tree(300)
        scheme = check_all_pairs(tree, k=3, mode=COMPACT)
        labels = scheme.encode(tree)
        capped = [label for label in labels.values() if label.alpha == 2 * 3 + 1]
        assert len(capped) > 100  # the machinery really was exercised

    def test_simple_mode_stores_exact_alpha(self):
        tree = path_tree(120)
        scheme = KDistanceScheme(40, mode="simple")
        labels = scheme.encode(tree)
        assert all(not label.compact for label in labels.values())
        check_all_pairs(tree, k=40, mode="simple")


class TestCase8RootHeavyPath:
    def test_no_common_significant_ancestor(self):
        """Both endpoints lie on (or hang just off) the root heavy path with
        no common significant ancestor: NCH is the root path itself."""
        #   0 - 1 - 2 - 3 - 4 - 5 - 6 - 7     (root heavy path)
        #       |           |
        #       8           9
        parents: list[int | None] = [None, 0, 1, 2, 3, 4, 5, 6, 1, 4]
        tree = RootedTree(parents)
        check_all_pairs(tree, k=8)


class TestCase9FarApart:
    def test_far_nodes_report_none(self):
        tree = path_tree(200)
        scheme = KDistanceScheme(2)
        labels = scheme.encode(tree)
        assert scheme.bounded_distance(labels[0], labels[199]) is None
        assert scheme.bounded_distance(labels[10], labels[100]) is None

    def test_boundary_exactly_k(self):
        tree = path_tree(50)
        scheme = KDistanceScheme(7)
        labels = scheme.encode(tree)
        assert scheme.bounded_distance(labels[0], labels[7]) == 7
        assert scheme.bounded_distance(labels[0], labels[8]) is None
