"""Tests for the RootedTree data structure and its builders."""

import pytest
from hypothesis import given

from repro.trees.builder import tree_from_edges, tree_from_parents
from repro.trees.tree import RootedTree, TreeError

from repro.testing import parent_array_trees, weighted_trees


class TestConstruction:
    def test_single_node(self):
        tree = RootedTree([None])
        assert tree.n == 1
        assert tree.root == 0
        assert tree.is_leaf(0)
        assert tree.leaves() == [0]
        assert tree.height() == 0

    def test_rejects_empty(self):
        with pytest.raises(TreeError):
            RootedTree([])

    def test_rejects_multiple_roots(self):
        with pytest.raises(TreeError):
            RootedTree([None, None])

    def test_rejects_cycle(self):
        # 1 -> 2 -> 1 cycle beside root 0
        with pytest.raises(TreeError):
            RootedTree([None, 2, 1])

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(TreeError):
            RootedTree([None, 7])

    def test_rejects_negative_weights(self):
        with pytest.raises(TreeError):
            RootedTree([None, 0], [0, -1])

    def test_default_weights_are_unit(self):
        tree = RootedTree([None, 0, 0, 1])
        assert tree.is_unit_weighted()
        assert tree.root_distance(3) == 2

    def test_weighted_distances(self):
        tree = RootedTree([None, 0, 1], [0, 5, 0])
        assert tree.root_distance(2) == 5
        assert not tree.is_unit_weighted()


class TestAccessors:
    def test_children_and_parent(self):
        tree = RootedTree([None, 0, 0, 1, 1])
        assert tree.children(0) == [1, 2]
        assert tree.children(1) == [3, 4]
        assert tree.parent(3) == 1
        assert tree.parent(0) is None
        assert tree.degree(0) == 2
        assert tree.subtree_size(1) == 3
        assert tree.subtree_size(0) == 5

    def test_preorder_postorder_consistency(self):
        tree = RootedTree([None, 0, 0, 1, 1, 2])
        pre = tree.preorder()
        post = tree.postorder()
        assert sorted(pre) == sorted(post) == list(range(6))
        assert pre[0] == 0
        assert post[-1] == 0
        for node in tree.nodes():
            assert pre[tree.preorder_index(node)] == node
            assert post[tree.postorder_index(node)] == node

    def test_is_ancestor(self):
        tree = RootedTree([None, 0, 1, 1, 0])
        assert tree.is_ancestor(0, 3)
        assert tree.is_ancestor(1, 2)
        assert tree.is_ancestor(2, 2)
        assert not tree.is_ancestor(2, 1)
        assert not tree.is_ancestor(4, 3)

    def test_path_to_root(self):
        tree = RootedTree([None, 0, 1, 2])
        assert tree.path_to_root(3) == [3, 2, 1, 0]
        assert tree.path_to_root(0) == [0]

    def test_edges_iteration(self):
        tree = RootedTree([None, 0, 0], [0, 2, 3])
        assert sorted(tree.edges()) == [(0, 1, 2), (0, 2, 3)]

    def test_with_child_order(self):
        tree = RootedTree([None, 0, 0])
        reordered = tree.with_child_order({0: [2, 1]})
        assert reordered.children(0) == [2, 1]
        assert reordered.preorder() == [0, 2, 1]
        with pytest.raises(TreeError):
            tree.with_child_order({0: [1, 1]})

    def test_reweighted(self):
        tree = RootedTree([None, 0])
        heavier = tree.reweighted([0, 10])
        assert heavier.root_distance(1) == 10
        assert tree.root_distance(1) == 1


class TestBuilders:
    def test_from_parents(self):
        tree = tree_from_parents([None, 0, 1])
        assert tree.n == 3

    def test_from_edges(self):
        tree = tree_from_edges(4, [(0, 1), (1, 2), (1, 3)])
        assert tree.parent(2) == 1
        assert tree.parent(1) == 0

    def test_from_edges_weighted(self):
        tree = tree_from_edges(3, [(0, 1, 4), (1, 2, 5)])
        assert tree.root_distance(2) == 9

    def test_from_edges_rejects_wrong_count(self):
        with pytest.raises(TreeError):
            tree_from_edges(3, [(0, 1)])

    def test_from_edges_rejects_disconnected(self):
        with pytest.raises(TreeError):
            tree_from_edges(4, [(0, 1), (2, 3), (0, 1)])

    def test_from_networkx_spanning_tree(self):
        networkx = pytest.importorskip("networkx")
        graph = networkx.cycle_graph(6)
        from repro.trees.builder import tree_from_networkx

        tree, mapping = tree_from_networkx(graph, root=0)
        assert tree.n == 6
        assert len(mapping) == 6


class TestProperties:
    @given(parent_array_trees())
    def test_subtree_sizes_sum(self, tree):
        assert tree.subtree_size(tree.root) == tree.n
        for node in tree.nodes():
            assert tree.subtree_size(node) == 1 + sum(
                tree.subtree_size(child) for child in tree.children(node)
            )

    @given(parent_array_trees())
    def test_preorder_interval_characterises_ancestry(self, tree):
        for node in tree.nodes():
            for other in tree.nodes():
                expected = other in tree.path_to_root(node) or node == other
                in_path = tree.is_ancestor(other, node)
                assert in_path == (other in tree.path_to_root(node))
                _ = expected

    @given(weighted_trees())
    def test_root_distances_accumulate(self, tree):
        for node in tree.nodes():
            parent = tree.parent(node)
            if parent is None:
                assert tree.root_distance(node) == 0
            else:
                assert tree.root_distance(node) == (
                    tree.root_distance(parent) + tree.edge_weight(node)
                )
