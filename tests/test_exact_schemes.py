"""Correctness of every exact distance labeling scheme against the oracle.

This is the central integration test of the library: each scheme must
answer every query exactly, including after a full serialisation round trip
of the labels (decoders see bits only).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.alstrup import AlstrupScheme
from repro.core.freedman import FreedmanScheme
from repro.core.hld import HLDScheme
from repro.core.naive import NaiveListScheme
from repro.core.separator import SeparatorScheme
from repro.generators.workloads import make_tree
from repro.oracles.exact_oracle import TreeDistanceOracle

from repro.testing import parent_array_trees, weighted_trees

ALL_EXACT_SCHEMES = [
    NaiveListScheme,
    SeparatorScheme,
    HLDScheme,
    AlstrupScheme,
    FreedmanScheme,
]


@pytest.fixture(params=[cls.__name__ for cls in ALL_EXACT_SCHEMES])
def exact_scheme(request):
    index = [cls.__name__ for cls in ALL_EXACT_SCHEMES].index(request.param)
    return ALL_EXACT_SCHEMES[index]()


class TestExactSchemes:
    def test_single_node(self, exact_scheme):
        tree = make_tree("path", 1)
        labels = exact_scheme.encode(tree)
        assert exact_scheme.distance(labels[0], labels[0]) == 0

    def test_two_nodes(self, exact_scheme):
        tree = make_tree("path", 2)
        labels = exact_scheme.encode(tree)
        assert exact_scheme.distance(labels[0], labels[1]) == 1
        assert exact_scheme.distance(labels[1], labels[0]) == 1

    def test_all_pairs_small_trees(self, exact_scheme):
        for family in ("path", "star", "caterpillar", "balanced_binary", "spider"):
            tree = make_tree(family, 20, seed=1)
            oracle = TreeDistanceOracle(tree)
            labels = exact_scheme.encode(tree)
            for u in tree.nodes():
                for v in tree.nodes():
                    assert exact_scheme.distance(labels[u], labels[v]) == oracle.distance(u, v)

    def test_random_queries_medium_tree(self, exact_scheme, medium_random_tree):
        tree = medium_random_tree
        oracle = TreeDistanceOracle(tree)
        labels = exact_scheme.encode(tree)
        rng = random.Random(0)
        for _ in range(300):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            assert exact_scheme.distance(labels[u], labels[v]) == oracle.distance(u, v)

    def test_symmetry(self, exact_scheme, medium_random_tree):
        labels = exact_scheme.encode(medium_random_tree)
        rng = random.Random(1)
        for _ in range(100):
            u = rng.randrange(medium_random_tree.n)
            v = rng.randrange(medium_random_tree.n)
            assert exact_scheme.distance(labels[u], labels[v]) == exact_scheme.distance(
                labels[v], labels[u]
            )

    def test_queries_from_serialised_bits(self, exact_scheme):
        tree = make_tree("random", 60, seed=3)
        oracle = TreeDistanceOracle(tree)
        labels = exact_scheme.encode(tree)
        bits = {node: label.to_bits() for node, label in labels.items()}
        rng = random.Random(2)
        for _ in range(80):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            assert exact_scheme.distance_from_bits(bits[u], bits[v]) == oracle.distance(u, v)

    def test_label_size_helpers(self, exact_scheme, medium_random_tree):
        labels = exact_scheme.encode(medium_random_tree)
        sizes = exact_scheme.label_sizes(labels)
        assert len(sizes) == medium_random_tree.n
        assert exact_scheme.max_label_bits(labels) == max(sizes)
        assert abs(
            exact_scheme.average_label_bits(labels) - sum(sizes) / len(sizes)
        ) < 1e-9

    @given(parent_array_trees(max_nodes=35))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_arbitrary_trees_property(self, exact_scheme, tree):
        oracle = TreeDistanceOracle(tree)
        labels = exact_scheme.encode(tree)
        rng = random.Random(4)
        for _ in range(40):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            assert exact_scheme.distance(labels[u], labels[v]) == oracle.distance(u, v)


class TestWeightedTrees:
    """Schemes that accept weighted trees must answer weighted distances."""

    @pytest.mark.parametrize(
        "scheme_cls", [NaiveListScheme, SeparatorScheme, HLDScheme, AlstrupScheme, FreedmanScheme]
    )
    @given(tree=weighted_trees(max_nodes=25))
    @settings(max_examples=20, deadline=None)
    def test_weighted_queries(self, scheme_cls, tree):
        scheme = scheme_cls()
        oracle = TreeDistanceOracle(tree)
        labels = scheme.encode(tree)
        rng = random.Random(5)
        for _ in range(30):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            assert scheme.distance(labels[u], labels[v]) == oracle.distance(u, v)


class TestLabelSizeShape:
    """Coarse label-size sanity: the heavy-path schemes stay polylogarithmic."""

    @pytest.mark.parametrize("scheme_cls", [HLDScheme, AlstrupScheme, FreedmanScheme])
    def test_polylog_growth(self, scheme_cls):
        import math

        sizes = []
        for n in (128, 512, 2048):
            tree = make_tree("random", n, seed=1)
            labels = scheme_cls().encode(tree)
            sizes.append(max(label.bit_length() for label in labels.values()))
        for n, bits in zip((128, 512, 2048), sizes):
            assert bits <= 30 * math.log2(n) ** 1.6

    def test_naive_scheme_blows_up_on_paths(self):
        tree = make_tree("path", 256)
        naive = NaiveListScheme().encode(tree)
        alstrup = AlstrupScheme().encode(tree)
        assert max(l.bit_length() for l in naive.values()) > 4 * max(
            l.bit_length() for l in alstrup.values()
        )
