"""Tests for the (1+eps)-approximate distance labeling (Section 5.2)."""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.approximate import ApproximateLabel, ApproximateScheme, rounded_exponent
from repro.generators.workloads import make_tree
from repro.oracles.exact_oracle import TreeDistanceOracle

from repro.testing import parent_array_trees

EPSILONS = [1.0, 0.5, 0.25, 0.1, 0.05]


def check_queries(scheme, tree, pairs):
    oracle = TreeDistanceOracle(tree)
    labels = scheme.encode(tree)
    for u, v in pairs:
        exact = oracle.distance(u, v)
        answer = scheme.approximate_distance(labels[u], labels[v])
        assert answer >= exact - 1e-9, (u, v, exact, answer)
        assert answer <= (1.0 + scheme.epsilon) * exact + 1e-9, (u, v, exact, answer)


class TestRoundedExponent:
    def test_small_values(self):
        assert rounded_exponent(0, 1.5) == 0
        assert rounded_exponent(1, 1.5) == 0

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.floats(min_value=1.01, max_value=2.0),
    )
    def test_bracketing_property(self, distance, base):
        exponent = rounded_exponent(distance, base)
        assert base ** exponent >= distance
        if exponent > 0:
            assert base ** (exponent - 1) < distance


class TestApproximateScheme:
    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            ApproximateScheme(0.0)

    @pytest.mark.parametrize("eps", EPSILONS)
    def test_all_pairs_small_trees(self, eps):
        for family in ("path", "star", "caterpillar", "balanced_binary"):
            tree = make_tree(family, 22, seed=1)
            scheme = ApproximateScheme(eps)
            pairs = [(u, v) for u in tree.nodes() for v in tree.nodes()]
            check_queries(scheme, tree, pairs)

    @pytest.mark.parametrize("eps", EPSILONS)
    def test_random_queries_medium_tree(self, eps, medium_random_tree):
        rng = random.Random(0)
        pairs = [
            (rng.randrange(medium_random_tree.n), rng.randrange(medium_random_tree.n))
            for _ in range(300)
        ]
        check_queries(ApproximateScheme(eps), medium_random_tree, pairs)

    def test_exact_on_ancestor_queries(self):
        tree = make_tree("path", 100)
        scheme = ApproximateScheme(0.5)
        labels = scheme.encode(tree)
        oracle = TreeDistanceOracle(tree)
        for u, v in [(0, 99), (10, 60), (42, 42)]:
            assert scheme.approximate_distance(labels[u], labels[v]) == oracle.distance(u, v)

    def test_serialisation_round_trip(self):
        tree = make_tree("random", 70, seed=2)
        scheme = ApproximateScheme(0.25)
        labels = scheme.encode(tree)
        oracle = TreeDistanceOracle(tree)
        rng = random.Random(1)
        for _ in range(100):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            answer = scheme.approximate_distance_from_bits(
                labels[u].to_bits(), labels[v].to_bits()
            )
            exact = oracle.distance(u, v)
            assert exact - 1e-9 <= answer <= (1.25) * exact + 1e-9

    def test_parse_matches_label(self):
        tree = make_tree("random", 30, seed=3)
        scheme = ApproximateScheme(0.5)
        for label in scheme.encode(tree).values():
            restored = ApproximateLabel.from_bits(label.to_bits())
            assert restored.preorder == label.preorder
            assert restored.exponents == label.exponents

    @given(parent_array_trees(max_nodes=35), st.sampled_from(EPSILONS))
    @settings(max_examples=40, deadline=None)
    def test_stretch_property(self, tree, eps):
        scheme = ApproximateScheme(eps)
        rng = random.Random(4)
        pairs = [(rng.randrange(tree.n), rng.randrange(tree.n)) for _ in range(30)]
        check_queries(scheme, tree, pairs)

    def test_label_size_grows_with_log_inverse_epsilon(self):
        """Smaller eps means larger labels, but only logarithmically so."""
        tree = make_tree("random", 2048, seed=5)
        sizes = {}
        for eps in (1.0, 0.25, 0.0625, 0.015625):
            labels = ApproximateScheme(eps).encode(tree)
            sizes[eps] = max(label.bit_length() for label in labels.values())
        assert sizes[0.25] >= sizes[1.0]
        assert sizes[0.015625] >= sizes[0.0625]
        # halving eps four times should not blow the label up by more than ~4x
        assert sizes[0.015625] <= 4 * sizes[1.0] + 64

    def test_smaller_than_exact_labels(self):
        from repro.core.alstrup import AlstrupScheme

        tree = make_tree("random", 2048, seed=6)
        approx = ApproximateScheme(0.5).encode(tree)
        exact = AlstrupScheme().encode(tree)
        assert max(l.bit_length() for l in approx.values()) < max(
            l.bit_length() for l in exact.values()
        )
