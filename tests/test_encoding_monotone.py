"""Tests for the Lemma 2.2 monotone sequence encoder."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding.bitio import BitReader, BitWriter
from repro.encoding.monotone import MonotoneSequence, UnaryBitVectorView

from repro.testing import monotone_sequences


class TestMonotoneSequence:
    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            MonotoneSequence([3, 2])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MonotoneSequence([-1, 2])

    def test_empty_sequence(self):
        sequence = MonotoneSequence([])
        assert len(sequence) == 0
        assert MonotoneSequence.from_bits(sequence.bits).to_list() == []

    def test_access(self):
        sequence = MonotoneSequence([0, 0, 3, 7, 7, 20])
        assert sequence[0] == 0
        assert sequence[2] == 3
        assert sequence[5] == 20

    def test_successor(self):
        sequence = MonotoneSequence([1, 4, 4, 9, 30])
        assert sequence.successor_position(0) == 0
        assert sequence.successor_position(1) == 0
        assert sequence.successor_position(2) == 1
        assert sequence.successor_position(4) == 1
        assert sequence.successor_position(10) == 4
        assert sequence.successor_position(31) is None

    def test_common_suffix_of_prefixes(self):
        a = MonotoneSequence([1, 2, 3, 5, 8])
        b = MonotoneSequence([0, 2, 3, 5, 9])
        # prefixes [1,2,3,5] and [0,2,3,5] share the suffix [2,3,5]
        assert a.common_suffix_of_prefixes(b, 4, 4) == 3
        # full prefixes end with 8 vs 9: no common suffix
        assert a.common_suffix_of_prefixes(b, 5, 5) == 0

    def test_common_suffix_bounds_checked(self):
        a = MonotoneSequence([1, 2])
        with pytest.raises(IndexError):
            a.common_suffix_of_prefixes(a, 3, 1)

    @given(monotone_sequences())
    def test_round_trip_property(self, values):
        sequence = MonotoneSequence(values)
        decoded = MonotoneSequence.from_bits(sequence.bits)
        assert decoded.to_list() == values

    @given(monotone_sequences())
    def test_embedded_round_trip_property(self, values):
        """The encoding is self-delimiting inside a larger stream."""
        writer = BitWriter()
        MonotoneSequence(values).write(writer)
        writer.write_bits("10110")
        reader = BitReader(writer.getvalue())
        assert MonotoneSequence.read(reader).to_list() == values
        assert reader.read_bits(5).data == "10110"

    @given(monotone_sequences(), st.integers(min_value=0, max_value=600))
    def test_successor_property(self, values, query):
        sequence = MonotoneSequence(values)
        position = sequence.successor_position(query)
        expected = next((i for i, v in enumerate(values) if v >= query), None)
        assert position == expected

    @given(monotone_sequences(max_length=30, max_value=100))
    def test_size_bound(self, values):
        """Size stays O(s * max(1, log(M/s))) with a modest constant."""
        sequence = MonotoneSequence(values)
        s = max(len(values), 1)
        maximum = max(values) if values else 0
        import math

        per_element = max(1.0, math.log2(max(maximum, 1) / s + 1) + 1)
        assert sequence.bit_length() <= 6 * s * per_element + 32


class TestUnaryBitVectorView:
    def test_high_values_recovered_by_select(self):
        values = [0, 3, 9, 9, 31]
        view = UnaryBitVectorView(values, low_width=1)
        for index, value in enumerate(values):
            assert view.high_value(index) == value >> 1
